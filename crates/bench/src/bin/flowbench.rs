//! Flow-analysis benchmark: whole-policy `ANALYZE FLOW` vs policy size,
//! and the incremental advantage after a single grant.
//!
//! The disclosure-lattice pass exists to be the grant-time gate, so it
//! must stay cheap on policy sets the compiled fast path already
//! handles: 10 to 50,000 granted views across 16 relations and 16
//! principals. This bench measures, per size N:
//!
//! * `full` — a cold whole-set `Engine::analyze_flow(None)`: every view
//!   summarized, every principal's lattice derived;
//! * `incremental` — the same call after one additional `GRANT VIEW`:
//!   the [`PolicyDelta::affects`] sweep keeps the other principals'
//!   cached findings and the view-summary memo, so only the grantee
//!   recomputes.
//!
//! Views are full-projection (`select *`), so every lattice is clean —
//! the bench isolates pure lattice cost, not finding construction.
//!
//! ```text
//! flowbench [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Emits `BENCH_flow.json`. With `--check`, exits non-zero when the
//! incremental/full ratio at the largest size exceeds the baseline's
//! `max_incremental_ratio` (the ≤ 0.10x gate) or the largest full
//! analysis exceeds `max_full_ms`.

use fgac_core::Engine;
use std::time::Instant;

/// Granted-view counts swept, smallest to largest.
const SIZES: [usize; 5] = [10, 100, 1_000, 10_000, 50_000];
/// Base relations, covered round-robin by the granted views.
const RELATIONS: usize = 16;
/// Principals the grants are spread over.
const PRINCIPALS: usize = 16;

struct Args {
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_flow.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Pulls `"key": <number>` out of a flat JSON document — enough to read
/// our own baseline files without a JSON dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Engine with `total` full-projection views granted round-robin to
/// [`PRINCIPALS`] principals, plus one pre-created ungranted view the
/// incremental phase grants.
fn build(total: usize) -> Engine {
    let mut ddl = String::new();
    for r in 0..RELATIONS {
        ddl.push_str(&format!(
            "create table rel_{r} (id varchar not null, a int, b varchar, \
             primary key (id));\n"
        ));
    }
    for i in 0..total {
        ddl.push_str(&format!(
            "create authorization view v_{i} as select * from rel_{};\n",
            i % RELATIONS
        ));
    }
    ddl.push_str("create authorization view v_extra as select * from rel_0;\n");
    let mut e = Engine::new();
    e.admin_script(&ddl).expect("schema + views");
    for i in 0..total {
        e.grant_view(&format!("u{}", i % PRINCIPALS), &format!("v_{i}"))
            .expect("grant");
    }
    e
}

fn main() {
    let args = parse_args();
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();

    for n in SIZES {
        let mut e = build(n);
        let t = Instant::now();
        let diags = e.analyze_flow(None);
        let full_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(
            diags.is_empty(),
            "flowbench policy must be flow-clean, got {diags:?}"
        );

        // One grant to one principal: the sweep must keep the other
        // principals' entries and the summary memo.
        e.grant_view("u0", "v_extra").expect("incremental grant");
        let t = Instant::now();
        let diags = e.analyze_flow(None);
        let incr_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(
            diags.is_empty(),
            "incremental re-analysis must stay clean, got {diags:?}"
        );
        let ratio = incr_ms / full_ms.max(1e-9);
        eprintln!("n={n}: full {full_ms:.2}ms, incremental {incr_ms:.2}ms ({ratio:.3}x)");
        rows.push((n, full_ms, incr_ms, ratio));
    }

    let (_, full_large, _, ratio_large) = rows[rows.len() - 1];

    // --- Gates.
    let (max_ratio, max_full_ms) = match args.check.as_deref() {
        Some(path) => {
            let doc = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            (
                json_number(&doc, "max_incremental_ratio")
                    .unwrap_or_else(|| panic!("baseline {path} lacks max_incremental_ratio")),
                json_number(&doc, "max_full_ms")
                    .unwrap_or_else(|| panic!("baseline {path} lacks max_full_ms")),
            )
        }
        None => (f64::INFINITY, f64::INFINITY),
    };
    let ratio_ok = ratio_large <= max_ratio;
    let full_ok = full_large <= max_full_ms;
    let pass = ratio_ok && full_ok;

    let per_size: Vec<String> = rows
        .iter()
        .map(|(n, full, incr, ratio)| {
            format!(
                "  \"full_ms_{n}\": {full:.2},\n  \"incremental_ms_{n}\": {incr:.2},\n  \"ratio_{n}\": {ratio:.3}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"fgac-flow-v1\",\n  \"relations\": {RELATIONS},\n  \"principals\": {PRINCIPALS},\n{},\n  \"gates\": {{ \"max_incremental_ratio\": {}, \"max_full_ms\": {}, \"pass\": {} }}\n}}\n",
        per_size.join(",\n"),
        if max_ratio.is_finite() {
            format!("{max_ratio:.2}")
        } else {
            "null".into()
        },
        if max_full_ms.is_finite() {
            format!("{max_full_ms:.0}")
        } else {
            "null".into()
        },
        pass,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");

    if !ratio_ok {
        eprintln!(
            "GATE FAIL: incremental re-analysis cost {ratio_large:.3}x of full at \
             {} views (max {max_ratio:.2}x)",
            SIZES[SIZES.len() - 1]
        );
    }
    if !full_ok {
        eprintln!(
            "GATE FAIL: full flow analysis took {full_large:.0}ms at {} views \
             (max {max_full_ms:.0}ms)",
            SIZES[SIZES.len() - 1]
        );
    }
    if !pass {
        std::process::exit(1);
    }
}
