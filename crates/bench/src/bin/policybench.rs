//! Policy-scale benchmark: admission latency vs granted-view count.
//!
//! The compiled authorization fast path exists so that admission stays
//! flat while a principal's policy set grows from 10 to 50,000 granted
//! views. This bench builds, per size N, a 16-relation schema with
//! full-width unconditional views over every relation plus predicated
//! pad views up to N grants, then measures cold-cache admission latency
//! of a U1/U2-unconditional workload (distinct query texts, so neither
//! the plan cache nor the validity cache can absorb the check).
//!
//! ```text
//! policybench [--queries N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Emits `BENCH_policy.json`. With `--check`, exits non-zero when the
//! p99 growth factor from the smallest to the largest policy set
//! exceeds the baseline's `max_p99_growth` (sub-linearity gate: 5000x
//! more policies must cost far less than 5000x the latency), or when
//! the fast-path hit rate over the measured workload falls below
//! `min_hit_rate`.

use fgac_core::{Engine, Session};
use std::time::Instant;

/// Granted-view counts swept, smallest to largest.
const SIZES: [usize; 5] = [10, 100, 1_000, 10_000, 50_000];
/// Base relations; every size covers `min(N, RELATIONS)` of them
/// full-width.
const RELATIONS: usize = 16;

struct Args {
    queries: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: 125,
        out: "BENCH_policy.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--queries" => args.queries = value("--queries").parse().expect("--queries: usize"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// p99 of already-collected microsecond samples.
fn p99(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// Pulls `"key": <number>` out of a flat JSON document — enough to read
/// our own baseline files without a JSON dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Engine with `covered` full-width views plus pad views up to `total`
/// grants for principal `u`.
fn build(total: usize) -> (Engine, usize) {
    let covered = total.min(RELATIONS);
    let mut ddl = String::new();
    for r in 0..RELATIONS {
        ddl.push_str(&format!(
            "create table rel_{r} (id varchar not null, a int, b varchar, \
             primary key (id));\n"
        ));
    }
    for r in 0..covered {
        ddl.push_str(&format!(
            "create authorization view v_full_{r} as select * from rel_{r};\n"
        ));
    }
    // Pad views are predicated, so they compile to residuals: they model
    // the realistic long tail of row-restricted policies the prover owns.
    for i in covered..total {
        ddl.push_str(&format!(
            "create authorization view pad_{i} as select * from rel_{} where a > {i};\n",
            i % RELATIONS
        ));
    }
    let mut e = Engine::new();
    e.admin_script(&ddl).expect("schema + views");
    for r in 0..covered {
        e.grant_view("u", &format!("v_full_{r}")).expect("grant");
    }
    for i in covered..total {
        e.grant_view("u", &format!("pad_{i}")).expect("grant");
    }
    (e, covered)
}

fn main() {
    let args = parse_args();
    let session = Session::new("u");
    let mut p99s: Vec<(usize, f64)> = Vec::new();
    let mut hit_rate_min = f64::INFINITY;
    let mut compile_us_max = 0f64;

    for n in SIZES {
        let (e, covered) = build(n);
        // First admission pays the one-time per-epoch compile of all N
        // granted views; report it separately, it is not a per-query cost.
        let t = Instant::now();
        e.check(&session, "select a from rel_0 where id = 'warm'")
            .expect("warmup check");
        let compile_us = t.elapsed().as_secs_f64() * 1e6;
        compile_us_max = compile_us_max.max(compile_us);

        let hits0 = fgac_core::compiled::fastpath_hit_count();
        let probes0 = hits0 + fgac_core::compiled::fastpath_miss_count();
        let mut samples = Vec::with_capacity(args.queries);
        for q in 0..args.queries {
            // Distinct texts over the covered relations: plan-cache and
            // validity-cache misses every time, U1/U2-unconditional by
            // construction (full-width coverage of the scanned relation).
            let sql = format!(
                "select a, b from rel_{} where id = 'k{q}'",
                q % covered
            );
            let t = Instant::now();
            let report = e.check(&session, &sql).expect("admission");
            samples.push(t.elapsed().as_secs_f64() * 1e6);
            assert!(report.is_valid(), "workload query denied: {sql}");
        }
        let hits = fgac_core::compiled::fastpath_hit_count() - hits0;
        let probes =
            fgac_core::compiled::fastpath_hit_count() + fgac_core::compiled::fastpath_miss_count()
                - probes0;
        let rate = if probes == 0 { 0.0 } else { hits as f64 / probes as f64 };
        hit_rate_min = hit_rate_min.min(rate);
        let p = p99(&mut samples);
        eprintln!(
            "n={n}: p99 {p:.1}µs, fast-path {hits}/{probes} ({:.1}%), \
             compile+first-check {compile_us:.0}µs",
            rate * 100.0
        );
        p99s.push((n, p));
    }

    let (_, p_small) = p99s[0];
    let (_, p_large) = p99s[p99s.len() - 1];
    let growth = p_large / p_small.max(1e-9);

    // --- Gates.
    let (max_growth, min_rate) = match args.check.as_deref() {
        Some(path) => {
            let doc = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            (
                json_number(&doc, "max_p99_growth")
                    .unwrap_or_else(|| panic!("baseline {path} lacks max_p99_growth")),
                json_number(&doc, "min_hit_rate")
                    .unwrap_or_else(|| panic!("baseline {path} lacks min_hit_rate")),
            )
        }
        None => (f64::INFINITY, 0.0),
    };
    let growth_ok = growth <= max_growth;
    let rate_ok = hit_rate_min >= min_rate;
    let pass = growth_ok && rate_ok;

    let per_size: Vec<String> = p99s
        .iter()
        .map(|(n, p)| format!("  \"p99_us_{n}\": {p:.1}"))
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"fgac-policy-v1\",\n  \"queries_per_size\": {},\n{},\n  \"growth_p99\": {:.2},\n  \"hit_rate\": {:.4},\n  \"compile_first_check_us_max\": {:.0},\n  \"gates\": {{ \"max_p99_growth\": {}, \"min_hit_rate\": {:.2}, \"pass\": {} }}\n}}\n",
        args.queries,
        per_size.join(",\n"),
        growth,
        hit_rate_min,
        compile_us_max,
        if max_growth.is_finite() { format!("{max_growth:.1}") } else { "null".into() },
        min_rate,
        pass,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");

    if !growth_ok {
        eprintln!(
            "GATE FAIL: p99 grew {growth:.2}x from {} to {} policies (max {max_growth:.1}x)",
            SIZES[0],
            SIZES[SIZES.len() - 1]
        );
    }
    if !rate_ok {
        eprintln!(
            "GATE FAIL: fast-path hit rate {hit_rate_min:.2} under required {min_rate:.2}"
        );
    }
    if !pass {
        std::process::exit(1);
    }
}
