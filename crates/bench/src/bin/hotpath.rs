//! Hot-path benchmark: cold admission vs warm (plan-cache + validity-
//! cache) repeat execution, plus the executor's rows-cloned reduction.
//!
//! Emits `BENCH_hotpath.json` (see EXPERIMENTS.md for the field
//! reference) and optionally gates against a checked-in baseline:
//!
//! ```text
//! hotpath [--students N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! With `--check`, the process exits non-zero when the warm repeat-query
//! throughput falls below 75% of the baseline's `warm_qps`, or when the
//! warm-over-cold speedup drops under the 5x floor — the CI regression
//! gate for the admission-to-execution hot path.

use fgac_bench::{pick_triple, university};
use fgac_core::Session;
use std::time::Instant;

/// Minimum acceptable warm-over-cold speedup.
const MIN_WARM_OVER_COLD: f64 = 5.0;
/// Fraction of the baseline throughput that still passes.
const QPS_TOLERANCE: f64 = 0.75;

struct Args {
    students: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        students: 100,
        out: "BENCH_hotpath.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--students" => args.students = value("--students").parse().expect("--students: usize"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Median of already-collected microsecond samples.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Pulls `"key": <number>` out of a flat JSON document — enough to read
/// our own baseline files without a JSON dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = parse_args();
    let mut uni = university(args.students);
    let (student, _reg, _unreg) = pick_triple(&uni);
    let session = Session::new(student.clone());

    // The canonical repeated query: the student's own grades, valid via
    // the MyGrades authorization view.
    let sql = "select course_id, grade from grades where student_id = $user_id";

    // --- Cold: every iteration pays parse + bind + validity inference.
    let cold_iters = 21;
    let mut cold = Vec::with_capacity(cold_iters);
    for _ in 0..cold_iters {
        uni.engine.plan_cache().clear();
        uni.engine.cache().clear();
        let t = Instant::now();
        std::hint::black_box(uni.engine.execute(&session, sql).expect("valid query"));
        cold.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let cold_us = median(&mut cold);

    // --- Warm: plan cache + validity cache both hit.
    uni.engine.plan_cache().clear();
    uni.engine.cache().clear();
    uni.engine.execute(&session, sql).expect("warmup");
    let warm_iters = 201;
    let mut warm = Vec::with_capacity(warm_iters);
    for _ in 0..warm_iters {
        let t = Instant::now();
        std::hint::black_box(uni.engine.execute(&session, sql).expect("valid query"));
        warm.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let warm_us = median(&mut warm);
    let warm_over_cold = cold_us / warm_us.max(1e-9);

    // --- Warm throughput over a fixed window.
    let tp_iters = 2_000u64;
    let t = Instant::now();
    for _ in 0..tp_iters {
        std::hint::black_box(uni.engine.execute(&session, sql).expect("valid query"));
    }
    let warm_qps = tp_iters as f64 / t.elapsed().as_secs_f64();

    let plan = uni.engine.plan_cache().snapshot();
    let validity = uni.engine.cache().snapshot();

    // --- Executor copy cost: full scan vs selective lookup. The admin
    // bypasses validity checking, so this measures the executor alone.
    let table_rows = uni
        .engine
        .database()
        .table(&"grades".into())
        .expect("grades exists")
        .rows()
        .len() as u64;
    fgac_exec::reset_rows_cloned();
    let full = fgac_exec::run_query_sql(
        uni.engine.database(),
        "select * from grades",
        session.params(),
    )
    .expect("full scan runs");
    let rows_cloned_full = fgac_exec::rows_cloned();
    fgac_exec::reset_rows_cloned();
    let selective = fgac_exec::run_query_sql(
        uni.engine.database(),
        &format!("select grade from grades where student_id = '{student}'"),
        session.params(),
    )
    .expect("selective query runs");
    let rows_cloned_selective = fgac_exec::rows_cloned();

    // --- Gates.
    let speedup_ok = warm_over_cold >= MIN_WARM_OVER_COLD;
    let baseline_qps = args.check.as_deref().map(|path| {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        json_number(&doc, "warm_qps").unwrap_or_else(|| panic!("baseline {path} lacks warm_qps"))
    });
    let qps_ok = baseline_qps.is_none_or(|b| warm_qps >= QPS_TOLERANCE * b);
    let pass = speedup_ok && qps_ok;

    let json = format!(
        "{{\n  \"schema\": \"fgac-hotpath-v1\",\n  \"students\": {},\n  \"table_rows\": {},\n  \"cold_check_us\": {:.1},\n  \"warm_check_us\": {:.1},\n  \"warm_over_cold\": {:.1},\n  \"warm_qps\": {:.0},\n  \"plan_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {} }},\n  \"validity_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {} }},\n  \"rows_cloned_full_scan\": {},\n  \"rows_cloned_selective\": {},\n  \"selective_result_rows\": {},\n  \"gates\": {{ \"min_warm_over_cold\": {:.1}, \"qps_tolerance\": {:.2}, \"baseline_warm_qps\": {}, \"pass\": {} }}\n}}\n",
        args.students,
        table_rows,
        cold_us,
        warm_us,
        warm_over_cold,
        warm_qps,
        plan.hits,
        plan.misses,
        plan.entries,
        validity.hits,
        validity.misses,
        validity.entries,
        rows_cloned_full,
        rows_cloned_selective,
        selective.rows.len(),
        MIN_WARM_OVER_COLD,
        QPS_TOLERANCE,
        baseline_qps.map_or("null".to_string(), |b| format!("{b:.0}")),
        pass,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");
    assert_eq!(full.rows.len() as u64, table_rows, "full scan sees every row");
    eprintln!(
        "cold {cold_us:.1}µs -> warm {warm_us:.1}µs ({warm_over_cold:.1}x), \
         {warm_qps:.0} q/s warm; cloned {rows_cloned_selective}/{table_rows} rows selective"
    );

    if !speedup_ok {
        eprintln!(
            "GATE FAIL: warm-over-cold {warm_over_cold:.1}x < required {MIN_WARM_OVER_COLD:.1}x"
        );
    }
    if !qps_ok {
        eprintln!(
            "GATE FAIL: warm throughput {warm_qps:.0} q/s under {:.0}% of baseline {:.0} q/s",
            QPS_TOLERANCE * 100.0,
            baseline_qps.unwrap_or(0.0)
        );
    }
    if !pass {
        std::process::exit(1);
    }
}
