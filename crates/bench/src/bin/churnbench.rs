//! Policy-churn benchmark: request latency while grants flip underneath.
//!
//! PR-8 replaced the epoch cold start (every grant/revoke cleared every
//! cache) with a dependency-tracked sweep plus certificate-backed warm
//! revalidation. This bench measures what that buys: a reader
//! population's p99 with a writer continuously revoking/re-granting a
//! *pad* view the readers hold but never use. Every flip makes the
//! readers' cached accepts stale; the next request re-verifies the
//! stored certificate against the new grant state instead of re-proving
//! from scratch.
//!
//! ```text
//! churnbench [--iters N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Emits `BENCH_churn.json`. With `--check`, exits non-zero when
//! p99-under-churn exceeds `max_p99_churn_factor` times the churn-free
//! p99, or when the revalidation hit rate (warm re-admissions over all
//! stale-entry resolutions) falls below `min_revalidation_rate`.

use fgac_core::{Engine, Session, SharedEngine};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Reader principals; each holds the full view plus the flipping pad.
const PRINCIPALS: usize = 4;
/// Distinct query texts per principal (so the sweep has a population of
/// entries to restamp or stale, not a single one).
const QUERIES_PER_PRINCIPAL: usize = 8;

struct Args {
    iters: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 3_000,
        out: "BENCH_churn.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--iters" => args.iters = value("--iters").parse().expect("--iters: usize"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// p99 of already-collected microsecond samples.
fn p99(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// Pulls `"key": <number>` out of a flat JSON document — enough to read
/// our own baseline files without a JSON dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn build() -> SharedEngine {
    let mut ddl = String::from(
        "create table t (id varchar not null, a int, b varchar, primary key (id));\n\
         create authorization view v_full as select * from t;\n\
         create authorization view v_pad as select * from t where a > 1000000;\n",
    );
    for i in 0..64 {
        ddl.push_str(&format!(
            "insert into t values ('k{i}', {i}, 'row{i}');\n"
        ));
    }
    let mut e = Engine::new();
    e.admin_script(&ddl).expect("schema + data");
    for p in 0..PRINCIPALS {
        let user = format!("u{p}");
        e.grant_view(&user, "v_full").expect("grant v_full");
        e.grant_view(&user, "v_pad").expect("grant v_pad");
    }
    SharedEngine::new(e)
}

fn query_text(p: usize, q: usize) -> String {
    format!("select a, b from t where id = 'k{}'", (p * QUERIES_PER_PRINCIPAL + q) % 64)
}

/// One measured pass over the whole principal × query matrix; pushes a
/// per-request sample for each.
fn measure_round(shared: &SharedEngine, sessions: &[Session], samples: &mut Vec<f64>) {
    for (p, s) in sessions.iter().enumerate() {
        for q in 0..QUERIES_PER_PRINCIPAL {
            let sql = query_text(p, q);
            let t = Instant::now();
            let r = shared.execute(s, &sql).expect("reader request");
            samples.push(t.elapsed().as_secs_f64() * 1e6);
            assert!(r.rows().is_some(), "reader query must return rows");
        }
    }
}

fn main() {
    let args = parse_args();
    let shared = build();
    let sessions: Vec<Session> = (0..PRINCIPALS).map(|p| Session::new(format!("u{p}"))).collect();
    let rounds = args.iters.div_ceil(PRINCIPALS * QUERIES_PER_PRINCIPAL).max(1);

    // --- Phase 1: churn-free. Warm everything, then measure.
    let mut warm = Vec::new();
    measure_round(&shared, &sessions, &mut warm);
    let mut quiet = Vec::with_capacity(rounds * PRINCIPALS * QUERIES_PER_PRINCIPAL);
    for _ in 0..rounds {
        measure_round(&shared, &sessions, &mut quiet);
    }
    let p99_quiet = p99(&mut quiet);

    // --- Phase 2: identical measurement under continuous policy churn.
    // The writer flips v_pad for every principal: each flip affects all
    // readers, so their cached accepts go stale and the next request
    // must resolve through certificate revalidation (v_full, which
    // justifies every query, is never touched).
    let (reval_hits0, reval_misses0) = shared.with_read(|e| e.cache().revalidation_stats());
    let stop = Arc::new(AtomicBool::new(false));
    let flips = Arc::new(AtomicU64::new(0));
    let writer = {
        let shared = shared.clone();
        let stop = Arc::clone(&stop);
        let flips = Arc::clone(&flips);
        std::thread::spawn(move || {
            let mut held = true;
            // Acquire pairs with the Release store below: the loop exit
            // decision synchronizes with the measuring thread's state
            // (L002 — a Relaxed load must not feed a branch).
            while !stop.load(Ordering::Acquire) {
                for p in 0..PRINCIPALS {
                    let user = format!("u{p}");
                    shared
                        .with_write(|e| {
                            if held {
                                e.revoke_view(&user, "v_pad")
                            } else {
                                e.grant_view(&user, "v_pad")
                            }
                        })
                        .expect("pad flip");
                }
                held = !held;
                flips.fetch_add(1, Ordering::Relaxed);
                // Let readers actually run between flips; back-to-back
                // write-lock acquisition would measure lock starvation,
                // not invalidation cost.
                std::thread::yield_now();
            }
            // Leave the pad granted for a clean final state.
            if !held {
                for p in 0..PRINCIPALS {
                    let user = format!("u{p}");
                    shared.with_write(|e| e.grant_view(&user, "v_pad")).expect("regrant");
                }
            }
        })
    };

    let mut churn = Vec::with_capacity(rounds * PRINCIPALS * QUERIES_PER_PRINCIPAL);
    for _ in 0..rounds {
        measure_round(&shared, &sessions, &mut churn);
    }
    stop.store(true, Ordering::Release);
    writer.join().expect("writer thread");
    let p99_churn = p99(&mut churn);
    let total_flips = flips.load(Ordering::Relaxed);

    let (reval_hits1, reval_misses1) = shared.with_read(|e| e.cache().revalidation_stats());
    let reval_hits = reval_hits1 - reval_hits0;
    let reval_misses = reval_misses1 - reval_misses0;
    let reval_total = reval_hits + reval_misses;
    let reval_rate = if reval_total == 0 {
        0.0
    } else {
        reval_hits as f64 / reval_total as f64
    };
    let factor = p99_churn / p99_quiet.max(1e-9);

    eprintln!(
        "quiet p99 {p99_quiet:.1}µs, churn p99 {p99_churn:.1}µs ({factor:.2}x), \
         {total_flips} flips, revalidation {reval_hits}/{reval_total} ({:.1}%)",
        reval_rate * 100.0
    );

    // --- Gates.
    let (max_factor, min_reval) = match args.check.as_deref() {
        Some(path) => {
            let doc = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            (
                json_number(&doc, "max_p99_churn_factor")
                    .unwrap_or_else(|| panic!("baseline {path} lacks max_p99_churn_factor")),
                json_number(&doc, "min_revalidation_rate")
                    .unwrap_or_else(|| panic!("baseline {path} lacks min_revalidation_rate")),
            )
        }
        None => (f64::INFINITY, 0.0),
    };
    let factor_ok = factor <= max_factor;
    let reval_ok = reval_rate >= min_reval || args.check.is_none();
    let pass = factor_ok && reval_ok;

    let json = format!(
        "{{\n  \"schema\": \"fgac-churn-v1\",\n  \"iters\": {},\n  \"p99_quiet_us\": {:.1},\n  \"p99_churn_us\": {:.1},\n  \"churn_factor\": {:.2},\n  \"flips\": {},\n  \"revalidation_hits\": {},\n  \"revalidation_misses\": {},\n  \"revalidation_rate\": {:.4},\n  \"gates\": {{ \"max_p99_churn_factor\": {}, \"min_revalidation_rate\": {:.2}, \"pass\": {} }}\n}}\n",
        rounds * PRINCIPALS * QUERIES_PER_PRINCIPAL,
        p99_quiet,
        p99_churn,
        factor,
        total_flips,
        reval_hits,
        reval_misses,
        reval_rate,
        if max_factor.is_finite() { format!("{max_factor:.1}") } else { "null".into() },
        min_reval,
        pass,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");

    if !factor_ok {
        eprintln!(
            "GATE FAIL: p99 under churn is {factor:.2}x the churn-free p99 (max {max_factor:.1}x)"
        );
    }
    if !reval_ok {
        eprintln!(
            "GATE FAIL: revalidation hit rate {reval_rate:.2} under required {min_reval:.2}"
        );
    }
    if !pass {
        std::process::exit(1);
    }
}
