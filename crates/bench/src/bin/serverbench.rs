//! Multi-client load benchmark for the network front end.
//!
//! Emits `BENCH_server.json` and optionally gates against a checked-in
//! baseline:
//!
//! ```text
//! serverbench [--clients N] [--requests N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Two phases against an in-process [`fgac_server::Server`]:
//!
//! 1. **Throughput** — N concurrent clients each issue M repeated
//!    authorized queries (the hot path: plan cache + validity cache
//!    hits) over real TCP connections. Gates: aggregate q/s must stay
//!    above `min_qps`, and p99 request latency below `max_p99_ms`.
//! 2. **Overload** — the same workload against a server with a
//!    one-slot queue and a single worker, so admission control *must*
//!    shed. Clients retry on `SHED` with jittered exponential backoff
//!    until every request eventually succeeds. Gated on invariants,
//!    not speed: every shed answer is `SHED` (never `DENIED` — denial
//!    under load would be an authorization lie), and every request
//!    completes within the retry budget.

use fgac_core::{Engine, SharedEngine};
use fgac_server::{Client, Response, Server, ServerConfig};
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

struct Args {
    clients: usize,
    requests: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        requests: 250,
        out: "BENCH_server.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--clients" => args.clients = value("--clients").parse().expect("--clients: usize"),
            "--requests" => args.requests = value("--requests").parse().expect("--requests: usize"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Pulls `"key": <number>` out of a flat JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One engine with the standard grades fixture, ready to serve.
fn fixture_engine() -> SharedEngine {
    let mut e = Engine::new();
    e.admin_script(
        "create table grades (student_id varchar not null, course_id varchar not null, \
           grade int, primary key (student_id, course_id));
         create authorization view MyGrades as \
           select * from grades where student_id = $user_id;
         insert into grades values ('11', 'cs101', 90), ('11', 'cs102', 85), ('12', 'cs101', 70);
         grant view MyGrades to '11';",
    )
    .expect("fixture applies");
    SharedEngine::new(e)
}

/// Issues one query, retrying `SHED`/`UNAVAILABLE` with jittered
/// exponential backoff. Returns (latency of the successful attempt,
/// number of shed answers absorbed). Panics if the server answers with
/// `DENIED` — overload must never speak authorization vocabulary.
fn query_with_backoff(
    client: &mut Client,
    rng: &mut rand::DefaultRng,
    sql: &str,
) -> (Duration, u64) {
    let mut sheds = 0u64;
    for attempt in 0u32.. {
        let t = Instant::now();
        let resp = client.query(sql).expect("transport");
        match resp {
            Response::Rows { .. } | Response::Affected(_) => return (t.elapsed(), sheds),
            Response::Denied(m) => panic!("overload surfaced as DENIED: {m}"),
            Response::Shed(_) | Response::Unavailable(_) | Response::Timeout(_) => {
                sheds += 1;
                assert!(attempt < 40, "request never admitted after 40 attempts");
                // Jittered exponential backoff, capped at ~25ms.
                let base_us = (200u64 << attempt.min(7)).min(25_000);
                let jitter = rng.gen_range(0..=base_us);
                std::thread::sleep(Duration::from_micros(base_us / 2 + jitter));
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    unreachable!("loop returns or panics")
}

struct PhaseOutcome {
    qps: f64,
    p99_ms: f64,
    total_requests: u64,
    sheds: u64,
}

/// Runs `clients` threads of `requests` queries each against `server`.
fn run_phase(addr: std::net::SocketAddr, clients: usize, requests: usize) -> PhaseOutcome {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = rand::DefaultRng::seed_from_u64(0xBEEF ^ c as u64);
                let mut client =
                    Client::connect(addr, Duration::from_secs(10)).expect("connect");
                let hello = client.hello("11").expect("hello");
                assert!(matches!(hello, Response::Ok(_)), "handshake: {hello:?}");
                let mut latencies = Vec::with_capacity(requests);
                let mut sheds = 0u64;
                for i in 0..requests {
                    // Mostly the hot repeated query; a sprinkle of variants
                    // so the plan cache sees some misses too.
                    let sql = if i % 16 == 0 {
                        format!("select grade from grades where student_id = '11' and grade > {}", i % 50)
                    } else {
                        "select course_id, grade from grades where student_id = '11'".to_string()
                    };
                    let (lat, s) = query_with_backoff(&mut client, &mut rng, &sql);
                    latencies.push(lat);
                    sheds += s;
                }
                let _ = client.bye();
                (latencies, sheds)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut sheds = 0u64;
    for h in handles {
        let (lats, s) = h.join().expect("client thread");
        latencies.extend(lats);
        sheds += s;
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let idx = ((latencies.len() * 99) / 100).min(latencies.len() - 1);
    let p99 = latencies[idx].as_secs_f64() * 1e3;
    PhaseOutcome {
        qps: latencies.len() as f64 / elapsed,
        p99_ms: p99,
        total_requests: latencies.len() as u64,
        sheds,
    }
}

fn main() {
    let args = parse_args();

    // --- Phase 1: throughput on a generously provisioned server.
    let server = Server::start(
        fixture_engine(),
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            max_connections: args.clients + 8,
            ..ServerConfig::default()
        },
    )
    .expect("start throughput server");
    let throughput = run_phase(server.local_addr(), args.clients, args.requests);
    let report = server.finish().expect("drain throughput server");
    assert!(report.drained_cleanly, "throughput phase left work behind");

    // --- Phase 2: overload. One worker, one queue slot: shedding is
    // guaranteed, and the retry loop must still complete every request.
    let server = Server::start(
        fixture_engine(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            max_connections: args.clients + 8,
            ..ServerConfig::default()
        },
    )
    .expect("start overload server");
    let overload_requests = (args.requests / 5).max(20);
    let overload = run_phase(server.local_addr(), args.clients, overload_requests);
    let report = server.finish().expect("drain overload server");
    let shed_counter = report
        .metrics
        .iter()
        .find(|(k, _)| *k == "resp_shed")
        .map_or(0, |(_, v)| *v);
    let denied_counter = report
        .metrics
        .iter()
        .find(|(k, _)| *k == "resp_denied")
        .map_or(0, |(_, v)| *v);
    assert_eq!(
        denied_counter, 0,
        "overload phase produced DENIED responses — shedding leaked into authorization"
    );

    // --- Gates.
    let (min_qps, max_p99_ms) = args.check.as_deref().map_or((500.0, 250.0), |path| {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        (
            json_number(&doc, "min_qps").unwrap_or_else(|| panic!("baseline {path} lacks min_qps")),
            json_number(&doc, "max_p99_ms")
                .unwrap_or_else(|| panic!("baseline {path} lacks max_p99_ms")),
        )
    });
    let pass = throughput.qps >= min_qps && throughput.p99_ms <= max_p99_ms;

    let json = format!(
        "{{\n  \"schema\": \"fgac-server-v1\",\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \"qps\": {:.0},\n  \"p99_ms\": {:.3},\n  \"requests\": {},\n  \"overload\": {{ \"requests\": {}, \"sheds_observed_by_clients\": {}, \"resp_shed\": {}, \"resp_denied\": {}, \"qps\": {:.0} }},\n  \"gates\": {{ \"min_qps\": {:.0}, \"max_p99_ms\": {:.1}, \"pass\": {} }}\n}}\n",
        args.clients,
        args.requests,
        throughput.qps,
        throughput.p99_ms,
        throughput.total_requests,
        overload.total_requests,
        overload.sheds,
        shed_counter,
        denied_counter,
        overload.qps,
        min_qps,
        max_p99_ms,
        pass,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");
    eprintln!(
        "throughput {:.0} q/s p99 {:.2}ms over {} requests; overload: {} client-visible sheds, {} SHED frames, 0 DENIED",
        throughput.qps, throughput.p99_ms, throughput.total_requests, overload.sheds, shed_counter
    );

    if !pass {
        eprintln!(
            "GATE FAIL: qps {:.0} (min {min_qps:.0}) p99 {:.2}ms (max {max_p99_ms:.1}ms)",
            throughput.qps, throughput.p99_ms
        );
        std::process::exit(1);
    }
}
