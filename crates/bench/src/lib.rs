//! # fgac-bench
//!
//! Shared scenario setup and measurement helpers for the experiment
//! harness. The experiments themselves live in:
//!
//! * `src/bin/report.rs` — regenerates every experiment table (E1–E8;
//!   see DESIGN.md §4 and EXPERIMENTS.md);
//! * `benches/e*.rs` — Criterion microbenchmarks per experiment.

use fgac_core::{CheckOptions, Session, Validator, Verdict};
use fgac_workload::university::{build, University, UniversityConfig};
use std::time::{Duration, Instant};

/// Median wall time of `iters` runs of `f`.
pub fn median_time<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Builds the standard university of the given size.
pub fn university(students: usize) -> University {
    build(UniversityConfig::default().with_students(students)).expect("workload builds")
}

/// A (student, registered-course, unregistered-course) triple from the
/// generated data — the inputs the query mix needs.
pub fn pick_triple(uni: &University) -> (String, String, String) {
    let student = uni.student(0);
    let reg = uni
        .registrations
        .iter()
        .find(|(s, _)| s == &student)
        .map(|(_, c)| c.clone())
        .expect("student registers");
    let unreg = (0..uni.config.courses)
        .map(|i| uni.course(i))
        .find(|c| !uni.is_registered(&student, c))
        .expect("unregistered course exists");
    (student, reg, unreg)
}

/// Runs one validity check with the given options; returns the verdict.
pub fn check_with(uni: &University, options: CheckOptions, user: &str, sql: &str) -> Verdict {
    Validator::new(uni.engine.database(), uni.engine.grants())
        .with_options(options)
        .check_sql(&Session::new(user), sql)
        .expect("check runs")
        .verdict
}

/// Formats a duration in microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Prints a row of a fixed-width table.
pub fn row(cells: &[&str], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work_end_to_end() {
        let uni = university(20);
        let (s, reg, unreg) = pick_triple(&uni);
        assert_ne!(reg, unreg);
        let v = check_with(
            &uni,
            CheckOptions::default(),
            &s,
            &format!("select * from grades where student_id = '{s}'"),
        );
        assert_eq!(v, Verdict::Unconditional);
        let d = median_time(3, || 1 + 1);
        assert!(d < std::time::Duration::from_secs(1));
    }
}
