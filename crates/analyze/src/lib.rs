//! Grant-time static analysis of the installed policy set.
//!
//! The Non-Truman model (Section 4) makes the *policy set* the trusted
//! computing base: a mis-written authorization view silently
//! over-grants, a subsumed one bloats every validity check, and a
//! conditionally-valid check can itself leak data (the Section 5.4
//! remainder probe). This crate runs the inference machinery the
//! validator already has — the binder, normalization, and the
//! implication prover — over the *policy* instead of over queries, and
//! reports defects as structured diagnostics with stable codes:
//!
//! | code | name | severity |
//! |------|------|----------|
//! | `P001` | UnsatisfiableViewPredicate | error |
//! | `P002` | RedundantGrant | warning |
//! | `P003` | ShadowedByRevocation | error |
//! | `P004` | UnusableView | error |
//! | `P005` | LeakyConditionalCheck | error |
//! | `P006` | UnboundParameter | warning |
//! | `W001` | CrossViewContradiction | warning |
//!
//! Every prover-backed analysis runs under a [`fgac_types::Budget`].
//! Unlike the admission path — which fails *closed* (DENY) on
//! exhaustion — the analyzer fails *open*: an exhausted check degrades
//! to a diagnostic of severity [`Severity::Unknown`] and the pass keeps
//! going. A lint must never be the thing that panics or wedges.

pub mod cert;
pub mod certjson;
pub mod diag;
pub mod flow;
pub mod policy;
pub mod query;

pub use cert::{
    check_certificate, revalidate_certificate, CertPolicy, CertVerdict, Certificate,
    CheckerOptions, Obligation, RuleId, Step,
};
pub use certjson::{certificate_from_json, certificate_to_json, Json};
pub use diag::{diagnostics_from_json, diagnostics_to_json, Code, Diagnostic, Severity};
pub use flow::{
    analyze_flow_set, flow_diff_grant, flow_principals, FlowContext, PrincipalFlow, ProposedGrant,
};
pub use policy::{analyze_policy_set, AnalyzeOptions, PolicySet};
pub use query::analyze_query;
