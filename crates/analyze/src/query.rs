//! Per-query lints: the same defect classes the policy pass finds in
//! view bodies, surfaced for an individual query before it is ever
//! admitted (what a CI step runs over an application's query corpus).

use crate::diag::{Code, Diagnostic};
use crate::policy::{symbolize_params, AnalyzeOptions};
use fgac_algebra::{implication, normalize, ParamScope, ScalarExpr, SpjBlock};
use fgac_storage::Catalog;

/// Lints one query text against the catalog: `P004` when it does not
/// bind, `P001` when its predicate is unsatisfiable, `P006` for
/// parameters no predicate constrains. The principal field of the
/// returned diagnostics is empty — the lints are grant-independent.
pub fn analyze_query(catalog: &Catalog, sql: &str, opts: &AnalyzeOptions) -> Vec<Diagnostic> {
    let object = "<query>";
    let mut out = Vec::new();
    let query = match fgac_sql::parse_query(sql) {
        Ok(q) => q,
        Err(e) => {
            out.push(Diagnostic::new(
                Code::UnusableView,
                "",
                object,
                format!("query does not parse: {e}"),
            ));
            return out;
        }
    };

    for (name, is_access) in crate::policy::unconstrained_params(&query) {
        let sigil = if is_access { "$$" } else { "$" };
        out.push(Diagnostic::new(
            Code::UnboundParameter,
            "",
            object,
            format!("parameter {sigil}{name} is never constrained by a predicate"),
        ));
    }

    let symbolized = symbolize_params(&query);
    let bound = match fgac_algebra::bind_query(catalog, &symbolized, &ParamScope::new()) {
        Ok(b) => b,
        Err(e) => {
            out.push(Diagnostic::new(
                Code::UnusableView,
                "",
                object,
                format!("query does not bind against the catalog: {e}"),
            ));
            return out;
        }
    };

    if let Some(block) = SpjBlock::decompose(&normalize(&bound.plan)) {
        let meter = opts.budget.start();
        match implication::implies_metered(
            &block.conjuncts,
            &[ScalarExpr::lit(false)],
            block.flat_arity(),
            &meter,
        ) {
            Ok(true) => out.push(Diagnostic::new(
                Code::UnsatisfiableViewPredicate,
                "",
                object,
                "query predicate is unsatisfiable: it can never return a row",
            )),
            Ok(false) => {}
            Err(_) => out.push(Diagnostic::unknown(
                Code::UnsatisfiableViewPredicate,
                "",
                object,
                "analysis budget exhausted; result unknown",
            )),
        }
    }
    out
}
