//! Validity certificates: machine-checkable derivations for the
//! Non-Truman admission decision, and an independent proof checker.
//!
//! The validator (in `fgac-core`) accepts a query only when the paper's
//! inference rules (Sections 5.3–5.6) derive its validity from the
//! granted authorization views. A [`Certificate`] records that
//! derivation as a typed tree of [`Step`]s — U1 roots, U2
//! subsumption/composition, U3a/U3c inclusion-dependency expansion,
//! C3a/C3b conditional remainders, and Section 6 dependent joins — each
//! carrying the concrete SPJ blocks, substitutions, and implication
//! obligations it rests on.
//!
//! [`check_certificate`] is the *independent* checker: translation
//! validation for access control. It shares nothing with the validator
//! beyond the `fgac-algebra` plan representation and the implication
//! prover (this crate does not depend on `fgac-core` at all); every
//! semantic fact is re-derived here from the certificate, the catalog,
//! and the raw grant tables:
//!
//! * **U1** — the named view really is granted to the principal at the
//!   certificate's policy epoch, really is an `AUTHORIZATION` view, and
//!   re-instantiating its body with the certificate's parameters (and
//!   access-pattern pins) reproduces the recorded block exactly.
//! * **U2-match** — the recorded flat-column substitution is
//!   contiguity- and type-checked against both blocks' schemas, the
//!   subsumption implication re-proves, every used column survives the
//!   matched block's projection, and multiplicity is re-justified
//!   (primary-key reasoning re-implemented here, not imported).
//! * **U3a/U3c** — the named inclusion dependency exists in the catalog
//!   and is visible to the principal; the core's scan multiset is the
//!   premise's minus one remainder instance; every recorded prover
//!   obligation re-proves.
//! * **C3a/C3b** — the remainder probe's relations must themselves be
//!   certified valid (the per-query form of the `P005` leak condition:
//!   an uncertified probe premise is `Q002`), and the probe must have
//!   returned rows.
//! * **U2-dag / U2-restrict / U2-compose / dependent joins** — exact
//!   structural re-checks: restriction conjuncts must be computable
//!   over the premise's projection, compositions must concatenate
//!   frames precisely, dependent joins re-derive every access-pattern
//!   capability from the view definitions and re-run the reachability
//!   fixpoint.
//!
//! The checker is budget-metered and **fail-closed**: if the meter
//! trips mid-proof the certificate is rejected (`Q004`), never waved
//! through. An empty diagnostic list is the only "verified" answer.

use crate::diag::{Code, Diagnostic};
use fgac_algebra::implication::implies_metered;
use fgac_algebra::{bind_query, CmpOp, ParamScope, ScalarExpr, SpjBlock};
use fgac_storage::{Catalog, InclusionDependency};
use fgac_types::{Budget, BudgetMeter, Column, Error, Ident, Result, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The inference rule a [`Step`] applies. The `U*` rules double as
/// their `C*` counterparts when the derivation's goal is conditional
/// (the paper's C1/C2 are U1/U2 applied to conditionally valid
/// expressions); C3a/C3b are the genuinely conditional steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// A granted authorization view, instantiated for the session.
    U1,
    /// Bottom-up DAG propagation: the goal expression is an operation
    /// over premise classes (rule U2's general form).
    U2Dag,
    /// SPJ subsumption: the block is σ/π/δ over one matched premise
    /// block, with a flat-column substitution and an implication proof.
    U2Match,
    /// Restriction: premise block plus extra conjuncts over its
    /// projected columns.
    U2Restrict,
    /// Composition: cross-join of two premise blocks (U2 with n = 2).
    U2Compose,
    /// Inclusion-dependency expansion: the DISTINCT core projection.
    U3a,
    /// U3a plus multiplicity reconstruction (DISTINCT dropped).
    U3c,
    /// Conditional validity via a non-empty remainder probe.
    C3a,
    /// C3a plus multiplicity reconstruction.
    C3b,
    /// Section 6 dependent join through access-pattern views.
    DependentJoin,
}

impl RuleId {
    /// Stable wire identifier.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::U1 => "U1",
            RuleId::U2Dag => "U2-dag",
            RuleId::U2Match => "U2-match",
            RuleId::U2Restrict => "U2-restrict",
            RuleId::U2Compose => "U2-compose",
            RuleId::U3a => "U3a",
            RuleId::U3c => "U3c",
            RuleId::C3a => "C3a",
            RuleId::C3b => "C3b",
            RuleId::DependentJoin => "S6-depjoin",
        }
    }

    /// Parses the wire identifier.
    pub fn from_str_id(s: &str) -> Option<RuleId> {
        Some(match s {
            "U1" => RuleId::U1,
            "U2-dag" => RuleId::U2Dag,
            "U2-match" => RuleId::U2Match,
            "U2-restrict" => RuleId::U2Restrict,
            "U2-compose" => RuleId::U2Compose,
            "U3a" => RuleId::U3a,
            "U3c" => RuleId::U3c,
            "C3a" => RuleId::C3a,
            "C3b" => RuleId::C3b,
            "S6-depjoin" => RuleId::DependentJoin,
            _ => return None,
        })
    }

    /// True for the rules that only ever justify *conditional* validity.
    pub fn is_conditional(&self) -> bool {
        matches!(self, RuleId::C3a | RuleId::C3b)
    }

    /// All rule identifiers, for coverage enumeration.
    pub fn all() -> [RuleId; 10] {
        [
            RuleId::U1,
            RuleId::U2Dag,
            RuleId::U2Match,
            RuleId::U2Restrict,
            RuleId::U2Compose,
            RuleId::U3a,
            RuleId::U3c,
            RuleId::C3a,
            RuleId::C3b,
            RuleId::DependentJoin,
        ]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One implication the prover discharged during the derivation:
/// `∧premise ⟹ ∧conclusion` over a flat row of `arity` columns. The
/// checker re-proves every obligation with its own meter.
#[derive(Debug, Clone, PartialEq)]
pub struct Obligation {
    pub premise: Vec<ScalarExpr>,
    pub conclusion: Vec<ScalarExpr>,
    pub arity: usize,
}

/// One rule application in the derivation tree. Steps are stored in
/// topological order; `premises` are indices of earlier steps. The last
/// step derives the goal (the admitted query).
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub rule: RuleId,
    /// The SPJ block this step proves valid. `None` for marker steps
    /// (non-SPJ U1 roots, access-pattern views used by a dependent
    /// join) and for non-SPJ `U2-dag` goals.
    pub block: Option<SpjBlock>,
    /// Indices of earlier steps this one builds on.
    pub premises: Vec<usize>,
    /// The granted view a U1 step instantiates.
    pub view: Option<Ident>,
    /// The inclusion dependency a U3 step expands through.
    pub constraint: Option<Ident>,
    /// Rule-specific index list: for `U2-match`, the flat-column map
    /// from this block's frame into the premise's frame (`q_to_v`);
    /// for `S6-depjoin`, the directly-anchored scan-instance indices.
    pub substitution: Vec<usize>,
    /// Access-pattern parameter pins (`$$param` → constant) applied to
    /// a U1 view instantiation.
    pub pins: Vec<(String, Value)>,
    /// Implication obligations discharged by this step.
    pub obligations: Vec<Obligation>,
    /// For C3 steps: how many rows the remainder probe returned.
    pub probe_rows: Option<u64>,
    /// Free-text annotation (never consulted by the checker).
    pub note: String,
}

impl Step {
    /// An empty step of the given rule; emitters fill in the fields the
    /// rule needs.
    pub fn new(rule: RuleId) -> Step {
        Step {
            rule,
            block: None,
            premises: Vec::new(),
            view: None,
            constraint: None,
            substitution: Vec::new(),
            pins: Vec::new(),
            obligations: Vec::new(),
            probe_rows: None,
            note: String::new(),
        }
    }
}

/// Whether the derivation establishes unconditional (U-rules only) or
/// conditional (C3 goal) validity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertVerdict {
    Unconditional,
    Conditional,
}

impl CertVerdict {
    pub fn as_str(&self) -> &'static str {
        match self {
            CertVerdict::Unconditional => "unconditional",
            CertVerdict::Conditional => "conditional",
        }
    }

    pub fn from_str_verdict(s: &str) -> Option<CertVerdict> {
        Some(match s {
            "unconditional" => CertVerdict::Unconditional,
            "conditional" => CertVerdict::Conditional,
            _ => return None,
        })
    }
}

/// A validity certificate: everything needed to re-verify one ACCEPT
/// without trusting the validator.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The user the query was admitted for.
    pub principal: String,
    /// Policy epoch the derivation was minted under. The checker
    /// refuses certificates from any other epoch (`Q003`).
    pub policy_epoch: u64,
    pub verdict: CertVerdict,
    /// Session parameters used to instantiate the views, sorted by name.
    pub params: Vec<(String, Value)>,
    /// Base tables the admitted query scans.
    pub query_tables: Vec<Ident>,
    /// The admitted query as an SPJ block (`None` when the query is not
    /// SPJ-decomposable, e.g. aggregates justified through the DAG).
    pub query: Option<SpjBlock>,
    /// The derivation, topologically ordered; the last step is the goal.
    pub steps: Vec<Step>,
}

/// The policy state the checker verifies a certificate against: the
/// catalog plus the *raw* grant tables (principal → grants) and the
/// current epoch. Built from engine state by the caller; the checker
/// re-derives effective (role-expanded) grant sets itself.
#[derive(Debug, Clone, Copy)]
pub struct CertPolicy<'a> {
    pub catalog: &'a Catalog,
    /// principal → granted authorization views.
    pub view_grants: &'a BTreeMap<String, BTreeSet<Ident>>,
    /// principal → visible integrity constraints.
    pub constraint_grants: &'a BTreeMap<String, BTreeSet<Ident>>,
    /// user → roles.
    pub role_memberships: &'a BTreeMap<String, BTreeSet<String>>,
    pub policy_epoch: u64,
}

/// Checker configuration.
#[derive(Debug, Clone, Default)]
pub struct CheckerOptions {
    /// Budget for the re-proofs. Exhaustion rejects the certificate
    /// (fail closed), it never accepts.
    pub budget: Budget,
}

/// Re-verifies every step of `cert` against `policy`. Returns the empty
/// list iff the certificate is fully verified; otherwise one diagnostic
/// per defect, with stable codes: `Q003` for epoch/grant staleness,
/// `Q002` for probes over uncertified relations, `Q001` for coverage
/// gaps, `Q004` for any derivation step that fails re-verification.
pub fn check_certificate(
    cert: &Certificate,
    policy: &CertPolicy<'_>,
    opts: &CheckerOptions,
) -> Vec<Diagnostic> {
    check_impl(cert, policy, opts, true)
}

/// Re-verifies a certificate minted under an *older* policy epoch
/// against the current grant state. This is the warm-revalidation path:
/// identical to [`check_certificate`] except the top-level epoch pin is
/// skipped — every step is still fully re-verified (grant membership,
/// view re-instantiation, obligation re-proofs, goal coverage) against
/// `policy` as it stands now, so an empty result means the derivation
/// is valid under the *current* grants, not the ones it was minted
/// under. Any defect — including budget exhaustion — rejects (fail
/// closed); callers must then fall back to a cold check.
pub fn revalidate_certificate(
    cert: &Certificate,
    policy: &CertPolicy<'_>,
    opts: &CheckerOptions,
) -> Vec<Diagnostic> {
    check_impl(cert, policy, opts, false)
}

fn check_impl(
    cert: &Certificate,
    policy: &CertPolicy<'_>,
    opts: &CheckerOptions,
    pin_epoch: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if pin_epoch && cert.policy_epoch != policy.policy_epoch {
        diags.push(Diagnostic::new(
            Code::StaleGrantEpoch,
            &cert.principal,
            "certificate",
            format!(
                "certificate was minted at policy epoch {} but the policy is at epoch {}",
                cert.policy_epoch, policy.policy_epoch
            ),
        ));
        return diags;
    }
    let mut params = ParamScope::new();
    for (k, v) in &cert.params {
        params.set(k, v.clone());
    }
    let mut ck = Checker {
        cert,
        policy,
        meter: opts.budget.start(),
        granted_views: effective(policy.view_grants, policy.role_memberships, &cert.principal),
        visible_constraints: effective(
            policy.constraint_grants,
            policy.role_memberships,
            &cert.principal,
        ),
        params,
        verified: vec![false; cert.steps.len()],
        step_tables: vec![BTreeSet::new(); cert.steps.len()],
    };
    for idx in 0..cert.steps.len() {
        let object = format!("step {idx} ({})", cert.steps[idx].rule);
        match ck.check_step(idx) {
            Ok(Ok(tables)) => {
                ck.verified[idx] = true;
                ck.step_tables[idx] = tables;
            }
            Ok(Err((code, msg))) => {
                diags.push(Diagnostic::new(code, &cert.principal, object, msg));
            }
            Err(Error::ResourceExhausted(phase)) => {
                diags.push(Diagnostic::new(
                    Code::CertificateStepUnverified,
                    &cert.principal,
                    object,
                    format!("checker budget exhausted in {phase}; failing closed"),
                ));
                return diags;
            }
            Err(e) => {
                diags.push(Diagnostic::new(
                    Code::CertificateStepUnverified,
                    &cert.principal,
                    object,
                    format!("checker error: {e}"),
                ));
            }
        }
    }
    ck.check_goal(&mut diags);
    diags
}

/// A step's verification outcome: the base tables it certifies, or the
/// defect found. The outer `Result` carries prover/meter errors.
type StepOutcome = Result<std::result::Result<BTreeSet<Ident>, (Code, String)>>;

/// Shorthand for a `Q004` step failure.
fn fail(msg: impl Into<String>) -> std::result::Result<BTreeSet<Ident>, (Code, String)> {
    Err((Code::CertificateStepUnverified, msg.into()))
}

struct Checker<'a> {
    cert: &'a Certificate,
    policy: &'a CertPolicy<'a>,
    meter: BudgetMeter,
    granted_views: BTreeSet<Ident>,
    visible_constraints: BTreeSet<Ident>,
    params: ParamScope,
    verified: Vec<bool>,
    step_tables: Vec<BTreeSet<Ident>>,
}

impl<'a> Checker<'a> {
    fn check_step(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        // Every recorded block must be internally consistent before any
        // structural reasoning touches it.
        if let Some(b) = &step.block {
            if !well_formed(b) {
                return Ok(fail("recorded block is malformed (empty scans or out-of-range columns)"));
            }
        }
        // Obligations are re-proved for every rule that recorded them.
        for (i, ob) in step.obligations.iter().enumerate() {
            let in_range = |es: &[ScalarExpr]| {
                es.iter()
                    .all(|e| e.referenced_cols().into_iter().all(|c| c < ob.arity))
            };
            if !in_range(&ob.premise) || !in_range(&ob.conclusion) {
                return Ok(fail(format!("obligation {i} references columns beyond its arity")));
            }
            if !implies_metered(&ob.premise, &ob.conclusion, ob.arity, &self.meter)? {
                return Ok(fail(format!("implication obligation {i} does not re-prove")));
            }
        }
        match step.rule {
            RuleId::U1 => self.check_u1(idx),
            RuleId::U2Dag => self.check_u2_dag(idx),
            RuleId::U2Match => self.check_u2_match(idx),
            RuleId::U2Restrict => self.check_u2_restrict(idx),
            RuleId::U2Compose => self.check_u2_compose(idx),
            RuleId::U3a | RuleId::U3c => self.check_u3(idx),
            RuleId::C3a | RuleId::C3b => self.check_c3(idx),
            RuleId::DependentJoin => self.check_dependent_join(idx),
        }
    }

    /// A premise must be an earlier, already-verified step.
    fn premise(
        &self,
        idx: usize,
        pi: usize,
    ) -> std::result::Result<&'a Step, (Code, String)> {
        if pi >= idx {
            return Err((
                Code::CertificateStepUnverified,
                format!("premise {pi} is not an earlier step"),
            ));
        }
        if !self.verified[pi] {
            return Err((
                Code::CertificateStepUnverified,
                format!("premise {pi} failed verification"),
            ));
        }
        Ok(&self.cert.steps[pi])
    }

    /// A premise that must carry an SPJ block.
    fn premise_block(
        &self,
        idx: usize,
        pi: usize,
    ) -> std::result::Result<&'a SpjBlock, (Code, String)> {
        match &self.premise(idx, pi)?.block {
            Some(b) => Ok(b),
            None => Err((
                Code::CertificateStepUnverified,
                format!("premise {pi} carries no block"),
            )),
        }
    }

    /// Re-instantiates a granted view from its catalog definition with
    /// the certificate's parameters and the step's access-pattern pins.
    /// Returns the scanned base tables and the SPJ block (if the body
    /// decomposes).
    fn instantiate_view(
        &self,
        name: &Ident,
        pins: &[(String, Value)],
    ) -> std::result::Result<(BTreeSet<Ident>, Option<SpjBlock>), (Code, String)> {
        if !self.granted_views.contains(name) {
            return Err((
                Code::StaleGrantEpoch,
                format!(
                    "view {name} is not granted to {} at policy epoch {}",
                    self.cert.principal, self.cert.policy_epoch
                ),
            ));
        }
        let Some(def) = self.policy.catalog.view(name) else {
            return Err((
                Code::CertificateStepUnverified,
                format!("view {name} does not exist in the catalog"),
            ));
        };
        if !def.authorization {
            return Err((
                Code::CertificateStepUnverified,
                format!("view {name} is not an AUTHORIZATION view"),
            ));
        }
        let bound = match bind_query(self.policy.catalog, &def.query, &self.params) {
            Ok(b) => b,
            Err(e) => {
                return Err((
                    Code::CertificateStepUnverified,
                    format!("view {name} does not bind: {e}"),
                ))
            }
        };
        let plan = fgac_algebra::normalize(&bound.plan);
        let tables: BTreeSet<Ident> = plan.scanned_tables().into_iter().collect();
        let block = SpjBlock::decompose(&plan).map(|b| apply_pins(&b, pins));
        Ok((tables, block))
    }

    fn check_u1(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        let Some(view) = &step.view else {
            return Ok(fail("U1 step names no view"));
        };
        let (tables, reblock) = match self.instantiate_view(view, &step.pins) {
            Ok(v) => v,
            Err(e) => return Ok(Err(e)),
        };
        match (&step.block, reblock) {
            // A marker root (non-SPJ view body, or an access-pattern
            // view used by a dependent join): coverage only.
            (None, _) => Ok(Ok(tables)),
            (Some(recorded), Some(rederived)) => {
                if !blocks_equal(recorded, &rederived) {
                    return Ok(fail(format!(
                        "recorded body of view {view} does not match its re-instantiated definition"
                    )));
                }
                Ok(Ok(tables))
            }
            (Some(_), None) => Ok(fail(format!(
                "view {view} is not SPJ-decomposable but the step records a block"
            ))),
        }
    }

    fn check_u2_dag(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        if step.premises.is_empty() {
            return Ok(fail("U2-dag step has no premises"));
        }
        let mut union = BTreeSet::new();
        for &pi in &step.premises {
            if let Err(e) = self.premise(idx, pi) {
                return Ok(Err(e));
            }
            union.extend(self.step_tables[pi].iter().cloned());
        }
        match &step.block {
            Some(b) => {
                let tables: BTreeSet<Ident> =
                    b.scans.iter().map(|(t, _)| t.clone()).collect();
                if !tables.is_subset(&union) {
                    return Ok(fail(
                        "goal expression scans a relation outside its premises",
                    ));
                }
                Ok(Ok(tables))
            }
            None => Ok(Ok(union)),
        }
    }

    fn check_u2_match(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        let [pi] = step.premises[..] else {
            return Ok(fail("U2-match needs exactly one premise"));
        };
        let v = match self.premise_block(idx, pi) {
            Ok(b) => b,
            Err(e) => return Ok(Err(e)),
        };
        let Some(q) = &step.block else {
            return Ok(fail("U2-match step records no block"));
        };
        let sub = &step.substitution;
        if sub.len() != q.flat_arity() {
            return Ok(fail("substitution length does not match the block arity"));
        }
        // Instance-wise: each Q scan maps contiguously onto a distinct V
        // scan of the same table with an identical schema.
        let mut v_used = vec![false; v.scans.len()];
        for (qi, (qt, qschema)) in q.scans.iter().enumerate() {
            let (qs, qe) = q.scan_range(qi);
            let Some(&base) = sub.get(qs) else {
                return Ok(fail("substitution is missing entries"));
            };
            for (off, col) in (qs..qe).enumerate() {
                if sub.get(col) != Some(&(base + off)) {
                    return Ok(fail(format!(
                        "substitution is not instance-contiguous at column {col}"
                    )));
                }
            }
            let Some(vi) = (0..v.scans.len()).find(|&vi| v.scan_range(vi).0 == base) else {
                return Ok(fail(format!(
                    "substitution base {base} is not the start of a premise scan instance"
                )));
            };
            let (vt, vschema) = &v.scans[vi];
            if vt != qt || vschema != qschema {
                return Ok(fail(format!(
                    "ill-typed substitution: instance {qi} ({qt}) maps onto {vt} with a different schema"
                )));
            }
            if std::mem::replace(&mut v_used[vi], true) {
                return Ok(fail(format!(
                    "substitution maps two instances onto premise instance {vi}"
                )));
            }
        }
        // Subsumption: Q's predicate, re-expressed in V's frame, must
        // imply V's predicate.
        let qc_in_v: Vec<ScalarExpr> = q
            .conjuncts
            .iter()
            .map(|c| c.map_cols(&|i| sub.get(i).copied().unwrap_or(i)))
            .collect();
        if !implies_metered(&qc_in_v, &v.conjuncts, v.flat_arity(), &self.meter)? {
            return Ok(fail("subsumption implication does not re-prove"));
        }
        // Availability: every column Q uses must survive V's projection.
        let mut needed = BTreeSet::new();
        for e in q.conjuncts.iter().chain(q.projection.iter()) {
            needed.extend(e.referenced_cols());
        }
        for c in needed {
            let mapped = sub.get(c).copied().unwrap_or(c);
            if !v.projection.contains(&ScalarExpr::Col(mapped)) {
                return Ok(fail(format!(
                    "column {c} is used but not available through the premise's projection"
                )));
            }
        }
        // Multiplicity: computing a duplicate-preserving Q from a
        // duplicate-eliminating V needs Q provably duplicate-free.
        if !q.distinct && v.distinct && !duplicate_free(self.policy.catalog, q) {
            return Ok(fail(
                "multiplicity not justified: premise is DISTINCT and block is not provably duplicate-free",
            ));
        }
        Ok(Ok(q.scans.iter().map(|(t, _)| t.clone()).collect()))
    }

    fn check_u2_restrict(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        let [pi] = step.premises[..] else {
            return Ok(fail("U2-restrict needs exactly one premise"));
        };
        let v = match self.premise_block(idx, pi) {
            Ok(b) => b,
            Err(e) => return Ok(Err(e)),
        };
        let Some(b) = &step.block else {
            return Ok(fail("U2-restrict step records no block"));
        };
        if b.scans != v.scans || b.projection != v.projection || b.distinct != v.distinct {
            return Ok(fail(
                "restriction must keep the premise's scans, projection, and distinct flag",
            ));
        }
        // Every added conjunct must be computable over the premise's
        // output (σ on top of V is then a legal U2 operation), and the
        // restricted rows must be a subset of the premise's.
        for c in &b.conjuncts {
            if v.conjuncts.contains(c) {
                continue;
            }
            for col in c.referenced_cols() {
                if !v.projection.contains(&ScalarExpr::Col(col)) {
                    return Ok(fail(format!(
                        "restriction conjunct references column {col} which the premise does not project"
                    )));
                }
            }
        }
        if !implies_metered(&b.conjuncts, &v.conjuncts, v.flat_arity(), &self.meter)? {
            return Ok(fail("restriction implication does not re-prove"));
        }
        Ok(Ok(b.scans.iter().map(|(t, _)| t.clone()).collect()))
    }

    fn check_u2_compose(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        let [pa, pb] = step.premises[..] else {
            return Ok(fail("U2-compose needs exactly two premises"));
        };
        let (a, b) = match (self.premise_block(idx, pa), self.premise_block(idx, pb)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
        };
        if a.distinct || b.distinct {
            return Ok(fail("composition premises must be duplicate-preserving"));
        }
        let Some(c) = &step.block else {
            return Ok(fail("U2-compose step records no block"));
        };
        let shift = a.flat_arity();
        let mut scans = a.scans.clone();
        scans.extend(b.scans.iter().cloned());
        let mut projection = a.projection.clone();
        projection.extend(b.projection.iter().map(|e| e.map_cols(&|i| i + shift)));
        if c.scans != scans || c.projection != projection || c.distinct {
            return Ok(fail(
                "composition must concatenate the premises' frames exactly",
            ));
        }
        let mut want = a.conjuncts.clone();
        want.extend(b.conjuncts.iter().map(|e| e.map_cols(&|i| i + shift)));
        let arity = c.flat_arity();
        if !implies_metered(&c.conjuncts, &want, arity, &self.meter)?
            || !implies_metered(&want, &c.conjuncts, arity, &self.meter)?
        {
            return Ok(fail(
                "composed predicate is not equivalent to the premises' conjunction",
            ));
        }
        Ok(Ok(c.scans.iter().map(|(t, _)| t.clone()).collect()))
    }

    /// The named inclusion dependency, if it exists and is visible.
    fn visible_inclusion(
        &self,
        name: &Ident,
    ) -> std::result::Result<InclusionDependency, (Code, String)> {
        let Some(dep) = self
            .policy
            .catalog
            .all_inclusions()
            .into_iter()
            .find(|d| &d.name == name)
        else {
            return Err((
                Code::CertificateStepUnverified,
                format!("inclusion dependency {name} does not exist"),
            ));
        };
        if !self.visible_constraints.contains(name) {
            return Err((
                Code::StaleGrantEpoch,
                format!(
                    "inclusion dependency {name} is not visible to {} at policy epoch {}",
                    self.cert.principal, self.cert.policy_epoch
                ),
            ));
        }
        Ok(dep)
    }

    fn check_u3(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        let Some(name) = &step.constraint else {
            return Ok(fail("U3 step names no inclusion dependency"));
        };
        let dep = match self.visible_inclusion(name) {
            Ok(d) => d,
            Err(e) => return Ok(Err(e)),
        };
        let (vb_pi, witness_pi) = match (step.rule, &step.premises[..]) {
            (RuleId::U3a, &[p]) => (p, None),
            (RuleId::U3c, &[p, w]) => (p, Some(w)),
            _ => return Ok(fail("U3 step has the wrong premise count")),
        };
        let vb = match self.premise_block(idx, vb_pi) {
            Ok(b) => b,
            Err(e) => return Ok(Err(e)),
        };
        let Some(core) = &step.block else {
            return Ok(fail("U3 step records no core block"));
        };
        match step.rule {
            RuleId::U3a if !core.distinct => {
                return Ok(fail("U3a core must be DISTINCT"));
            }
            RuleId::U3c if core.distinct => {
                return Ok(fail("U3c core must be duplicate-preserving"));
            }
            _ => {}
        }
        if let Some(wi) = witness_pi {
            let w = match self.premise_block(idx, wi) {
                Ok(b) => b,
                Err(e) => return Ok(Err(e)),
            };
            let single_rem = w.scans.len() == 1
                && w.scans.first().map(|(t, _)| t == &dep.dst_table).unwrap_or(false);
            if !single_rem {
                return Ok(fail(format!(
                    "U3c multiplicity witness must scan exactly the remainder table {}",
                    dep.dst_table
                )));
            }
        }
        // The core's scan multiset is the premise's minus one instance
        // of the dependency's destination (remainder) table.
        let mut want: Vec<&Ident> = vb.scans.iter().map(|(t, _)| t).collect();
        match want.iter().position(|t| **t == dep.dst_table) {
            Some(pos) => {
                want.remove(pos);
            }
            None => {
                return Ok(fail(format!(
                    "premise scans no instance of the remainder table {}",
                    dep.dst_table
                )))
            }
        }
        let mut got: Vec<&Ident> = core.scans.iter().map(|(t, _)| t).collect();
        want.sort();
        got.sort();
        if want != got {
            return Ok(fail(
                "core scan multiset is not the premise's minus the remainder instance",
            ));
        }
        if step.obligations.is_empty() && (dep.src_filter.is_some() || dep.dst_filter.is_some()) {
            return Ok(fail(
                "conditional inclusion dependency used without recorded filter obligations",
            ));
        }
        Ok(Ok(core.scans.iter().map(|(t, _)| t.clone()).collect()))
    }

    fn check_c3(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        let (v_pi, probe_pis) = match (step.rule, &step.premises[..]) {
            (RuleId::C3a, &[v, r]) => (v, vec![r]),
            (RuleId::C3b, &[v, r, c]) => (v, vec![r, c]),
            _ => return Ok(fail("C3 step has the wrong premise count")),
        };
        if let Err(e) = self.premise(idx, v_pi) {
            return Ok(Err(e));
        }
        // The P005 leak condition, per query: the remainder probe may
        // only read relations whose validity is itself certified. An
        // unverified (or missing) probe premise is exactly that leak.
        for pi in probe_pis {
            if pi >= idx || !self.verified[pi] {
                return Ok(Err((
                    Code::UnauthorizedProbe,
                    format!(
                        "conditional acceptance rests on remainder probe premise {pi}, which is not certified valid"
                    ),
                )));
            }
        }
        match step.probe_rows {
            Some(0) | None => {
                return Ok(fail(
                    "C3 requires a non-empty remainder probe result to be recorded",
                ))
            }
            Some(_) => {}
        }
        let Some(goal) = &step.block else {
            return Ok(fail("C3 step records no goal block"));
        };
        if step.obligations.is_empty() {
            return Ok(fail("C3 step records no equivalence obligations"));
        }
        Ok(Ok(goal.scans.iter().map(|(t, _)| t.clone()).collect()))
    }

    /// Re-derives an access-pattern capability from a granted view's
    /// catalog definition: `[π](σ_{col = $$k [∧ local]}(scan t))` with
    /// the key column projected.
    fn derive_capability(&self, name: &Ident) -> Option<ApCap> {
        let def = self.policy.catalog.view(name)?;
        if !def.authorization || !self.granted_views.contains(name) {
            return None;
        }
        let bound = bind_query(self.policy.catalog, &def.query, &self.params).ok()?;
        let block = SpjBlock::decompose(&fgac_algebra::normalize(&bound.plan))?;
        if block.scans.len() != 1 || block.distinct {
            return None;
        }
        let mut key_col = None;
        for c in &block.conjuncts {
            match c {
                ScalarExpr::Cmp {
                    op: CmpOp::Eq,
                    left,
                    right,
                } if matches!(&**right, ScalarExpr::AccessParam(_)) => {
                    let ScalarExpr::Col(i) = &**left else {
                        return None;
                    };
                    if key_col.replace(*i).is_some() {
                        return None;
                    }
                }
                _ if c.has_access_params() => return None,
                _ => {}
            }
        }
        let key_col = key_col?;
        let available: Vec<usize> = block
            .projection
            .iter()
            .filter_map(|e| match e {
                ScalarExpr::Col(i) => Some(*i),
                _ => None,
            })
            .collect();
        if !available.contains(&key_col) {
            return None;
        }
        let (table, _) = block.scans.first()?;
        Some(ApCap {
            table: table.clone(),
            key_col,
            available,
        })
    }

    fn check_dependent_join(&mut self, idx: usize) -> StepOutcome {
        let step = &self.cert.steps[idx];
        let Some(q) = &step.block else {
            return Ok(fail("dependent-join step records no block"));
        };
        let n = q.scans.len();
        let mut reachable = vec![false; n];
        for &inst in &step.substitution {
            if inst >= n {
                return Ok(fail(format!("anchor instance {inst} is out of range")));
            }
            reachable[inst] = true;
        }
        if !reachable.iter().any(|&r| r) {
            return Ok(fail("dependent join has no directly-valid anchor"));
        }
        // Premises: anchors carry blocks (their validity chains were
        // verified as earlier steps); access-pattern views are block-less
        // U1 markers whose capability we re-derive from the catalog.
        let mut caps = Vec::new();
        let mut anchor_blocks = Vec::new();
        for &pi in &step.premises {
            let p = match self.premise(idx, pi) {
                Ok(p) => p,
                Err(e) => return Ok(Err(e)),
            };
            match (&p.block, &p.view) {
                (Some(b), _) => anchor_blocks.push(b),
                (None, Some(view)) => match self.derive_capability(view) {
                    Some(c) => caps.push(c),
                    None => {
                        return Ok(fail(format!(
                            "view {view} yields no access-pattern capability"
                        )))
                    }
                },
                (None, None) => {
                    return Ok(fail(format!("premise {pi} is neither anchor nor capability")))
                }
            }
        }
        // Each anchored instance must be justified by an anchor premise
        // restricted to that instance's table.
        for &inst in &step.substitution {
            let Some((table, _)) = q.scans.get(inst) else {
                return Ok(fail(format!("anchor instance {inst} is out of range")));
            };
            let justified = anchor_blocks.iter().any(|b| {
                b.scans.len() == 1
                    && b.scans.first().map(|(t, _)| t == table).unwrap_or(false)
            });
            if !justified {
                return Ok(fail(format!(
                    "anchor instance {inst} ({table}) has no verified single-table premise"
                )));
            }
        }
        // Equi-join edges between distinct instances.
        let mut edges = Vec::new();
        for c in &q.conjuncts {
            if let ScalarExpr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } = c
            {
                if let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (&**left, &**right) {
                    let (oa, ob) = (owner_of(q, *a), owner_of(q, *b));
                    if let (Some(oa), Some(ob)) = (oa, ob) {
                        if oa != ob {
                            edges.push((oa, *a, ob, *b));
                        }
                    }
                }
            }
        }
        // Reachability fixpoint, re-run from scratch.
        let mut changed = true;
        while changed {
            changed = false;
            for (inst, (table, _)) in q.scans.iter().enumerate() {
                if reachable[inst] {
                    continue;
                }
                let (start, _) = q.scan_range(inst);
                for cap in &caps {
                    if &cap.table != table {
                        continue;
                    }
                    let key_flat = start + cap.key_col;
                    let used_ok = used_columns(q, inst)
                        .iter()
                        .all(|&c| cap.available.contains(&(c - start)));
                    if !used_ok {
                        continue;
                    }
                    let fed = edges.iter().any(|&(oa, a, ob, b)| {
                        (a == key_flat && oa == inst && reachable[ob])
                            || (b == key_flat && ob == inst && reachable[oa])
                    });
                    if fed {
                        reachable[inst] = true;
                        changed = true;
                        break;
                    }
                }
            }
        }
        if let Some(inst) = reachable.iter().position(|&r| !r) {
            return Ok(fail(format!(
                "scan instance {inst} is not reachable through any access-pattern capability"
            )));
        }
        Ok(Ok(q.scans.iter().map(|(t, _)| t.clone()).collect()))
    }

    /// Goal-level checks after all steps are processed.
    fn check_goal(&self, diags: &mut Vec<Diagnostic>) {
        let principal = &self.cert.principal;
        let Some(goal_idx) = self.cert.steps.len().checked_sub(1) else {
            diags.push(Diagnostic::new(
                Code::CertificateStepUnverified,
                principal,
                "certificate",
                "certificate has no derivation steps",
            ));
            return;
        };
        if !self.verified[goal_idx] {
            // Its own diagnostic is already recorded.
            return;
        }
        let goal = &self.cert.steps[goal_idx];
        if let (Some(gb), Some(q)) = (&goal.block, &self.cert.query) {
            if !blocks_equal(gb, q) {
                diags.push(Diagnostic::new(
                    Code::CertificateStepUnverified,
                    principal,
                    "goal",
                    "goal step does not derive the certified query",
                ));
            }
        } else if goal.block.is_none() && self.cert.query.is_some() && goal.rule != RuleId::U2Dag
        {
            diags.push(Diagnostic::new(
                Code::CertificateStepUnverified,
                principal,
                "goal",
                "goal step records no block for an SPJ query",
            ));
        }
        let goal_conditional = goal.rule.is_conditional();
        let cert_conditional = self.cert.verdict == CertVerdict::Conditional;
        if goal_conditional != cert_conditional {
            diags.push(Diagnostic::new(
                Code::CertificateStepUnverified,
                principal,
                "goal",
                format!(
                    "verdict {} is inconsistent with goal rule {}",
                    self.cert.verdict.as_str(),
                    goal.rule
                ),
            ));
        }
        // Q001: every query relation must be covered by some verified
        // step — otherwise no inference rule could ever have fired.
        let mut covered = BTreeSet::new();
        for (i, ok) in self.verified.iter().enumerate() {
            if *ok {
                covered.extend(self.step_tables[i].iter().cloned());
            }
        }
        for t in &self.cert.query_tables {
            if !covered.contains(t) {
                diags.push(Diagnostic::new(
                    Code::UncoveredRelation,
                    principal,
                    t.as_str(),
                    format!("query relation {t} is not covered by any verified derivation step"),
                ));
            }
        }
    }
}

/// An access-pattern capability the checker re-derived.
struct ApCap {
    table: Ident,
    key_col: usize,
    available: Vec<usize>,
}

/// The user's effective grants: direct plus role-carried.
fn effective(
    map: &BTreeMap<String, BTreeSet<Ident>>,
    roles: &BTreeMap<String, BTreeSet<String>>,
    user: &str,
) -> BTreeSet<Ident> {
    let mut out = map.get(user).cloned().unwrap_or_default();
    if let Some(rs) = roles.get(user) {
        for r in rs {
            if let Some(s) = map.get(r) {
                out.extend(s.iter().cloned());
            }
        }
    }
    out
}

/// Internal consistency of an untrusted block: scans non-empty, every
/// referenced column inside the flat row. Everything the checker does
/// with a block is guarded by this (so `to_plan`/`scan_range` cannot
/// panic on adversarial input).
fn well_formed(b: &SpjBlock) -> bool {
    if b.scans.is_empty() {
        return false;
    }
    let flat = b.flat_arity();
    b.conjuncts
        .iter()
        .chain(b.projection.iter())
        .all(|e| e.referenced_cols().into_iter().all(|c| c < flat))
}

/// Canonical form for comparison: rebuild the plan (which re-normalizes
/// conjunct order and shape) and decompose again.
fn canon(b: &SpjBlock) -> Option<SpjBlock> {
    if !well_formed(b) {
        return None;
    }
    SpjBlock::decompose(&b.to_plan())
}

/// Two blocks are equal up to normalization. Conjuncts compare as a
/// multiset: the emitter and the checker substitute access-pattern pins
/// at different pipeline stages, so predicate order can differ without
/// changing meaning.
fn blocks_equal(a: &SpjBlock, b: &SpjBlock) -> bool {
    let (Some(mut ca), Some(mut cb)) = (canon(a), canon(b)) else {
        return false;
    };
    ca.conjuncts.sort_by_key(|c| format!("{c:?}"));
    cb.conjuncts.sort_by_key(|c| format!("{c:?}"));
    ca == cb
}

/// Substitutes pinned access-pattern parameters with their constants.
fn apply_pins(b: &SpjBlock, pins: &[(String, Value)]) -> SpjBlock {
    if pins.is_empty() {
        return b.clone();
    }
    let subst = |e: &ScalarExpr| -> Option<ScalarExpr> {
        if let ScalarExpr::AccessParam(p) = e {
            for (name, v) in pins {
                if name == p {
                    return Some(ScalarExpr::Lit(v.clone()));
                }
            }
        }
        None
    };
    SpjBlock {
        scans: b.scans.clone(),
        conjuncts: b.conjuncts.iter().map(|c| c.transform(&subst)).collect(),
        projection: b.projection.iter().map(|c| c.transform(&subst)).collect(),
        distinct: b.distinct,
    }
}

/// Which scan instance owns flat column `col` (total version of
/// `SpjBlock::owner`, which panics out of range).
fn owner_of(b: &SpjBlock, col: usize) -> Option<usize> {
    let mut acc = 0;
    for (i, (_, s)) in b.scans.iter().enumerate() {
        acc += s.len();
        if col < acc {
            return Some(i);
        }
    }
    None
}

/// The flat column's schema entry, if in range.
#[allow(dead_code)]
fn flat_column(b: &SpjBlock, col: usize) -> Option<&Column> {
    let mut acc = 0;
    for (_, s) in &b.scans {
        if col < acc + s.len() {
            return s.columns().get(col - acc);
        }
        acc += s.len();
    }
    None
}

/// Flat columns of instance `idx` the block's projection or predicates
/// actually use.
fn used_columns(b: &SpjBlock, idx: usize) -> Vec<usize> {
    let (start, end) = b.scan_range(idx);
    let mut used = BTreeSet::new();
    for e in b.projection.iter().chain(b.conjuncts.iter()) {
        for c in e.referenced_cols() {
            if c >= start && c < end {
                used.insert(c);
            }
        }
    }
    used.into_iter().collect()
}

/// Independent re-implementation of the duplicate-freedom argument
/// (Example 5.5): the projection retains — directly or pinned by an
/// equality — a primary key of every scan instance.
fn duplicate_free(catalog: &Catalog, b: &SpjBlock) -> bool {
    if b.distinct {
        return true;
    }
    b.scans.iter().enumerate().all(|(idx, (table, schema))| {
        let Some(meta) = catalog.table(table) else {
            return false;
        };
        let Some(pk) = &meta.primary_key else {
            return false;
        };
        let (start, _) = b.scan_range(idx);
        pk.iter().all(|col| {
            let Some(i) = schema.index_of(col) else {
                return false;
            };
            let flat = start + i;
            b.projection.contains(&ScalarExpr::Col(flat)) || pinned(&b.conjuncts, flat)
        })
    })
}

/// Is `col` forced to a single value by a syntactic equality?
fn pinned(conjuncts: &[ScalarExpr], col: usize) -> bool {
    conjuncts.iter().any(|c| {
        matches!(c, ScalarExpr::Cmp { op: CmpOp::Eq, left, right }
            if matches!(&**left, ScalarExpr::Col(i) if *i == col)
                && matches!(&**right, ScalarExpr::Lit(_) | ScalarExpr::AccessParam(_)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_storage::ViewDef;
    use fgac_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        c.add_view(ViewDef {
            name: Ident::new("mygrades"),
            authorization: true,
            query: fgac_sql::parse_query("select * from grades where student_id = $user_id")
                .unwrap(),
        })
        .unwrap();
        c
    }

    fn grants_for(user: &str, views: &[&str]) -> BTreeMap<String, BTreeSet<Ident>> {
        let mut m = BTreeMap::new();
        m.insert(user.to_string(), views.iter().map(Ident::new).collect());
        m
    }

    fn my_grades_block(cat: &Catalog) -> SpjBlock {
        let q = fgac_sql::parse_query("select * from grades where student_id = '11'").unwrap();
        let b = bind_query(cat, &q, &ParamScope::new()).unwrap();
        SpjBlock::decompose(&fgac_algebra::normalize(&b.plan)).unwrap()
    }

    fn simple_cert(cat: &Catalog) -> Certificate {
        let block = my_grades_block(cat);
        let mut u1 = Step::new(RuleId::U1);
        u1.view = Some(Ident::new("mygrades"));
        u1.block = Some(block.clone());
        let mut goal = Step::new(RuleId::U2Dag);
        goal.premises = vec![0];
        goal.block = Some(block.clone());
        Certificate {
            principal: "11".into(),
            policy_epoch: 7,
            verdict: CertVerdict::Unconditional,
            params: vec![("user_id".into(), Value::Str("11".into()))],
            query_tables: vec![Ident::new("grades")],
            query: Some(block),
            steps: vec![u1, goal],
        }
    }

    fn policy<'a>(
        cat: &'a Catalog,
        views: &'a BTreeMap<String, BTreeSet<Ident>>,
        constraints: &'a BTreeMap<String, BTreeSet<Ident>>,
        roles: &'a BTreeMap<String, BTreeSet<String>>,
        epoch: u64,
    ) -> CertPolicy<'a> {
        CertPolicy {
            catalog: cat,
            view_grants: views,
            constraint_grants: constraints,
            role_memberships: roles,
            policy_epoch: epoch,
        }
    }

    #[test]
    fn honest_certificate_verifies() {
        let cat = catalog();
        let views = grants_for("11", &["mygrades"]);
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let cert = simple_cert(&cat);
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn forged_epoch_rejected_with_q003() {
        let cat = catalog();
        let views = grants_for("11", &["mygrades"]);
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 8);
        let cert = simple_cert(&cat); // minted at epoch 7
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::StaleGrantEpoch);
    }

    #[test]
    fn ungranted_view_rejected_with_q003() {
        let cat = catalog();
        let views = grants_for("12", &["mygrades"]); // granted to someone else
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let cert = simple_cert(&cat);
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert!(diags.iter().any(|d| d.code == Code::StaleGrantEpoch), "{diags:?}");
    }

    #[test]
    fn tampered_view_body_rejected_with_q004() {
        let cat = catalog();
        let views = grants_for("11", &["mygrades"]);
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let mut cert = simple_cert(&cat);
        // Claim the view grants someone else's rows.
        let q = fgac_sql::parse_query("select * from grades where student_id = '99'").unwrap();
        let b = bind_query(&cat, &q, &ParamScope::new()).unwrap();
        cert.steps[0].block =
            Some(SpjBlock::decompose(&fgac_algebra::normalize(&b.plan)).unwrap());
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert!(
            diags.iter().any(|d| d.code == Code::CertificateStepUnverified),
            "{diags:?}"
        );
    }

    #[test]
    fn uncovered_relation_flagged_with_q001() {
        let cat = catalog();
        let views = grants_for("11", &["mygrades"]);
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let mut cert = simple_cert(&cat);
        cert.query_tables.push(Ident::new("registered"));
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert!(diags.iter().any(|d| d.code == Code::UncoveredRelation), "{diags:?}");
    }

    #[test]
    fn role_carried_grant_is_effective() {
        let cat = catalog();
        let views = grants_for("student", &["mygrades"]);
        let cons = BTreeMap::new();
        let mut roles = BTreeMap::new();
        roles.insert("11".to_string(), ["student".to_string()].into_iter().collect());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let cert = simple_cert(&cat);
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn empty_certificate_rejected() {
        let cat = catalog();
        let views = grants_for("11", &["mygrades"]);
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let mut cert = simple_cert(&cat);
        cert.steps.clear();
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert!(!diags.is_empty());
    }

    #[test]
    fn verdict_must_match_goal_rule() {
        let cat = catalog();
        let views = grants_for("11", &["mygrades"]);
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let mut cert = simple_cert(&cat);
        cert.verdict = CertVerdict::Conditional; // but goal is U2-dag
        let diags = check_certificate(&cert, &pol, &CheckerOptions::default());
        assert!(
            diags.iter().any(|d| d.code == Code::CertificateStepUnverified),
            "{diags:?}"
        );
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in RuleId::all() {
            assert_eq!(RuleId::from_str_id(r.as_str()), Some(r));
        }
        assert_eq!(RuleId::from_str_id("U9"), None);
    }

    #[test]
    fn exhausted_budget_fails_closed() {
        let cat = catalog();
        let views = grants_for("11", &["mygrades"]);
        let (cons, roles) = (BTreeMap::new(), BTreeMap::new());
        let pol = policy(&cat, &views, &cons, &roles, 7);
        let mut cert = simple_cert(&cat);
        // Give the goal an obligation so a proof is attempted.
        cert.steps[1].obligations.push(Obligation {
            premise: vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit("11"))],
            conclusion: vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit("11"))],
            arity: 3,
        });
        let opts = CheckerOptions {
            budget: Budget::with_max_steps(1),
        };
        let diags = check_certificate(&cert, &pol, &opts);
        assert!(
            diags.iter().any(|d| d.code == Code::CertificateStepUnverified
                && d.message.contains("exhausted")),
            "{diags:?}"
        );
    }
}
