//! The policy-set analysis passes.
//!
//! Inputs are deliberately plain data — the catalog plus the raw grant
//! tables — so the analyzer stays below `fgac-core` in the crate DAG
//! (core *calls* the analyzer; the analyzer must not need core).

use crate::diag::{Code, Diagnostic};
use fgac_algebra::{implication, normalize, ParamScope, ScalarExpr, SpjBlock};
use fgac_sql::{Expr, Query};
use fgac_storage::Catalog;
use fgac_types::{Budget, BudgetMeter, Ident};
use std::collections::{BTreeMap, BTreeSet};

/// The installed policy set, as plain references into engine state.
pub struct PolicySet<'a> {
    pub catalog: &'a Catalog,
    /// principal -> granted authorization view names.
    pub view_grants: &'a BTreeMap<String, BTreeSet<Ident>>,
    /// principal -> visible integrity constraint names.
    pub constraint_grants: &'a BTreeMap<String, BTreeSet<Ident>>,
    /// user -> roles.
    pub role_memberships: &'a BTreeMap<String, BTreeSet<String>>,
    /// principal -> views revoked from that principal (tombstones kept
    /// for the `P003` shadowed-revocation lint).
    pub revocations: &'a BTreeMap<String, BTreeSet<Ident>>,
}

/// Analyzer knobs. The budget bounds every prover call made by one
/// `analyze_policy_set` run; exhaustion degrades findings to
/// [`Severity::Unknown`] instead of failing the analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    pub budget: Budget,
}

/// What one view definition looks like to the analyzer.
pub(crate) struct ViewInfo {
    pub(crate) exists: bool,
    pub(crate) authorization: bool,
    /// Bind failure (unknown table/column) — the `P004` evidence.
    pub(crate) bind_error: Option<String>,
    /// SPJ decomposition of the bound, normalized body, when it has
    /// that shape (aggregates/unions don't; predicate lints skip them).
    pub(crate) block: Option<SpjBlock>,
    /// The source AST, for the syntactic parameter lint.
    pub(crate) query: Option<Query>,
}

/// Budget-metered prover façade: after the first exhaustion every
/// subsequent proof request reports [`Severity::Unknown`] (fail-open)
/// instead of running.
pub(crate) struct Prover {
    pub(crate) meter: BudgetMeter,
    pub(crate) exhausted: bool,
}

impl Prover {
    /// `Some(answer)`, or `None` when the budget ran out (now or on an
    /// earlier call).
    pub(crate) fn implies(&mut self, p: &[ScalarExpr], q: &[ScalarExpr], arity: usize) -> Option<bool> {
        if self.exhausted {
            return None;
        }
        match implication::implies_metered(p, q, arity, &self.meter) {
            Ok(b) => Some(b),
            Err(_) => {
                self.exhausted = true;
                None
            }
        }
    }
}

struct Pass<'a> {
    set: &'a PolicySet<'a>,
    prover: Prover,
    diags: Vec<Diagnostic>,
    /// Dedup for fail-open diagnostics: one per (code, principal, view).
    unknown_reported: BTreeSet<(Code, String, String)>,
}

impl<'a> Pass<'a> {
    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Records that a prover-backed check could not complete.
    fn push_unknown(&mut self, code: Code, principal: &str, object: &str) {
        let key = (code, principal.to_string(), object.to_string());
        if self.unknown_reported.insert(key) {
            self.push(Diagnostic::unknown(
                code,
                principal,
                object,
                "analysis budget exhausted; result unknown",
            ));
        }
    }

    /// A metered implication query; on exhaustion the check degrades to
    /// an `Unknown` diagnostic attributed to `(code, principal, object)`.
    fn implies(
        &mut self,
        code: Code,
        principal: &str,
        object: &str,
        p: &[ScalarExpr],
        q: &[ScalarExpr],
        arity: usize,
    ) -> Option<bool> {
        match self.prover.implies(p, q, arity) {
            Some(b) => Some(b),
            None => {
                self.push_unknown(code, principal, object);
                None
            }
        }
    }
}

/// Rewrites every `$param` to a *symbolic* `$$`-style parameter so the
/// view body binds without a session and the prover treats equal
/// parameters as equal symbols (`$user_id` in two views unifies). The
/// `?` prefix cannot collide with source-level `$$` names, which lex as
/// identifier characters only.
pub(crate) fn symbolize_params(q: &Query) -> Query {
    fn subst(e: &mut Expr) {
        match e {
            Expr::Param(p) => *e = Expr::AccessParam(format!("?{p}")),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => subst(expr),
            Expr::Binary { left, right, .. } => {
                subst(left);
                subst(right);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    subst(a);
                }
            }
            _ => {}
        }
    }
    let mut q = q.clone();
    for item in &mut q.projection {
        if let fgac_sql::SelectItem::Expr { expr, .. } = item {
            subst(expr);
        }
    }
    for t in &mut q.from {
        for j in &mut t.joins {
            subst(&mut j.on);
        }
    }
    if let Some(w) = &mut q.selection {
        subst(w);
    }
    for g in &mut q.group_by {
        subst(g);
    }
    if let Some(h) = &mut q.having {
        subst(h);
    }
    for o in &mut q.order_by {
        subst(&mut o.expr);
    }
    q
}

/// Binds and decomposes one view definition against the catalog.
pub(crate) fn inspect_view(catalog: &Catalog, name: &Ident) -> ViewInfo {
    let Some(def) = catalog.view(name) else {
        return ViewInfo {
            exists: false,
            authorization: false,
            bind_error: None,
            block: None,
            query: None,
        };
    };
    let symbolized = symbolize_params(&def.query);
    match fgac_algebra::bind_query(catalog, &symbolized, &ParamScope::new()) {
        Ok(bound) => {
            let plan = normalize(&bound.plan);
            ViewInfo {
                exists: true,
                authorization: def.authorization,
                bind_error: None,
                block: SpjBlock::decompose(&plan),
                query: Some(def.query.clone()),
            }
        }
        Err(e) => ViewInfo {
            exists: true,
            authorization: def.authorization,
            bind_error: Some(e.to_string()),
            block: None,
            query: Some(def.query.clone()),
        },
    }
}

/// The effective view set of a principal: direct grants plus grants of
/// every role it belongs to. Maps each view to the grant entry that
/// supplies it (the principal itself, or a role name), preferring the
/// direct grant.
pub(crate) fn effective_views(set: &PolicySet, user: &str) -> BTreeMap<Ident, String> {
    effective_grants(set.view_grants, set.role_memberships, user)
}

/// The effective constraint-visibility set of a principal, with the
/// same direct-grant-preferring source attribution as
/// [`effective_views`].
pub(crate) fn effective_constraints(set: &PolicySet, user: &str) -> BTreeMap<Ident, String> {
    effective_grants(set.constraint_grants, set.role_memberships, user)
}

fn effective_grants(
    grants: &BTreeMap<String, BTreeSet<Ident>>,
    roles: &BTreeMap<String, BTreeSet<String>>,
    user: &str,
) -> BTreeMap<Ident, String> {
    let mut out: BTreeMap<Ident, String> = BTreeMap::new();
    if let Some(memberships) = roles.get(user) {
        for role in memberships {
            if let Some(vs) = grants.get(role) {
                for v in vs {
                    out.entry(v.clone()).or_insert_with(|| role.clone());
                }
            }
        }
    }
    if let Some(vs) = grants.get(user) {
        for v in vs {
            out.insert(v.clone(), user.to_string());
        }
    }
    out
}

/// All parameters of a query, with the subset that is *constrained*:
/// session (`$`) parameters must appear somewhere under a comparison in
/// a predicate position (join `ON`, `WHERE`, `HAVING`); access-pattern
/// (`$$`) parameters must be equality-compared with a column, or
/// constant instantiation (Section 6) can never pin them.
pub(crate) fn unconstrained_params(q: &Query) -> Vec<(String, bool)> {
    let mut all: BTreeSet<(String, bool)> = BTreeSet::new();
    let mut visit_all = |e: &Expr| {
        e.walk(&mut |x| match x {
            Expr::Param(p) => {
                all.insert((p.clone(), false));
            }
            Expr::AccessParam(p) => {
                all.insert((p.clone(), true));
            }
            _ => {}
        });
    };
    for item in &q.projection {
        if let fgac_sql::SelectItem::Expr { expr, .. } = item {
            visit_all(expr);
        }
    }
    let mut predicates: Vec<&Expr> = Vec::new();
    for t in &q.from {
        for j in &t.joins {
            visit_all(&j.on);
            predicates.push(&j.on);
        }
    }
    if let Some(w) = &q.selection {
        visit_all(w);
        predicates.push(w);
    }
    for g in &q.group_by {
        visit_all(g);
    }
    if let Some(h) = &q.having {
        visit_all(h);
        predicates.push(h);
    }
    for o in &q.order_by {
        visit_all(&o.expr);
    }

    let mut session_ok: BTreeSet<String> = BTreeSet::new();
    let mut access_ok: BTreeSet<String> = BTreeSet::new();
    for p in predicates {
        p.walk(&mut |x| {
            if let Expr::Binary { left, op, right } = x {
                if !op.is_comparison() {
                    return;
                }
                for side in [left.as_ref(), right.as_ref()] {
                    side.walk(&mut |y| {
                        if let Expr::Param(name) = y {
                            session_ok.insert(name.clone());
                        }
                    });
                }
                if *op == fgac_sql::BinaryOp::Eq {
                    for (a, b) in [(left.as_ref(), right.as_ref()), (right.as_ref(), left.as_ref())]
                    {
                        if let (Expr::AccessParam(name), Expr::Column { .. }) = (a, b) {
                            access_ok.insert(name.clone());
                        }
                    }
                }
            }
        });
    }

    all.into_iter()
        .filter(|(name, is_access)| {
            if *is_access {
                !access_ok.contains(name)
            } else {
                !session_ok.contains(name)
            }
        })
        .collect()
}

/// Runs every policy lint over the grant tables. `principal` restricts
/// the per-principal passes to one principal's effective set; `None`
/// analyzes everyone mentioned in the grant/role/revocation tables.
pub fn analyze_policy_set(
    set: &PolicySet,
    principal: Option<&str>,
    opts: &AnalyzeOptions,
) -> Vec<Diagnostic> {
    let mut pass = Pass {
        set,
        prover: Prover {
            meter: opts.budget.start(),
            exhausted: false,
        },
        diags: Vec::new(),
        unknown_reported: BTreeSet::new(),
    };

    let mut principals: BTreeSet<String> = BTreeSet::new();
    match principal {
        Some(p) => {
            principals.insert(p.to_string());
        }
        None => {
            principals.extend(set.view_grants.keys().cloned());
            principals.extend(set.constraint_grants.keys().cloned());
            principals.extend(set.role_memberships.keys().cloned());
            principals.extend(set.revocations.keys().cloned());
        }
    }

    // Bind every referenced view once.
    let mut infos: BTreeMap<Ident, ViewInfo> = BTreeMap::new();
    for p in &principals {
        for v in effective_views(set, p).keys() {
            infos
                .entry(v.clone())
                .or_insert_with(|| inspect_view(set.catalog, v));
        }
    }

    for p in &principals {
        analyze_principal(&mut pass, p, &infos, &principals);
    }

    let mut diags = pass.diags;
    diags.sort_by(|a, b| {
        (a.severity, a.code, &a.principal, &a.object).cmp(&(
            b.severity,
            b.code,
            &b.principal,
            &b.object,
        ))
    });
    diags
}

fn analyze_principal(
    pass: &mut Pass,
    p: &str,
    infos: &BTreeMap<Ident, ViewInfo>,
    analyzed: &BTreeSet<String>,
) {
    let effective = effective_views(pass.set, p);
    let mut unsat: BTreeSet<Ident> = BTreeSet::new();

    // P004 / P001 / P006 — per-view lints. These findings are properties
    // of the grant *entry*, not of who inherits it: when a view reaches
    // `p` through a role that is itself in the analyzed set, the role's
    // own pass reports the defect and repeating it for every member
    // would only duplicate diagnostics (and inflate CI gates).
    for (v, source) in &effective {
        let report_here = source == p || !analyzed.contains(source);
        // Attribute fail-open "unknown" findings to the grant entry too,
        // so exhaustion is reported once per entry, not once per member.
        let attributed = if report_here { p } else { source.as_str() };
        let info = &infos[v];
        if !info.exists {
            if report_here {
                pass.push(Diagnostic::new(
                    Code::UnusableView,
                    p,
                    v.as_str(),
                    "granted view does not exist in the catalog",
                ));
            }
            continue;
        }
        if !info.authorization {
            if report_here {
                pass.push(Diagnostic::new(
                    Code::UnusableView,
                    p,
                    v.as_str(),
                    "granted view is not an AUTHORIZATION view; the validator ignores it",
                ));
            }
            continue;
        }
        if let Some(err) = &info.bind_error {
            if report_here {
                pass.push(Diagnostic::new(
                    Code::UnusableView,
                    p,
                    v.as_str(),
                    format!("view body no longer binds against the catalog: {err}"),
                ));
            }
            continue;
        }

        if report_here {
            if let Some(q) = &info.query {
                for (name, is_access) in unconstrained_params(q) {
                    let msg = if is_access {
                        format!(
                            "access-pattern parameter $${name} is never equality-constrained \
                             against a column; constant instantiation (Section 6) can never pin \
                             it, so the view contributes nothing"
                        )
                    } else {
                        format!(
                            "session parameter ${name} never appears under a comparison in a \
                             predicate; the grant does not actually depend on it"
                        )
                    };
                    pass.push(Diagnostic::new(Code::UnboundParameter, p, v.as_str(), msg));
                }
            }
        }

        if let Some(block) = &info.block {
            // The satisfiability proof still runs even when the finding
            // is reported elsewhere: the pairwise lints below need
            // `unsat` to exclude dead views.
            let arity = block.flat_arity();
            if let Some(true) = pass.implies(
                Code::UnsatisfiableViewPredicate,
                attributed,
                v.as_str(),
                &block.conjuncts,
                &[ScalarExpr::lit(false)],
                arity,
            ) {
                if report_here {
                    pass.push(Diagnostic::new(
                        Code::UnsatisfiableViewPredicate,
                        p,
                        v.as_str(),
                        "view predicate is unsatisfiable: the grant can never produce a row",
                    ));
                }
                unsat.insert(v.clone());
            }
        }
    }

    // P004 — constraint-visibility grants of constraints the catalog
    // does not define (no foreign key or inclusion dependency of that
    // name). Constraint visibility feeds U3a condition 2; a dangling
    // grant silently contributes nothing to any validity check.
    for (c, source) in effective_constraints(pass.set, p) {
        if source != p && analyzed.contains(&source) {
            continue;
        }
        let exists = pass
            .set
            .catalog
            .foreign_keys()
            .iter()
            .any(|fk| fk.name == c)
            || pass
                .set
                .catalog
                .inclusion_dependencies()
                .iter()
                .any(|d| d.name == c);
        if !exists {
            pass.push(Diagnostic::new(
                Code::UnusableView,
                p,
                c.as_str(),
                "granted constraint does not exist in the catalog; the visibility \
                 grant can never satisfy U3a condition 2",
            ));
        }
    }

    // P005 — leaky conditional checks: a multi-relation view whose C3
    // remainder probe would read a relation the principal holds no
    // other view over.
    for v in effective.keys() {
        let info = &infos[v];
        let Some(block) = &info.block else { continue };
        if block.scans.len() < 2 {
            continue;
        }
        let tables: BTreeSet<&Ident> = block.scans.iter().map(|(t, _)| t).collect();
        for t in tables {
            let covered = effective.keys().any(|other| {
                if other == v {
                    return false;
                }
                let oi = &infos[other];
                if !oi.exists || !oi.authorization || oi.bind_error.is_some() {
                    return false;
                }
                match &oi.block {
                    Some(ob) => ob.scans.iter().any(|(ot, _)| ot == t),
                    // Non-SPJ but bindable: fall back to the FROM list.
                    None => oi
                        .query
                        .as_ref()
                        .is_some_and(|q| q.from.iter().any(|tr| &tr.name == t)),
                }
            });
            if !covered {
                pass.push(Diagnostic::new(
                    Code::LeakyConditionalCheck,
                    p,
                    v.as_str(),
                    format!(
                        "conditional-validity (C3) probes for this view read `{t}`, but the \
                         principal holds no other view over `{t}`: the probe's outcome would \
                         reveal data the user cannot see (Section 5.4), so the engine fails \
                         closed and the view's conditional grants are unreachable"
                    ),
                ));
            }
        }
    }

    // P002 / W001 — pairwise lints over same-shape views. A view whose
    // predicate is already proven unsatisfiable (P001) is excluded:
    // false implies everything, so flagging it as "redundant" too would
    // be double-reporting the same defect.
    let usable: Vec<&Ident> = effective
        .keys()
        .filter(|v| infos[*v].block.is_some() && !unsat.contains(*v))
        .collect();
    let mut subsumed: BTreeSet<&Ident> = BTreeSet::new();
    for &v in &usable {
        for &u in &usable {
            if u == v || subsumed.contains(v) {
                continue;
            }
            // Both views supplied by the same role that is itself being
            // analyzed: the pair finding is the role's, not the member's.
            let (sv, su) = (&effective[v], &effective[u]);
            if sv == su && sv != p && analyzed.contains(sv) {
                continue;
            }
            let (bu, bv) = (
                infos[u].block.as_ref().expect("filtered"),
                infos[v].block.as_ref().expect("filtered"),
            );
            if !same_scan_shape(bu, bv) {
                continue;
            }
            // Subsumption u ⊇ v: v's rows satisfy u's predicate, u
            // exposes at least v's columns, and u does not force a
            // duplicate elimination v lacks.
            let arity = bu.flat_arity();
            if projection_covers(bu, bv) && (!bu.distinct || bv.distinct) {
                if let Some(true) = pass.implies(
                    Code::RedundantGrant,
                    p,
                    v.as_str(),
                    &bv.conjuncts,
                    &bu.conjuncts,
                    arity,
                ) {
                    // When the two are equivalent, keep the
                    // lexicographically smaller grant and flag the other,
                    // so exactly one of the pair is reported.
                    let mutual = projection_covers(bv, bu)
                        && (!bv.distinct || bu.distinct)
                        && pass
                            .implies(
                                Code::RedundantGrant,
                                p,
                                v.as_str(),
                                &bu.conjuncts,
                                &bv.conjuncts,
                                arity,
                            )
                            .unwrap_or(false);
                    if !mutual || u < v {
                        subsumed.insert(v);
                        pass.push(Diagnostic::new(
                            Code::RedundantGrant,
                            p,
                            v.as_str(),
                            format!(
                                "every row and column this view authorizes is already \
                                 authorized by `{u}`, granted to the same principal; the \
                                 grant only bloats validity checks"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // W001 — cross-view contradiction (unordered pairs, both
    // individually satisfiable).
    for (i, &v) in usable.iter().enumerate() {
        for &u in &usable[i + 1..] {
            let (sv, su) = (&effective[v], &effective[u]);
            if sv == su && sv != p && analyzed.contains(sv) {
                continue;
            }
            let (bu, bv) = (
                infos[u].block.as_ref().expect("filtered"),
                infos[v].block.as_ref().expect("filtered"),
            );
            if !same_scan_shape(bu, bv) {
                continue;
            }
            let arity = bu.flat_arity();
            let v_sat = pass
                .implies(
                    Code::CrossViewContradiction,
                    p,
                    v.as_str(),
                    &bv.conjuncts,
                    &[ScalarExpr::lit(false)],
                    arity,
                )
                .map(|unsat| !unsat);
            let u_sat = pass
                .implies(
                    Code::CrossViewContradiction,
                    p,
                    u.as_str(),
                    &bu.conjuncts,
                    &[ScalarExpr::lit(false)],
                    arity,
                )
                .map(|unsat| !unsat);
            if v_sat != Some(true) || u_sat != Some(true) {
                continue;
            }
            let mut combined = bv.conjuncts.clone();
            combined.extend(bu.conjuncts.iter().cloned());
            if let Some(true) = pass.implies(
                Code::CrossViewContradiction,
                p,
                v.as_str(),
                &combined,
                &[ScalarExpr::lit(false)],
                arity,
            ) {
                pass.push(Diagnostic::new(
                    Code::CrossViewContradiction,
                    p,
                    v.as_str(),
                    format!(
                        "this view and `{u}` (same principal, same relations) have mutually \
                         exclusive predicates; if they are meant to overlap, one of them is \
                         mis-written"
                    ),
                ));
            }
        }
    }

    // P003 — revocations shadowed by a role grant.
    if let Some(revoked) = pass.set.revocations.get(p) {
        let effective_now = effective_views(pass.set, p);
        for rv in revoked.clone() {
            if let Some(source) = effective_now.get(&rv) {
                pass.push(Diagnostic::new(
                    Code::ShadowedByRevocation,
                    p,
                    rv.as_str(),
                    format!(
                        "the view was revoked from '{p}' but is still effective through the \
                         grant to `{source}`; the principal's access is unchanged"
                    ),
                ));
            }
        }
    }
}

/// Same ordered list of scan relations (and therefore the same flat
/// row layout, since schemas come from the shared catalog).
fn same_scan_shape(a: &SpjBlock, b: &SpjBlock) -> bool {
    a.scans.len() == b.scans.len()
        && a.scans
            .iter()
            .zip(b.scans.iter())
            .all(|((ta, _), (tb, _))| ta == tb)
}

/// Does `u`'s projection expose everything `v` projects?
fn projection_covers(u: &SpjBlock, v: &SpjBlock) -> bool {
    let arity = u.flat_arity();
    if fgac_algebra::is_identity_projection(&u.projection, arity) {
        return true;
    }
    v.projection.iter().all(|e| u.projection.contains(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_sql::parse_query;

    #[test]
    fn unconstrained_param_detection() {
        // Constrained: $user_id under a comparison in WHERE.
        let q = parse_query("select * from t where a = $user_id").unwrap();
        assert!(unconstrained_params(&q).is_empty());

        // Projection-only $tag: unconstrained.
        let q = parse_query("select a, $tag from t").unwrap();
        assert_eq!(unconstrained_params(&q), vec![("tag".to_string(), false)]);

        // $$k equality-with-column: constrained.
        let q = parse_query("select * from t where a = $$k").unwrap();
        assert!(unconstrained_params(&q).is_empty());

        // $$k under an inequality: not instantiable.
        let q = parse_query("select * from t where a > $$k").unwrap();
        assert_eq!(unconstrained_params(&q), vec![("k".to_string(), true)]);
    }

    #[test]
    fn symbolize_rewrites_session_params_only() {
        let q = parse_query("select $p from t where a = $user_id and b = $$k").unwrap();
        let s = symbolize_params(&q);
        let mut names = Vec::new();
        if let Some(w) = &s.selection {
            w.walk(&mut |e| {
                if let Expr::AccessParam(n) = e {
                    names.push(n.clone());
                }
            });
        }
        names.sort();
        assert_eq!(names, vec!["?user_id".to_string(), "k".to_string()]);
    }
}
