//! Diagnostic model: stable codes, severities, and the JSON wire form
//! consumed by CI (`fgac-analyze --json`).

use std::fmt;

/// Stable diagnostic codes. Codes are append-only: a code, once
/// published, never changes meaning — CI configurations key on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// `P001`: the view's predicate is unsatisfiable — the grant can
    /// never produce a row, so either the policy is a typo or the grant
    /// is dead weight that still costs every validity check.
    UnsatisfiableViewPredicate,
    /// `P002`: the view is subsumed by another view granted to the same
    /// principal — everything it authorizes, the wider grant already
    /// authorizes.
    RedundantGrant,
    /// `P003`: a revocation had no effect because a role grant still
    /// supplies the view — the DBA believes access was removed but the
    /// principal's effective set is unchanged.
    ShadowedByRevocation,
    /// `P004`: the grant can never participate in a validity check —
    /// the view is missing from the catalog, is not an AUTHORIZATION
    /// view, or its body no longer binds (dropped table/column).
    UnusableView,
    /// `P005`: a conditional-validity (C3) probe for this view would
    /// read columns of a relation the principal holds no view over —
    /// the Section 5.4 leakage channel. The engine fails closed on it,
    /// so the view also cannot deliver its conditional grants.
    LeakyConditionalCheck,
    /// `P006`: a `$`/`$$` parameter in the view body is never
    /// constrained by a predicate, so instantiation can never pin it.
    UnboundParameter,
    /// `W001`: two views granted to the same principal contradict each
    /// other on the same relation — often intentional (disjoint
    /// partitions), sometimes a sign one predicate is mis-written.
    CrossViewContradiction,
    /// `Q001`: the query references a relation no granted view covers —
    /// no inference rule can ever derive validity, so the validator
    /// rejects before building the DAG and the checker flags any
    /// certificate claiming otherwise.
    UncoveredRelation,
    /// `Q002`: an acceptance is conditional on a remainder probe that is
    /// not itself certified valid — running it would read relations the
    /// user is not authorized over (the per-query form of `P005`).
    UnauthorizedProbe,
    /// `Q003`: the certificate references a grant that does not exist at
    /// the current policy epoch — the view was revoked, never granted,
    /// or the certificate was minted under a stale epoch.
    StaleGrantEpoch,
    /// `Q004`: a certificate derivation step failed independent
    /// re-verification — malformed premises, an ill-typed substitution,
    /// a prover obligation that does not re-prove, or a recorded block
    /// that does not match the re-derived one.
    CertificateStepUnverified,
    /// `F001`: composing granted views (joining them back together on
    /// an exposed key) reveals a column combination over one relation
    /// that no single grant exposes — transitive disclosure widening.
    TransitiveDisclosureWidening,
    /// `F002`: a constraint-visibility grant lets values of a protected
    /// relation be inferred through an inclusion dependency whose
    /// source side the principal can already read.
    ConstraintInferenceChannel,
    /// `F003`: a conditionally-valid (C3) view whose remainder probe
    /// evaluates predicates over columns the principal cannot otherwise
    /// see — each probe outcome leaks a bounded number of bits about
    /// those cells (the Section 5.4 channel, statically bounded).
    ProbeChannelExposure,
    /// `F004`: the flow delta of a *proposed* grant — which cells of the
    /// disclosure lattice it would newly make reachable, and which new
    /// flow findings it would introduce. Informational by construction.
    GrantFlowDiff,
    /// A finding code this build does not know. Never emitted by the
    /// analyzer; produced only by the wire parser so a newer writer's
    /// output still loads (forward compatibility). Always carries
    /// [`Severity::Unknown`]: an unrecognized finding is neither a
    /// clean bill nor an error.
    UnrecognizedFinding,
}

impl Code {
    /// The stable short code (`P001` ... `W001`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::UnsatisfiableViewPredicate => "P001",
            Code::RedundantGrant => "P002",
            Code::ShadowedByRevocation => "P003",
            Code::UnusableView => "P004",
            Code::LeakyConditionalCheck => "P005",
            Code::UnboundParameter => "P006",
            Code::CrossViewContradiction => "W001",
            Code::UncoveredRelation => "Q001",
            Code::UnauthorizedProbe => "Q002",
            Code::StaleGrantEpoch => "Q003",
            Code::CertificateStepUnverified => "Q004",
            Code::TransitiveDisclosureWidening => "F001",
            Code::ConstraintInferenceChannel => "F002",
            Code::ProbeChannelExposure => "F003",
            Code::GrantFlowDiff => "F004",
            Code::UnrecognizedFinding => "F???",
        }
    }

    /// Human-readable name of the code.
    pub fn name(&self) -> &'static str {
        match self {
            Code::UnsatisfiableViewPredicate => "UnsatisfiableViewPredicate",
            Code::RedundantGrant => "RedundantGrant",
            Code::ShadowedByRevocation => "ShadowedByRevocation",
            Code::UnusableView => "UnusableView",
            Code::LeakyConditionalCheck => "LeakyConditionalCheck",
            Code::UnboundParameter => "UnboundParameter",
            Code::CrossViewContradiction => "CrossViewContradiction",
            Code::UncoveredRelation => "UncoveredRelation",
            Code::UnauthorizedProbe => "UnauthorizedProbe",
            Code::StaleGrantEpoch => "StaleGrantEpoch",
            Code::CertificateStepUnverified => "CertificateStepUnverified",
            Code::TransitiveDisclosureWidening => "TransitiveDisclosureWidening",
            Code::ConstraintInferenceChannel => "ConstraintInferenceChannel",
            Code::ProbeChannelExposure => "ProbeChannelExposure",
            Code::GrantFlowDiff => "GrantFlowDiff",
            Code::UnrecognizedFinding => "UnrecognizedFinding",
        }
    }

    /// Parses a short code back into the enum.
    pub fn from_str_code(s: &str) -> Option<Code> {
        Some(match s {
            "P001" => Code::UnsatisfiableViewPredicate,
            "P002" => Code::RedundantGrant,
            "P003" => Code::ShadowedByRevocation,
            "P004" => Code::UnusableView,
            "P005" => Code::LeakyConditionalCheck,
            "P006" => Code::UnboundParameter,
            "W001" => Code::CrossViewContradiction,
            "Q001" => Code::UncoveredRelation,
            "Q002" => Code::UnauthorizedProbe,
            "Q003" => Code::StaleGrantEpoch,
            "Q004" => Code::CertificateStepUnverified,
            "F001" => Code::TransitiveDisclosureWidening,
            "F002" => Code::ConstraintInferenceChannel,
            "F003" => Code::ProbeChannelExposure,
            "F004" => Code::GrantFlowDiff,
            _ => return None,
        })
    }

    /// The severity this code carries when its analysis *completes*.
    /// (An exhausted analysis reports [`Severity::Unknown`] instead.)
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::UnsatisfiableViewPredicate
            | Code::ShadowedByRevocation
            | Code::UnusableView
            | Code::LeakyConditionalCheck
            | Code::UncoveredRelation
            | Code::UnauthorizedProbe
            | Code::StaleGrantEpoch
            | Code::CertificateStepUnverified
            | Code::TransitiveDisclosureWidening
            | Code::ConstraintInferenceChannel => Severity::Error,
            Code::RedundantGrant
            | Code::UnboundParameter
            | Code::CrossViewContradiction
            | Code::ProbeChannelExposure
            | Code::GrantFlowDiff => Severity::Warning,
            Code::UnrecognizedFinding => Severity::Unknown,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Diagnostic severity. `Unknown` is the fail-open level: the analysis
/// ran out of budget before it could prove or refute the defect, so
/// neither a clean bill nor a finding is claimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
    Unknown,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Unknown => "unknown",
        }
    }

    pub fn from_str_sev(s: &str) -> Option<Severity> {
        Some(match s {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            "unknown" => Severity::Unknown,
            _ => return None,
        })
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding of the policy analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// The principal whose effective grant set the finding concerns
    /// (empty for catalog-level findings).
    pub principal: String,
    /// The object — usually a view name — the finding is anchored to.
    pub object: String,
    pub message: String,
}

impl Diagnostic {
    /// A finding with the code's default severity.
    pub fn new(
        code: Code,
        principal: impl Into<String>,
        object: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            principal: principal.into(),
            object: object.into(),
            message: message.into(),
        }
    }

    /// The fail-open form: the analysis for `code` could not finish
    /// within its budget, so the result is unknown rather than clean.
    pub fn unknown(
        code: Code,
        principal: impl Into<String>,
        object: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Unknown,
            ..Diagnostic::new(code, principal, object, message)
        }
    }

    /// One JSON object, keys in fixed order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":{},\"name\":{},\"severity\":{},\"principal\":{},\"object\":{},\"message\":{}}}",
            json_str(self.code.as_str()),
            json_str(self.code.name()),
            json_str(self.severity.as_str()),
            json_str(&self.principal),
            json_str(&self.object),
            json_str(&self.message),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] ", self.severity, self.code)?;
        if !self.principal.is_empty() {
            write!(f, "principal '{}': ", self.principal)?;
        }
        if !self.object.is_empty() {
            write!(f, "{}: ", self.object)?;
        }
        write!(f, "{}", self.message)
    }
}

/// Renders a diagnostic list as a pretty-printed JSON array.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let body: Vec<String> = diags.iter().map(|d| format!("  {}", d.to_json())).collect();
    format!("[\n{}\n]", body.join(",\n"))
}

/// Parses a diagnostic array previously produced by
/// [`diagnostics_to_json`]. This is deliberately a parser for *our own
/// wire form* (string values only, no nesting) rather than a general
/// JSON library — it exists so the CI gate and tests can prove the
/// machine output round-trips.
pub fn diagnostics_from_json(input: &str) -> Option<Vec<Diagnostic>> {
    let mut p = JsonCursor::new(input);
    p.skip_ws();
    p.eat('[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.eat(']').is_some() {
        return Some(out);
    }
    loop {
        out.push(parse_object(&mut p)?);
        p.skip_ws();
        if p.eat(',').is_some() {
            continue;
        }
        p.eat(']')?;
        return Some(out);
    }
}

fn parse_object(p: &mut JsonCursor) -> Option<Diagnostic> {
    p.skip_ws();
    p.eat('{')?;
    let mut code = None;
    let mut severity = None;
    let mut principal = None;
    let mut object = None;
    let mut message = None;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.eat(':')?;
        p.skip_ws();
        let val = p.string()?;
        match key.as_str() {
            // Forward compatibility: a code this build does not know
            // (a newer analyzer's finding) parses as
            // [`Code::UnrecognizedFinding`] instead of rejecting the
            // whole document. Structural strictness is unchanged — the
            // key must still be present with a string value.
            "code" => {
                code = Some(Code::from_str_code(&val).unwrap_or(Code::UnrecognizedFinding));
            }
            "severity" => severity = Severity::from_str_sev(&val),
            "principal" => principal = Some(val),
            "object" => object = Some(val),
            "message" => message = Some(val),
            // "name" and any future additive keys are derivable/ignored.
            _ => {}
        }
        p.skip_ws();
        if p.eat(',').is_some() {
            continue;
        }
        p.eat('}')?;
        break;
    }
    let code = code?;
    // An unrecognized finding is neither clean nor an error: whatever
    // severity the (newer) writer attached, this build cannot act on
    // it, so it degrades to the fail-open level.
    let severity = if code == Code::UnrecognizedFinding {
        Severity::Unknown
    } else {
        severity?
    };
    Some(Diagnostic {
        code,
        severity,
        principal: principal?,
        object: object?,
        message: message?,
    })
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct JsonCursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> JsonCursor<'a> {
    fn new(s: &'a str) -> Self {
        JsonCursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> Option<()> {
        if self.chars.peek() == Some(&want) {
            self.chars.next();
            Some(())
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next()? {
                '"' => return Some(out),
                '\\' => match self.chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            v = v * 16 + self.chars.next()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        for (code, s) in [
            (Code::UnsatisfiableViewPredicate, "P001"),
            (Code::RedundantGrant, "P002"),
            (Code::ShadowedByRevocation, "P003"),
            (Code::UnusableView, "P004"),
            (Code::LeakyConditionalCheck, "P005"),
            (Code::UnboundParameter, "P006"),
            (Code::CrossViewContradiction, "W001"),
            (Code::UncoveredRelation, "Q001"),
            (Code::UnauthorizedProbe, "Q002"),
            (Code::StaleGrantEpoch, "Q003"),
            (Code::CertificateStepUnverified, "Q004"),
            (Code::TransitiveDisclosureWidening, "F001"),
            (Code::ConstraintInferenceChannel, "F002"),
            (Code::ProbeChannelExposure, "F003"),
            (Code::GrantFlowDiff, "F004"),
        ] {
            assert_eq!(code.as_str(), s);
            assert_eq!(Code::from_str_code(s), Some(code));
        }
        // The forward-compat sentinel is parser-only: no short code maps
        // to it, and its own spelling does not round-trip into a real code.
        assert_eq!(Code::from_str_code("F???"), None);
    }

    #[test]
    fn unknown_codes_parse_to_severity_unknown_not_error() {
        // A newer analyzer emitted F009 with a severity this build has
        // never heard of: the document still loads, the finding carries
        // the fail-open severity, and known findings around it survive.
        let json = r#"[
  {"code":"F009","name":"FutureFinding","severity":"critical","principal":"11","object":"v","message":"from the future"},
  {"code":"F001","name":"TransitiveDisclosureWidening","severity":"error","principal":"11","object":"w","message":"known"}
]"#;
        let back = diagnostics_from_json(json).expect("forward-compat parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].code, Code::UnrecognizedFinding);
        assert_eq!(back[0].severity, Severity::Unknown);
        assert_eq!(back[0].message, "from the future");
        assert_eq!(back[1].code, Code::TransitiveDisclosureWidening);
        assert_eq!(back[1].severity, Severity::Error);

        // Structural strictness is unchanged: a known code with an
        // unknown severity string is still rejected.
        let bad = r#"[{"code":"F001","severity":"critical","principal":"","object":"","message":""}]"#;
        assert_eq!(diagnostics_from_json(bad), None);
    }

    #[test]
    fn json_round_trips_including_escapes() {
        let diags = vec![
            Diagnostic::new(Code::UnusableView, "11", "mygrades", "weird \"quotes\"\nand\tlines"),
            Diagnostic::unknown(Code::RedundantGrant, "", "v2", "budget exhausted"),
        ];
        let json = diagnostics_to_json(&diags);
        let back = diagnostics_from_json(&json).expect("round-trip parses");
        assert_eq!(diags, back);
        assert_eq!(diagnostics_from_json("[]"), Some(vec![]));
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in ["", "[", "[{]", "[{\"code\":\"P001\"}]", "nonsense"] {
            assert_eq!(diagnostics_from_json(bad), None, "input {bad:?}");
        }
    }
}
