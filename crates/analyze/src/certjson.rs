//! Hand-rolled JSON wire form for [`Certificate`]s.
//!
//! Like the diagnostic wire form in [`crate::diag`], this is a parser
//! for *our own* output — strict, recursive-descent, zero dependencies —
//! so `fgac-analyze --certify` output and the CI certification corpus
//! provably round-trip. Unlike the diag cursor (strings only), the
//! certificate form needs the full JSON value shape: nested arrays for
//! expressions, numbers for column indices and epochs, objects for
//! steps.
//!
//! Numbers: signed integers are wired as `i64`; the unsigned fields
//! (`policy_epoch`, `probe_rows`) get a dedicated `u64` form so the
//! full range survives the trip. Doubles keep Rust's `{:?}` rendering,
//! which also emits the non-finite tokens `NaN`, `inf`, and `-inf` —
//! the parser accepts those three as an extension so every in-memory
//! [`Value::Double`] survives the trip.
//!
//! The decoder is deliberately stricter than general JSON: objects may
//! not carry unknown or duplicate keys. A corrupted key would otherwise
//! silently revert its field to the default — exactly the failure mode
//! a checker wire format must refuse.

use crate::cert::{CertVerdict, Certificate, Obligation, RuleId, Step};
use fgac_algebra::{ArithOp, CmpOp, ScalarExpr, SpjBlock};
use fgac_types::{Column, DataType, Error, Ident, Result, Schema, Value};
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order (the printer
/// emits fixed key orders, and order is irrelevant to the reader).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    /// Non-negative integer above `i64::MAX` — only `policy_epoch` and
    /// `probe_rows` can produce one, but losing the high bit there
    /// would let a stale epoch alias a live one.
    UInt(u64),
    Double(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    fn usize(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }

    fn u64(n: u64) -> Json {
        match i64::try_from(n) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::UInt(n),
        }
    }

    /// Compact rendering, keys in stored order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Double(d) => {
                let _ = write!(out, "{d:?}");
            }
            Json::Str(s) => write_json_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Strict parse: exactly one value, nothing but whitespace after it.
    pub fn parse(input: &str) -> Result<Json> {
        let mut p = Parser {
            chars: input.chars().peekable(),
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.chars.peek().is_some() {
            return Err(parse_err("trailing content after JSON value"));
        }
        Ok(v)
    }

    fn field<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_err(msg: impl Into<String>) -> Error {
    Error::Parse(format!("certificate JSON: {}", msg.into()))
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> Result<()> {
        match self.chars.next() {
            Some(c) if c == want => Ok(()),
            other => Err(parse_err(format!("expected '{want}', found {other:?}"))),
        }
    }

    fn keyword(&mut self, rest: &str, out: Json) -> Result<Json> {
        for want in rest.chars() {
            self.eat(want)?;
        }
        Ok(out)
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some('n') => {
                self.chars.next();
                self.keyword("ull", Json::Null)
            }
            Some('t') => {
                self.chars.next();
                self.keyword("rue", Json::Bool(true))
            }
            Some('f') => {
                self.chars.next();
                self.keyword("alse", Json::Bool(false))
            }
            Some('N') => {
                self.chars.next();
                self.keyword("aN", Json::Double(f64::NAN))
            }
            Some('i') => {
                self.chars.next();
                self.keyword("nf", Json::Double(f64::INFINITY))
            }
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => {
                self.chars.next();
                let mut items = Vec::new();
                self.skip_ws();
                if self.chars.peek() == Some(&']') {
                    self.chars.next();
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some(']') => return Ok(Json::Arr(items)),
                        other => {
                            return Err(parse_err(format!(
                                "expected ',' or ']' in array, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some('{') => {
                self.chars.next();
                let mut fields = Vec::new();
                self.skip_ws();
                if self.chars.peek() == Some(&'}') {
                    self.chars.next();
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some('}') => return Ok(Json::Obj(fields)),
                        other => {
                            return Err(parse_err(format!(
                                "expected ',' or '}}' in object, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(parse_err(format!("unexpected input {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<Json> {
        let mut text = String::new();
        let negative = self.chars.peek() == Some(&'-');
        if negative {
            text.push('-');
            self.chars.next();
            // `-inf` is the `{:?}` rendering of negative infinity.
            if self.chars.peek() == Some(&'i') {
                self.chars.next();
                return self.keyword("nf", Json::Double(f64::NEG_INFINITY));
            }
        }
        let mut is_double = false;
        while let Some(&c) = self.chars.peek() {
            match c {
                '0'..='9' => text.push(c),
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_double = true;
                    text.push(c);
                }
                _ => break,
            }
            self.chars.next();
        }
        if is_double {
            text.parse::<f64>()
                .map(Json::Double)
                .map_err(|_| parse_err(format!("bad number {text:?}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else if !negative {
            // i64 overflowed; the unsigned wire fields reach up here.
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| parse_err(format!("integer out of range: {text:?}")))
        } else {
            Err(parse_err(format!("integer out of range: {text:?}")))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| parse_err("bad \\u escape"))?;
                            v = v * 16 + d;
                        }
                        out.push(char::from_u32(v).ok_or_else(|| parse_err("bad \\u escape"))?);
                    }
                    other => return Err(parse_err(format!("bad escape {other:?}"))),
                },
                Some(c) => out.push(c),
                None => return Err(parse_err("unterminated string")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Arr(vec![Json::str("null")]),
        Value::Bool(b) => Json::Arr(vec![Json::str("bool"), Json::Bool(*b)]),
        Value::Int(i) => Json::Arr(vec![Json::str("int"), Json::Int(*i)]),
        Value::Double(d) => Json::Arr(vec![Json::str("double"), Json::Double(*d)]),
        Value::Str(s) => Json::Arr(vec![Json::str("str"), Json::str(s.clone())]),
    }
}

fn cmp_op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::NotEq => "<>",
        CmpOp::Lt => "<",
        CmpOp::LtEq => "<=",
        CmpOp::Gt => ">",
        CmpOp::GtEq => ">=",
    }
}

fn arith_op_str(op: ArithOp) -> &'static str {
    match op {
        ArithOp::Add => "+",
        ArithOp::Sub => "-",
        ArithOp::Mul => "*",
        ArithOp::Div => "/",
        ArithOp::Mod => "%",
    }
}

fn expr_to_json(e: &ScalarExpr) -> Json {
    match e {
        ScalarExpr::Col(i) => Json::Arr(vec![Json::str("col"), Json::usize(*i)]),
        ScalarExpr::Lit(v) => Json::Arr(vec![Json::str("lit"), value_to_json(v)]),
        ScalarExpr::AccessParam(p) => Json::Arr(vec![Json::str("ap"), Json::str(p.clone())]),
        ScalarExpr::Cmp { op, left, right } => Json::Arr(vec![
            Json::str("cmp"),
            Json::str(cmp_op_str(*op)),
            expr_to_json(left),
            expr_to_json(right),
        ]),
        ScalarExpr::And(es) => Json::Arr(vec![
            Json::str("and"),
            Json::Arr(es.iter().map(expr_to_json).collect()),
        ]),
        ScalarExpr::Or(es) => Json::Arr(vec![
            Json::str("or"),
            Json::Arr(es.iter().map(expr_to_json).collect()),
        ]),
        ScalarExpr::Not(e) => Json::Arr(vec![Json::str("not"), expr_to_json(e)]),
        ScalarExpr::IsNull { expr, negated } => Json::Arr(vec![
            Json::str("isnull"),
            expr_to_json(expr),
            Json::Bool(*negated),
        ]),
        ScalarExpr::Arith { op, left, right } => Json::Arr(vec![
            Json::str("arith"),
            Json::str(arith_op_str(*op)),
            expr_to_json(left),
            expr_to_json(right),
        ]),
        ScalarExpr::Neg(e) => Json::Arr(vec![Json::str("neg"), expr_to_json(e)]),
    }
}

fn type_str(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Double => "double",
        DataType::Str => "str",
    }
}

fn schema_to_json(s: &Schema) -> Json {
    Json::Arr(
        s.columns()
            .iter()
            .map(|c| {
                Json::Arr(vec![
                    Json::str(c.name.as_str()),
                    Json::str(type_str(c.ty)),
                    Json::Bool(c.nullable),
                ])
            })
            .collect(),
    )
}

fn block_to_json(b: &SpjBlock) -> Json {
    Json::Obj(vec![
        (
            "scans".into(),
            Json::Arr(
                b.scans
                    .iter()
                    .map(|(t, s)| Json::Arr(vec![Json::str(t.as_str()), schema_to_json(s)]))
                    .collect(),
            ),
        ),
        (
            "conjuncts".into(),
            Json::Arr(b.conjuncts.iter().map(expr_to_json).collect()),
        ),
        (
            "projection".into(),
            Json::Arr(b.projection.iter().map(expr_to_json).collect()),
        ),
        ("distinct".into(), Json::Bool(b.distinct)),
    ])
}

fn obligation_to_json(ob: &Obligation) -> Json {
    Json::Obj(vec![
        (
            "premise".into(),
            Json::Arr(ob.premise.iter().map(expr_to_json).collect()),
        ),
        (
            "conclusion".into(),
            Json::Arr(ob.conclusion.iter().map(expr_to_json).collect()),
        ),
        ("arity".into(), Json::usize(ob.arity)),
    ])
}

fn step_to_json(s: &Step) -> Json {
    let mut fields = vec![("rule".into(), Json::str(s.rule.as_str()))];
    if let Some(b) = &s.block {
        fields.push(("block".into(), block_to_json(b)));
    }
    fields.push((
        "premises".into(),
        Json::Arr(s.premises.iter().map(|&p| Json::usize(p)).collect()),
    ));
    if let Some(v) = &s.view {
        fields.push(("view".into(), Json::str(v.as_str())));
    }
    if let Some(c) = &s.constraint {
        fields.push(("constraint".into(), Json::str(c.as_str())));
    }
    fields.push((
        "substitution".into(),
        Json::Arr(s.substitution.iter().map(|&i| Json::usize(i)).collect()),
    ));
    fields.push((
        "pins".into(),
        Json::Arr(
            s.pins
                .iter()
                .map(|(k, v)| Json::Arr(vec![Json::str(k.clone()), value_to_json(v)]))
                .collect(),
        ),
    ));
    fields.push((
        "obligations".into(),
        Json::Arr(s.obligations.iter().map(obligation_to_json).collect()),
    ));
    if let Some(n) = s.probe_rows {
        fields.push(("probe_rows".into(), Json::u64(n)));
    }
    fields.push(("note".into(), Json::str(s.note.clone())));
    Json::Obj(fields)
}

/// Renders a certificate as compact JSON.
pub fn certificate_to_json(cert: &Certificate) -> String {
    let mut fields = vec![
        ("principal".into(), Json::str(cert.principal.clone())),
        ("policy_epoch".into(), Json::u64(cert.policy_epoch)),
        ("verdict".into(), Json::str(cert.verdict.as_str())),
        (
            "params".into(),
            Json::Arr(
                cert.params
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::str(k.clone()), value_to_json(v)]))
                    .collect(),
            ),
        ),
        (
            "query_tables".into(),
            Json::Arr(
                cert.query_tables
                    .iter()
                    .map(|t| Json::str(t.as_str()))
                    .collect(),
            ),
        ),
    ];
    if let Some(q) = &cert.query {
        fields.push(("query".into(), block_to_json(q)));
    }
    fields.push((
        "steps".into(),
        Json::Arr(cert.steps.iter().map(step_to_json).collect()),
    ));
    Json::Obj(fields).render()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn as_str(j: &Json, what: &str) -> Result<String> {
    match j {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(parse_err(format!("{what}: expected string"))),
    }
}

fn as_bool(j: &Json, what: &str) -> Result<bool> {
    match j {
        Json::Bool(b) => Ok(*b),
        _ => Err(parse_err(format!("{what}: expected bool"))),
    }
}

fn as_usize(j: &Json, what: &str) -> Result<usize> {
    match j {
        Json::Int(i) => {
            usize::try_from(*i).map_err(|_| parse_err(format!("{what}: negative index")))
        }
        _ => Err(parse_err(format!("{what}: expected integer"))),
    }
}

fn as_u64(j: &Json, what: &str) -> Result<u64> {
    match j {
        Json::Int(i) => u64::try_from(*i).map_err(|_| parse_err(format!("{what}: negative"))),
        Json::UInt(u) => Ok(*u),
        _ => Err(parse_err(format!("{what}: expected integer"))),
    }
}

/// Rejects objects carrying keys outside `allowed`, or the same key
/// twice. Unknown keys must be fatal: a one-byte corruption of a key
/// name would otherwise silently reset that field to its default and
/// still verify.
fn check_keys(j: &Json, what: &str, allowed: &[&str]) -> Result<()> {
    let Json::Obj(fields) = j else {
        return Err(parse_err(format!("{what}: expected object")));
    };
    for (i, (k, _)) in fields.iter().enumerate() {
        if !allowed.contains(&k.as_str()) {
            return Err(parse_err(format!("{what}: unknown key {k:?}")));
        }
        if fields[..i].iter().any(|(prev, _)| prev == k) {
            return Err(parse_err(format!("{what}: duplicate key {k:?}")));
        }
    }
    Ok(())
}

fn as_arr<'a>(j: &'a Json, what: &str) -> Result<&'a [Json]> {
    match j {
        Json::Arr(items) => Ok(items),
        _ => Err(parse_err(format!("{what}: expected array"))),
    }
}

fn value_from_json(j: &Json) -> Result<Value> {
    let items = as_arr(j, "value")?;
    let tag = items.first().map(|t| as_str(t, "value tag")).transpose()?;
    match (tag.as_deref(), items) {
        (Some("null"), [_]) => Ok(Value::Null),
        (Some("bool"), [_, b]) => Ok(Value::Bool(as_bool(b, "bool value")?)),
        (Some("int"), [_, Json::Int(i)]) => Ok(Value::Int(*i)),
        (Some("double"), [_, Json::Double(d)]) => Ok(Value::Double(*d)),
        (Some("double"), [_, Json::Int(i)]) => Ok(Value::Double(*i as f64)),
        (Some("str"), [_, s]) => Ok(Value::Str(as_str(s, "str value")?)),
        _ => Err(parse_err("malformed value encoding")),
    }
}

fn cmp_op_from(s: &str) -> Result<CmpOp> {
    Ok(match s {
        "=" => CmpOp::Eq,
        "<>" => CmpOp::NotEq,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::LtEq,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::GtEq,
        _ => return Err(parse_err(format!("unknown comparison operator {s:?}"))),
    })
}

fn arith_op_from(s: &str) -> Result<ArithOp> {
    Ok(match s {
        "+" => ArithOp::Add,
        "-" => ArithOp::Sub,
        "*" => ArithOp::Mul,
        "/" => ArithOp::Div,
        "%" => ArithOp::Mod,
        _ => return Err(parse_err(format!("unknown arithmetic operator {s:?}"))),
    })
}

fn expr_from_json(j: &Json) -> Result<ScalarExpr> {
    let items = as_arr(j, "expr")?;
    let tag = items.first().map(|t| as_str(t, "expr tag")).transpose()?;
    match (tag.as_deref(), items) {
        (Some("col"), [_, i]) => Ok(ScalarExpr::Col(as_usize(i, "col")?)),
        (Some("lit"), [_, v]) => Ok(ScalarExpr::Lit(value_from_json(v)?)),
        (Some("ap"), [_, p]) => Ok(ScalarExpr::AccessParam(as_str(p, "ap")?)),
        (Some("cmp"), [_, op, l, r]) => Ok(ScalarExpr::Cmp {
            op: cmp_op_from(&as_str(op, "cmp op")?)?,
            left: Box::new(expr_from_json(l)?),
            right: Box::new(expr_from_json(r)?),
        }),
        (Some("and"), [_, es]) => Ok(ScalarExpr::And(
            as_arr(es, "and")?.iter().map(expr_from_json).collect::<Result<_>>()?,
        )),
        (Some("or"), [_, es]) => Ok(ScalarExpr::Or(
            as_arr(es, "or")?.iter().map(expr_from_json).collect::<Result<_>>()?,
        )),
        (Some("not"), [_, e]) => Ok(ScalarExpr::Not(Box::new(expr_from_json(e)?))),
        (Some("isnull"), [_, e, neg]) => Ok(ScalarExpr::IsNull {
            expr: Box::new(expr_from_json(e)?),
            negated: as_bool(neg, "isnull")?,
        }),
        (Some("arith"), [_, op, l, r]) => Ok(ScalarExpr::Arith {
            op: arith_op_from(&as_str(op, "arith op")?)?,
            left: Box::new(expr_from_json(l)?),
            right: Box::new(expr_from_json(r)?),
        }),
        (Some("neg"), [_, e]) => Ok(ScalarExpr::Neg(Box::new(expr_from_json(e)?))),
        _ => Err(parse_err("malformed expression encoding")),
    }
}

fn type_from(s: &str) -> Result<DataType> {
    Ok(match s {
        "bool" => DataType::Bool,
        "int" => DataType::Int,
        "double" => DataType::Double,
        "str" => DataType::Str,
        _ => return Err(parse_err(format!("unknown data type {s:?}"))),
    })
}

fn schema_from_json(j: &Json) -> Result<Schema> {
    let cols = as_arr(j, "schema")?
        .iter()
        .map(|c| {
            let [name, ty, nullable] = as_arr(c, "column")? else {
                return Err(parse_err("column must be [name, type, nullable]"));
            };
            let mut col = Column::new(
                Ident::new(as_str(name, "column name")?),
                type_from(&as_str(ty, "column type")?)?,
            );
            if as_bool(nullable, "column nullable")? {
                col = col.nullable();
            }
            Ok(col)
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Schema::new(cols))
}

fn block_from_json(j: &Json) -> Result<SpjBlock> {
    check_keys(j, "block", &["scans", "conjuncts", "projection", "distinct"])?;
    let scans = as_arr(
        j.field("scans").ok_or_else(|| parse_err("block missing scans"))?,
        "scans",
    )?
    .iter()
    .map(|s| {
        let [table, schema] = as_arr(s, "scan")? else {
            return Err(parse_err("scan must be [table, schema]"));
        };
        Ok((
            Ident::new(as_str(table, "scan table")?),
            schema_from_json(schema)?,
        ))
    })
    .collect::<Result<Vec<_>>>()?;
    let exprs = |key: &str| -> Result<Vec<ScalarExpr>> {
        as_arr(
            j.field(key)
                .ok_or_else(|| parse_err(format!("block missing {key}")))?,
            key,
        )?
        .iter()
        .map(expr_from_json)
        .collect()
    };
    Ok(SpjBlock {
        scans,
        conjuncts: exprs("conjuncts")?,
        projection: exprs("projection")?,
        distinct: as_bool(
            j.field("distinct")
                .ok_or_else(|| parse_err("block missing distinct"))?,
            "distinct",
        )?,
    })
}

fn pairs_from_json(j: &Json, what: &str) -> Result<Vec<(String, Value)>> {
    as_arr(j, what)?
        .iter()
        .map(|p| {
            let [k, v] = as_arr(p, what)? else {
                return Err(parse_err(format!("{what}: expected [name, value]")));
            };
            Ok((as_str(k, what)?, value_from_json(v)?))
        })
        .collect()
}

fn obligation_from_json(j: &Json) -> Result<Obligation> {
    check_keys(j, "obligation", &["premise", "conclusion", "arity"])?;
    let exprs = |key: &str| -> Result<Vec<ScalarExpr>> {
        as_arr(
            j.field(key)
                .ok_or_else(|| parse_err(format!("obligation missing {key}")))?,
            key,
        )?
        .iter()
        .map(expr_from_json)
        .collect()
    };
    Ok(Obligation {
        premise: exprs("premise")?,
        conclusion: exprs("conclusion")?,
        arity: as_usize(
            j.field("arity")
                .ok_or_else(|| parse_err("obligation missing arity"))?,
            "arity",
        )?,
    })
}

fn step_from_json(j: &Json) -> Result<Step> {
    check_keys(
        j,
        "step",
        &[
            "rule",
            "block",
            "premises",
            "view",
            "constraint",
            "substitution",
            "pins",
            "obligations",
            "probe_rows",
            "note",
        ],
    )?;
    let rule_str = as_str(
        j.field("rule").ok_or_else(|| parse_err("step missing rule"))?,
        "rule",
    )?;
    let rule = RuleId::from_str_id(&rule_str)
        .ok_or_else(|| parse_err(format!("unknown rule id {rule_str:?}")))?;
    let mut step = Step::new(rule);
    if let Some(b) = j.field("block") {
        step.block = Some(block_from_json(b)?);
    }
    if let Some(p) = j.field("premises") {
        step.premises = as_arr(p, "premises")?
            .iter()
            .map(|i| as_usize(i, "premise"))
            .collect::<Result<_>>()?;
    }
    if let Some(v) = j.field("view") {
        step.view = Some(Ident::new(as_str(v, "view")?));
    }
    if let Some(c) = j.field("constraint") {
        step.constraint = Some(Ident::new(as_str(c, "constraint")?));
    }
    if let Some(s) = j.field("substitution") {
        step.substitution = as_arr(s, "substitution")?
            .iter()
            .map(|i| as_usize(i, "substitution"))
            .collect::<Result<_>>()?;
    }
    if let Some(p) = j.field("pins") {
        step.pins = pairs_from_json(p, "pins")?;
    }
    if let Some(o) = j.field("obligations") {
        step.obligations = as_arr(o, "obligations")?
            .iter()
            .map(obligation_from_json)
            .collect::<Result<_>>()?;
    }
    if let Some(n) = j.field("probe_rows") {
        step.probe_rows = Some(as_u64(n, "probe_rows")?);
    }
    if let Some(n) = j.field("note") {
        step.note = as_str(n, "note")?;
    }
    Ok(step)
}

/// Parses a certificate previously produced by [`certificate_to_json`].
pub fn certificate_from_json(input: &str) -> Result<Certificate> {
    let j = Json::parse(input)?;
    check_keys(
        &j,
        "certificate",
        &[
            "principal",
            "policy_epoch",
            "verdict",
            "params",
            "query_tables",
            "query",
            "steps",
        ],
    )?;
    let field = |key: &str| -> Result<&Json> {
        j.field(key)
            .ok_or_else(|| parse_err(format!("certificate missing {key}")))
    };
    let verdict_str = as_str(field("verdict")?, "verdict")?;
    let verdict = CertVerdict::from_str_verdict(&verdict_str)
        .ok_or_else(|| parse_err(format!("unknown verdict {verdict_str:?}")))?;
    Ok(Certificate {
        principal: as_str(field("principal")?, "principal")?,
        policy_epoch: as_u64(field("policy_epoch")?, "policy_epoch")?,
        verdict,
        params: pairs_from_json(field("params")?, "params")?,
        query_tables: as_arr(field("query_tables")?, "query_tables")?
            .iter()
            .map(|t| Ok(Ident::new(as_str(t, "query table")?)))
            .collect::<Result<_>>()?,
        query: match j.field("query") {
            Some(q) => Some(block_from_json(q)?),
            None => None,
        },
        steps: as_arr(field("steps")?, "steps")?
            .iter()
            .map(step_from_json)
            .collect::<Result<_>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> SpjBlock {
        SpjBlock {
            scans: vec![(
                Ident::new("grades"),
                Schema::new(vec![
                    Column::new("student_id", DataType::Str),
                    Column::new("grade", DataType::Int).nullable(),
                ]),
            )],
            conjuncts: vec![ScalarExpr::eq(
                ScalarExpr::col(0),
                ScalarExpr::Lit(Value::Str("11".into())),
            )],
            projection: vec![ScalarExpr::Col(0), ScalarExpr::Col(1)],
            distinct: false,
        }
    }

    fn sample_cert() -> Certificate {
        let mut u1 = Step::new(RuleId::U1);
        u1.view = Some(Ident::new("mygrades"));
        u1.block = Some(sample_block());
        u1.pins = vec![("k".into(), Value::Int(3))];
        u1.note = "root \"view\"\nline2".into();
        let mut goal = Step::new(RuleId::C3a);
        goal.premises = vec![0, 0];
        goal.block = Some(sample_block());
        goal.probe_rows = Some(2);
        goal.obligations = vec![Obligation {
            premise: vec![ScalarExpr::And(vec![
                ScalarExpr::IsNull {
                    expr: Box::new(ScalarExpr::Col(1)),
                    negated: true,
                },
                ScalarExpr::Or(vec![ScalarExpr::Not(Box::new(ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::Arith {
                        op: ArithOp::Add,
                        left: Box::new(ScalarExpr::Col(1)),
                        right: Box::new(ScalarExpr::Neg(Box::new(ScalarExpr::Lit(
                            Value::Double(1.5),
                        )))),
                    },
                    ScalarExpr::AccessParam("uid".into()),
                )))]),
            ])],
            conclusion: vec![ScalarExpr::Lit(Value::Bool(true)), ScalarExpr::Lit(Value::Null)],
            arity: 2,
        }];
        Certificate {
            principal: "11".into(),
            policy_epoch: 42,
            verdict: CertVerdict::Conditional,
            params: vec![("user_id".into(), Value::Str("11".into()))],
            query_tables: vec![Ident::new("grades")],
            query: Some(sample_block()),
            steps: vec![u1, goal],
        }
    }

    #[test]
    fn certificate_round_trips() {
        let cert = sample_cert();
        let json = certificate_to_json(&cert);
        let back = certificate_from_json(&json).expect("round-trip parses");
        assert_eq!(cert, back);
        // And the re-rendered form is byte-identical (canonical output).
        assert_eq!(certificate_to_json(&back), json);
    }

    #[test]
    fn no_query_block_round_trips() {
        let mut cert = sample_cert();
        cert.query = None;
        cert.verdict = CertVerdict::Unconditional;
        cert.steps[1] = Step::new(RuleId::U2Dag);
        cert.steps[1].premises = vec![0];
        let back = certificate_from_json(&certificate_to_json(&cert)).expect("parses");
        assert_eq!(cert, back);
    }

    #[test]
    fn nonfinite_doubles_round_trip() {
        for d in [f64::INFINITY, f64::NEG_INFINITY, 1e300, -0.0] {
            let j = Json::Double(d).render();
            let back = Json::parse(&j).expect("parses");
            assert_eq!(back, Json::Double(d), "value {d:?} via {j:?}");
        }
        // NaN != NaN, so check the shape by hand.
        let back = Json::parse(&Json::Double(f64::NAN).render()).expect("parses");
        assert!(matches!(back, Json::Double(d) if d.is_nan()));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"principal\":}",
            "nonsense",
            "{} trailing",
            "{\"principal\":\"a\"}",
            "18446744073709551615", // > i64::MAX
            "\"unterminated",
            "{\"a\":\"\\q\"}",
        ] {
            assert!(certificate_from_json(bad).is_err(), "input {bad:?}");
        }
    }

    #[test]
    fn full_u64_epoch_and_probe_rows_round_trip() {
        let mut cert = sample_cert();
        cert.policy_epoch = u64::MAX;
        cert.steps[1].probe_rows = Some(u64::MAX - 1);
        let back = certificate_from_json(&certificate_to_json(&cert)).expect("parses");
        assert_eq!(cert, back);
    }

    #[test]
    fn unknown_and_duplicate_keys_rejected() {
        let cert = sample_cert();
        let json = certificate_to_json(&cert);
        for (bad, why) in [
            (
                json.replace("\"policy_epoch\"", "\"policy_epocj\""),
                "corrupted certificate key",
            ),
            (json.replace("\"premises\"", "\"premisft\""), "corrupted step key"),
            (json.replace("\"arity\"", "\"aritz\""), "corrupted obligation key"),
            (json.replace("\"distinct\"", "\"distinkt\""), "corrupted block key"),
            (
                json.replacen("{\"rule\"", "{\"rule\":\"U1\",\"rule\"", 1),
                "duplicate step key",
            ),
        ] {
            assert!(certificate_from_json(&bad).is_err(), "{why}: {bad}");
        }
    }

    #[test]
    fn negative_epoch_rejected() {
        let cert = sample_cert();
        let json = certificate_to_json(&cert).replace("\"policy_epoch\":42", "\"policy_epoch\":-1");
        assert!(certificate_from_json(&json).is_err());
    }

    #[test]
    fn unknown_rule_rejected() {
        let cert = sample_cert();
        let json = certificate_to_json(&cert).replace("\"rule\":\"U1\"", "\"rule\":\"U9\"");
        assert!(certificate_from_json(&json).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let j = Json::Str("quote \" slash \\ nl \n tab \t ctrl \u{1} uni \u{263a}".into());
        let back = Json::parse(&j.render()).expect("parses");
        assert_eq!(back, j);
    }
}
