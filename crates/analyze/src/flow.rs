//! Whole-policy information-flow analysis: disclosure lattices.
//!
//! The paper's validity checks are per-query and the policy lints
//! (`policy.rs`) are per-grant. Neither sees what a principal can learn
//! by *composing* the whole granted view set: joining two views back
//! together on an exposed key recombines column sets no single grant
//! exposes, a visible inclusion dependency (the U3a machinery of
//! Section 5.3) lets values of a protected relation be inferred from a
//! disclosed one, and the Section 5.4 conditional-probe channel leaks
//! one bit per remainder probe. This module computes, per principal, a
//! **disclosure lattice** — for every relation, the set of columns
//! reachable through any composition of that principal's effective
//! grants — and reports flow findings over it:
//!
//! | code | name | severity |
//! |------|------|----------|
//! | `F001` | TransitiveDisclosureWidening | error |
//! | `F002` | ConstraintInferenceChannel | error |
//! | `F003` | ProbeChannelExposure | warning |
//! | `F004` | GrantFlowDiff | warning (or the introduced finding's) |
//!
//! **Representation.** Column sets are `u128` bitmasks in the
//! relation's schema order — the same column-coverage encoding the
//! compiled authorization fast path uses (`fgac-core::compiled`,
//! `MAX_COLS = 128`), which is what keeps whole-set analysis cheap at
//! tens of thousands of granted views: each view is summarized once
//! (bind + SPJ decomposition) and every lattice operation after that is
//! mask arithmetic. Relations wider than 128 columns saturate to
//! all-columns-disclosed.
//!
//! **Soundness.** The lattice is an *over*-approximation of what a
//! principal can learn: non-SPJ view bodies fall back to their full
//! FROM-list width, cross-relation conjuncts are dropped before the
//! F001 row-scope satisfiability check (dropping a restriction only
//! widens the modeled scope), and prover exhaustion degrades a finding
//! to [`Severity::Unknown`] rather than suppressing it. The analysis
//! can therefore report a widening whose row scopes never intersect in
//! practice, but it can never *miss* a disclosure expressible in the
//! modeled composition rules (projection union, key-join
//! recombination, dependency chaining).
//!
//! [`Severity::Unknown`]: crate::diag::Severity::Unknown

use crate::diag::{Code, Diagnostic};
use crate::policy::{
    effective_constraints, effective_views, inspect_view, AnalyzeOptions, PolicySet, Prover,
};
use fgac_algebra::{ScalarExpr, SpjBlock};
use fgac_storage::{Catalog, InclusionDependency};
use fgac_types::Ident;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Column-mask width; mirrors `fgac-core::compiled::MAX_COLS`.
pub const MAX_FLOW_COLS: usize = 128;

/// All columns of a relation of `width` columns.
fn full_mask(width: usize) -> u128 {
    if width >= MAX_FLOW_COLS {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// What one granted view disclosed about one scanned relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelDisclosure {
    pub relation: Ident,
    /// Columns readable through the view's projection.
    pub projected: u128,
    /// Columns the view's predicate evaluates (visible only through
    /// the probe/selection behavior, not as values).
    pub predicate: u128,
    /// Every primary-key column of the relation is projected, so rows
    /// of this view can be re-joined to rows of another view over the
    /// same relation.
    pub pk_exposed: bool,
    /// Schema width of the relation.
    pub width: usize,
    /// The view's conjuncts that mention only this relation's columns,
    /// remapped to relation-local offsets — the row scope used by the
    /// F001 satisfiability refinement. Empty when the relation is
    /// scanned more than once (over-approximation: unrestricted).
    pub local_conjuncts: Vec<ScalarExpr>,
}

/// The flow-relevant summary of one view definition, computed once per
/// view and shared across principals.
#[derive(Debug, Clone)]
pub struct ViewFlowSummary {
    /// Exists, is an authorization view, and binds. Unusable views are
    /// the policy analyzer's `P004` and contribute nothing to flow.
    pub usable: bool,
    /// Scans at least two distinct relations — a conditional-validity
    /// (C3) candidate whose acceptance needs a remainder probe.
    pub multi_relation: bool,
    /// Per distinct scanned relation, in relation order.
    pub rels: Vec<RelDisclosure>,
}

impl ViewFlowSummary {
    fn unusable() -> Self {
        ViewFlowSummary {
            usable: false,
            multi_relation: false,
            rels: Vec::new(),
        }
    }
}

/// Collects every column offset an expression references.
fn collect_cols(e: &ScalarExpr, out: &mut dyn FnMut(usize)) {
    match e {
        ScalarExpr::Col(i) => out(*i),
        ScalarExpr::Lit(_) | ScalarExpr::AccessParam(_) => {}
        ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
            collect_cols(left, out);
            collect_cols(right, out);
        }
        ScalarExpr::And(v) | ScalarExpr::Or(v) => {
            for x in v {
                collect_cols(x, out);
            }
        }
        ScalarExpr::Not(b) | ScalarExpr::Neg(b) => collect_cols(b, out),
        ScalarExpr::IsNull { expr, .. } => collect_cols(expr, out),
    }
}

/// Rewrites an expression's column offsets from the flat row to
/// relation-local offsets; `None` when it references anything outside
/// `[start, end)`.
fn remap_to_local(e: &ScalarExpr, start: usize, end: usize) -> Option<ScalarExpr> {
    Some(match e {
        ScalarExpr::Col(i) => {
            if *i < start || *i >= end {
                return None;
            }
            ScalarExpr::Col(*i - start)
        }
        ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
        ScalarExpr::AccessParam(p) => ScalarExpr::AccessParam(p.clone()),
        ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
            op: *op,
            left: Box::new(remap_to_local(left, start, end)?),
            right: Box::new(remap_to_local(right, start, end)?),
        },
        ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
            op: *op,
            left: Box::new(remap_to_local(left, start, end)?),
            right: Box::new(remap_to_local(right, start, end)?),
        },
        ScalarExpr::And(v) => ScalarExpr::And(
            v.iter()
                .map(|x| remap_to_local(x, start, end))
                .collect::<Option<Vec<_>>>()?,
        ),
        ScalarExpr::Or(v) => ScalarExpr::Or(
            v.iter()
                .map(|x| remap_to_local(x, start, end))
                .collect::<Option<Vec<_>>>()?,
        ),
        ScalarExpr::Not(b) => ScalarExpr::Not(Box::new(remap_to_local(b, start, end)?)),
        ScalarExpr::Neg(b) => ScalarExpr::Neg(Box::new(remap_to_local(b, start, end)?)),
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(remap_to_local(expr, start, end)?),
            negated: *negated,
        },
    })
}

/// Mask of a relation's primary-key columns; `None` when the table has
/// no declared key (rows cannot be re-identified for a join).
fn pk_mask(catalog: &Catalog, rel: &Ident) -> Option<u128> {
    let table = catalog.table(rel)?;
    let pk = table.primary_key.as_ref()?;
    let mut mask = 0u128;
    for c in pk {
        let idx = table.schema.index_of(c)?;
        if idx >= MAX_FLOW_COLS {
            return Some(u128::MAX);
        }
        mask |= 1u128 << idx;
    }
    Some(mask)
}

/// Summarizes one SPJ block into per-relation disclosures.
fn summarize_block(catalog: &Catalog, block: &SpjBlock) -> Vec<RelDisclosure> {
    // How many times each relation is scanned (self-joins lose their
    // local row scope; see `RelDisclosure::local_conjuncts`).
    let mut scan_count: BTreeMap<&Ident, usize> = BTreeMap::new();
    for (t, _) in &block.scans {
        *scan_count.entry(t).or_insert(0) += 1;
    }
    let mut rels: BTreeMap<Ident, RelDisclosure> = BTreeMap::new();
    for (idx, (t, schema)) in block.scans.iter().enumerate() {
        let (start, end) = block.scan_range(idx);
        let width = schema.len();
        let saturated = width > MAX_FLOW_COLS;
        let mut projected = 0u128;
        let mut predicate = 0u128;
        let touch = |mask: &mut u128, col: usize| {
            if col >= start && col < end {
                if saturated {
                    *mask = u128::MAX;
                } else {
                    *mask |= 1u128 << (col - start);
                }
            }
        };
        for e in &block.projection {
            collect_cols(e, &mut |c| touch(&mut projected, c));
        }
        for e in &block.conjuncts {
            collect_cols(e, &mut |c| touch(&mut predicate, c));
        }
        let local_conjuncts = if scan_count[t] > 1 {
            Vec::new()
        } else {
            block
                .conjuncts
                .iter()
                .filter_map(|c| remap_to_local(c, start, end))
                .collect()
        };
        let pk_exposed = match pk_mask(catalog, t) {
            Some(pk) => pk != 0 && projected & pk == pk,
            None => false,
        };
        let entry = rels.entry(t.clone()).or_insert_with(|| RelDisclosure {
            relation: t.clone(),
            projected: 0,
            predicate: 0,
            pk_exposed: false,
            width,
            local_conjuncts,
        });
        entry.projected |= projected;
        entry.predicate |= predicate;
        entry.pk_exposed |= pk_exposed;
    }
    rels.into_values().collect()
}

/// Binds and summarizes one view. Non-SPJ but bindable bodies
/// (aggregates, unions) over-approximate to the full width of every
/// FROM-list relation, with primary keys treated as exposed — the
/// sound direction for a disclosure bound.
pub fn summarize_view(catalog: &Catalog, name: &Ident) -> ViewFlowSummary {
    let info = inspect_view(catalog, name);
    if !info.exists || !info.authorization || info.bind_error.is_some() {
        return ViewFlowSummary::unusable();
    }
    if let Some(block) = &info.block {
        let rels = summarize_block(catalog, block);
        return ViewFlowSummary {
            usable: true,
            multi_relation: rels.len() >= 2,
            rels,
        };
    }
    // Bindable but non-SPJ: fall back to the FROM list at full width.
    let mut rels: BTreeMap<Ident, RelDisclosure> = BTreeMap::new();
    if let Some(q) = &info.query {
        for tr in &q.from {
            let Some(table) = catalog.table(&tr.name) else {
                continue;
            };
            let width = table.schema.len();
            rels.entry(tr.name.clone()).or_insert_with(|| RelDisclosure {
                relation: tr.name.clone(),
                projected: full_mask(width),
                predicate: full_mask(width),
                pk_exposed: table.primary_key.is_some(),
                width,
                local_conjuncts: Vec::new(),
            });
            for j in &tr.joins {
                if let Some(jt) = catalog.table(&j.table) {
                    let w = jt.schema.len();
                    rels.entry(j.table.clone()).or_insert_with(|| RelDisclosure {
                        relation: j.table.clone(),
                        projected: full_mask(w),
                        predicate: full_mask(w),
                        pk_exposed: jt.primary_key.is_some(),
                        width: w,
                        local_conjuncts: Vec::new(),
                    });
                }
            }
        }
    }
    let rels: Vec<RelDisclosure> = rels.into_values().collect();
    ViewFlowSummary {
        usable: true,
        multi_relation: rels.len() >= 2,
        rels,
    }
}

/// One principal's disclosure lattice plus the findings derived on it.
#[derive(Debug, Clone)]
pub struct PrincipalFlow {
    pub principal: String,
    /// relation → columns readable through some single granted view.
    pub direct: BTreeMap<Ident, u128>,
    /// relation → columns reachable after closing over visible
    /// dependency chains; always a superset of `direct`.
    pub closed: BTreeMap<Ident, u128>,
    pub findings: Vec<Diagnostic>,
}

/// Memoized per-view summaries. Summaries are a pure function of the
/// catalog, so a context stays valid across grant/revoke churn and must
/// be discarded only when the catalog itself changes (DDL).
#[derive(Debug, Default)]
pub struct FlowContext {
    summaries: BTreeMap<Ident, Arc<ViewFlowSummary>>,
}

impl FlowContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every memoized summary (the catalog changed).
    pub fn clear(&mut self) {
        self.summaries.clear();
    }

    /// Number of memoized view summaries.
    pub fn summary_count(&self) -> usize {
        self.summaries.len()
    }

    fn summary(&mut self, catalog: &Catalog, name: &Ident) -> Arc<ViewFlowSummary> {
        if let Some(s) = self.summaries.get(name) {
            return s.clone();
        }
        let s = Arc::new(summarize_view(catalog, name));
        self.summaries.insert(name.clone(), s.clone());
        s
    }

    /// Computes one principal's disclosure lattice and flow findings.
    ///
    /// `analyzed` is the set of principals the surrounding run covers:
    /// a finding derivable purely from one analyzed role's own grants
    /// is reported on the role's pass and skipped for its members, so
    /// whole-set reports are not duplicated per member (the same
    /// discipline as the policy lints).
    ///
    /// Each call runs under a fresh budget from `opts` so a cached
    /// per-principal result never depends on which other principals
    /// were analyzed before it.
    pub fn principal_flow(
        &mut self,
        set: &PolicySet,
        principal: &str,
        analyzed: &BTreeSet<String>,
        opts: &AnalyzeOptions,
    ) -> PrincipalFlow {
        let effective = effective_views(set, principal);
        let mut prover = Prover {
            meter: opts.budget.start(),
            exhausted: false,
        };

        // Usable views with their grant source, in name order.
        let mut views: Vec<(Ident, String, Arc<ViewFlowSummary>)> = Vec::new();
        for (v, source) in &effective {
            let s = self.summary(set.catalog, v);
            if s.usable {
                views.push((v.clone(), source.clone(), s));
            }
        }

        // Direct lattice: per-relation union of projected masks.
        let mut direct: BTreeMap<Ident, u128> = BTreeMap::new();
        for (_, _, s) in &views {
            for r in &s.rels {
                *direct.entry(r.relation.clone()).or_insert(0) |= r.projected;
            }
        }

        let mut findings = Vec::new();
        let mut closed = direct.clone();
        self.close_over_dependencies(
            set,
            principal,
            analyzed,
            &views,
            &mut closed,
            &mut findings,
        );
        self.widening_findings(set, principal, analyzed, &views, &mut prover, &mut findings);
        self.probe_findings(principal, analyzed, &views, &closed, &mut findings);

        findings.sort_by(|a, b| {
            (a.severity, a.code, &a.principal, &a.object).cmp(&(
                b.severity,
                b.code,
                &b.principal,
                &b.object,
            ))
        });
        PrincipalFlow {
            principal: principal.to_string(),
            direct,
            closed,
            findings,
        }
    }

    /// F002 + the dependency closure: a visible inclusion dependency
    /// whose source projection is fully disclosed lets the destination
    /// cells be inferred (every disclosed source tuple's key values
    /// provably appear there). Chained dependencies compose — the loop
    /// runs to a fixpoint, so the lattice is transitively closed.
    fn close_over_dependencies(
        &mut self,
        set: &PolicySet,
        principal: &str,
        analyzed: &BTreeSet<String>,
        views: &[(Ident, String, Arc<ViewFlowSummary>)],
        closed: &mut BTreeMap<Ident, u128>,
        findings: &mut Vec<Diagnostic>,
    ) {
        let visible = effective_constraints(set, principal);
        if visible.is_empty() {
            return;
        }
        let mut deps: Vec<(Ident, String, InclusionDependency)> = Vec::new();
        for (c, source) in &visible {
            for fk in set.catalog.foreign_keys() {
                if &fk.name == c {
                    deps.push((c.clone(), source.clone(), fk.as_inclusion()));
                }
            }
            for d in set.catalog.inclusion_dependencies() {
                if &d.name == c {
                    deps.push((c.clone(), source.clone(), d.clone()));
                }
            }
        }
        let col_set_mask = |rel: &Ident, cols: &[Ident]| -> Option<u128> {
            let table = set.catalog.table(rel)?;
            let mut mask = 0u128;
            for c in cols {
                let idx = table.schema.index_of(c)?;
                if idx >= MAX_FLOW_COLS {
                    return Some(u128::MAX);
                }
                mask |= 1u128 << idx;
            }
            Some(mask)
        };
        let mut reported: BTreeSet<Ident> = BTreeSet::new();
        loop {
            let mut changed = false;
            for (cname, csource, dep) in &deps {
                let (Some(src_mask), Some(dst_mask)) = (
                    col_set_mask(&dep.src_table, &dep.src_columns),
                    col_set_mask(&dep.dst_table, &dep.dst_columns),
                ) else {
                    continue;
                };
                if src_mask == 0
                    || closed.get(&dep.src_table).copied().unwrap_or(0) & src_mask != src_mask
                {
                    continue;
                }
                let have = closed.get(&dep.dst_table).copied().unwrap_or(0);
                let new_bits = dst_mask & !have;
                if new_bits == 0 {
                    continue;
                }
                *closed.entry(dep.dst_table.clone()).or_insert(0) |= dst_mask;
                changed = true;
                if !reported.insert(cname.clone()) {
                    continue;
                }
                // Report on the grant entry's own pass when the whole
                // channel (constraint + source disclosure) is the
                // role's; a member-only source disclosure is the
                // member's finding.
                if csource != principal && analyzed.contains(csource) {
                    let role_src: u128 = views
                        .iter()
                        .filter(|(_, s, _)| s == csource)
                        .flat_map(|(_, _, summary)| summary.rels.iter())
                        .filter(|r| r.relation == dep.src_table)
                        .map(|r| r.projected)
                        .fold(0, |a, m| a | m);
                    if role_src & src_mask == src_mask {
                        continue;
                    }
                }
                findings.push(Diagnostic::new(
                    Code::ConstraintInferenceChannel,
                    principal,
                    cname.as_str(),
                    format!(
                        "constraint visibility over `{cname}` lets values of `{}` ({}) be \
                         inferred from the disclosed `{}` ({}): every disclosed source tuple \
                         provably appears there, although no granted view reads `{}`'s \
                         column(s) {}",
                        dep.dst_table,
                        ident_list(&dep.dst_columns),
                        dep.src_table,
                        ident_list(&dep.src_columns),
                        dep.dst_table,
                        mask_names(set.catalog, &dep.dst_table, new_bits),
                    ),
                ));
            }
            if !changed {
                break;
            }
        }
    }

    /// F001: per relation, the union of key-exposing view projections
    /// against the best single grant. Two views that both project the
    /// relation's primary key can be joined back together row by row,
    /// so their column sets combine; if the combined set is not covered
    /// by any single grant, composition widened the disclosure.
    fn widening_findings(
        &mut self,
        set: &PolicySet,
        principal: &str,
        analyzed: &BTreeSet<String>,
        views: &[(Ident, String, Arc<ViewFlowSummary>)],
        prover: &mut Prover,
        findings: &mut Vec<Diagnostic>,
    ) {
        // Per relation: (view, source, disclosure).
        let mut by_rel: BTreeMap<&Ident, Vec<(&Ident, &String, &RelDisclosure)>> = BTreeMap::new();
        for (v, source, s) in views {
            for r in &s.rels {
                by_rel.entry(&r.relation).or_default().push((v, source, r));
            }
        }
        for (rel, entries) in by_rel {
            let keyed: Vec<_> = entries.iter().filter(|(_, _, r)| r.pk_exposed).collect();
            if keyed.len() < 2 {
                continue;
            }
            let union: u128 = keyed.iter().map(|(_, _, r)| r.projected).fold(0, |a, m| a | m);
            // Covered by a single grant (any grant, keyed or not)?
            if entries.iter().any(|(_, _, r)| union & !r.projected == 0) {
                continue;
            }
            // Role dedup: when every key-exposing entry comes from one
            // analyzed role, the widening is the role's finding.
            let sources: BTreeSet<&String> = keyed.iter().map(|(_, s, _)| *s).collect();
            if sources.len() == 1 {
                let s = *sources.iter().next().expect("non-empty");
                if s != principal && analyzed.contains(s.as_str()) {
                    continue;
                }
            }
            // Name a concrete widening pair: the widest entry plus the
            // first (in name order) contributing columns beyond it.
            let a = keyed
                .iter()
                .max_by_key(|(v, _, r)| (r.projected.count_ones(), std::cmp::Reverse(*v)))
                .expect("len >= 2");
            let Some(b) = keyed.iter().find(|(_, _, r)| r.projected & !a.2.projected != 0) else {
                continue;
            };
            let widened = (a.2.projected | b.2.projected) & !single_best(&entries, a.2, b.2);
            // Row-scope refinement: the pair only recombines rows both
            // views return. Provably disjoint scopes are skipped;
            // exhaustion degrades to Unknown (fail-open, never silent).
            let width = a.2.width.min(MAX_FLOW_COLS);
            let mut combined = a.2.local_conjuncts.clone();
            combined.extend(b.2.local_conjuncts.iter().cloned());
            let verdict = if combined.is_empty() {
                Some(false)
            } else {
                prover.implies(&combined, &[ScalarExpr::lit(false)], width)
            };
            let message = format!(
                "joining `{}` and `{}` back on the exposed key of `{rel}` reveals the column \
                 combination {} of `{rel}`, which no single grant to this principal exposes",
                a.0,
                b.0,
                mask_names(set.catalog, rel, a.2.projected | b.2.projected),
            );
            match verdict {
                Some(true) => {} // provably disjoint row scopes
                Some(false) => {
                    let _ = widened;
                    findings.push(Diagnostic::new(
                        Code::TransitiveDisclosureWidening,
                        principal,
                        rel.as_str(),
                        message,
                    ));
                }
                None => findings.push(Diagnostic::unknown(
                    Code::TransitiveDisclosureWidening,
                    principal,
                    rel.as_str(),
                    format!("{message} (row-scope check exhausted its budget; result unknown)"),
                )),
            }
        }
    }

    /// F003: the static bits-per-probe bound on the Section 5.4
    /// channel. A conditionally-valid view's remainder probe evaluates
    /// its predicate server-side; when that predicate reads columns the
    /// principal cannot otherwise see, each probe's one-bit outcome
    /// (remainder empty / non-empty) leaks up to one bit about those
    /// cells. Relations with no other covering view are skipped: the
    /// engine fails closed on those probes (`P005`), so the channel
    /// never opens.
    fn probe_findings(
        &mut self,
        principal: &str,
        analyzed: &BTreeSet<String>,
        views: &[(Ident, String, Arc<ViewFlowSummary>)],
        closed: &BTreeMap<Ident, u128>,
        findings: &mut Vec<Diagnostic>,
    ) {
        for (v, source, s) in views {
            if !s.multi_relation {
                continue;
            }
            if source != principal && analyzed.contains(source.as_str()) {
                continue;
            }
            for r in &s.rels {
                let undisclosed = r.predicate & !closed.get(&r.relation).copied().unwrap_or(0);
                if undisclosed == 0 {
                    continue;
                }
                let covered_elsewhere = views.iter().any(|(other, _, os)| {
                    other != v && os.rels.iter().any(|or| or.relation == r.relation)
                });
                if !covered_elsewhere {
                    continue; // P005 territory: the probe fails closed.
                }
                findings.push(Diagnostic::new(
                    Code::ProbeChannelExposure,
                    principal,
                    v.as_str(),
                    format!(
                        "conditionally-valid view: each C3 remainder probe evaluates a \
                         predicate over column(s) {} of `{}`, which no grant to this \
                         principal discloses; every probe outcome (Section 5.4) leaks up to \
                         1 bit about those cells — k probing queries leak up to k bits",
                        column_names(r, undisclosed),
                        r.relation,
                    ),
                ));
            }
        }
    }
}

/// The widest single-grant coverage among `entries` for the pair's
/// combined mask (used only to keep the reported delta tight).
fn single_best(
    entries: &[(&Ident, &String, &RelDisclosure)],
    a: &RelDisclosure,
    b: &RelDisclosure,
) -> u128 {
    let target = a.projected | b.projected;
    entries
        .iter()
        .map(|(_, _, r)| r.projected & target)
        .max_by_key(|m| m.count_ones())
        .unwrap_or(0)
}

fn ident_list(cols: &[Ident]) -> String {
    let names: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
    names.join(", ")
}

/// Renders a column mask as schema column names.
fn mask_names(catalog: &Catalog, rel: &Ident, mask: u128) -> String {
    let Some(table) = catalog.table(rel) else {
        return format!("{mask:#x}");
    };
    let mut names = Vec::new();
    for (i, col) in table.schema.columns().iter().enumerate() {
        if i < MAX_FLOW_COLS && mask & (1u128 << i) != 0 {
            names.push(col.name.as_str().to_string());
        }
    }
    if table.schema.len() > MAX_FLOW_COLS && mask == u128::MAX {
        return "(all columns)".to_string();
    }
    names.join(", ")
}

fn column_names(r: &RelDisclosure, mask: u128) -> String {
    // Without the catalog at hand, fall back to offsets; callers that
    // have the catalog use `mask_names`.
    let mut names = Vec::new();
    for i in 0..r.width.min(MAX_FLOW_COLS) {
        if mask & (1u128 << i) != 0 {
            names.push(format!("#{i}"));
        }
    }
    names.join(", ")
}

/// Runs the flow analysis over the policy set. `principal` restricts
/// the pass to one principal's effective grants; `None` analyzes every
/// principal mentioned in the grant/role/revocation tables.
pub fn analyze_flow_set(
    set: &PolicySet,
    principal: Option<&str>,
    opts: &AnalyzeOptions,
) -> Vec<Diagnostic> {
    let mut ctx = FlowContext::new();
    let principals = flow_principals(set, principal);
    let mut diags = Vec::new();
    for p in &principals {
        diags.extend(ctx.principal_flow(set, p, &principals, opts).findings);
    }
    sort_diags(&mut diags);
    diags
}

/// The principal set a flow run covers.
pub fn flow_principals(set: &PolicySet, principal: Option<&str>) -> BTreeSet<String> {
    let mut principals: BTreeSet<String> = BTreeSet::new();
    match principal {
        Some(p) => {
            principals.insert(p.to_string());
        }
        None => {
            principals.extend(set.view_grants.keys().cloned());
            principals.extend(set.constraint_grants.keys().cloned());
            principals.extend(set.role_memberships.keys().cloned());
            principals.extend(set.revocations.keys().cloned());
        }
    }
    principals
}

/// The analyzer's canonical report order: severity, code, principal,
/// object (exposed so callers merging cached per-principal results can
/// reproduce it).
pub fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.severity, a.code, &a.principal, &a.object).cmp(&(
            b.severity,
            b.code,
            &b.principal,
            &b.object,
        ))
    });
}

/// A grant under consideration: "what would this disclose?"
#[derive(Debug, Clone, PartialEq)]
pub struct ProposedGrant {
    pub kind: fgac_sql::GrantKind,
    pub object: Ident,
    pub principal: String,
}

/// F004: the flow delta of a proposed grant against the current
/// lattice. For every principal whose effective set the grant would
/// change, reports (a) the newly reachable (relation, column) cells and
/// (b) every flow finding the grant would introduce — the latter at the
/// introduced finding's own severity, so a leak-introducing grant fails
/// a gated run before it is committed.
pub fn flow_diff_grant(
    set: &PolicySet,
    grant: &ProposedGrant,
    opts: &AnalyzeOptions,
) -> Vec<Diagnostic> {
    use fgac_sql::GrantKind;
    let mut view_grants = set.view_grants.clone();
    let mut constraint_grants = set.constraint_grants.clone();
    let mut role_memberships = set.role_memberships.clone();
    match grant.kind {
        GrantKind::View => {
            view_grants
                .entry(grant.principal.clone())
                .or_default()
                .insert(grant.object.clone());
        }
        GrantKind::Constraint => {
            constraint_grants
                .entry(grant.principal.clone())
                .or_default()
                .insert(grant.object.clone());
        }
        GrantKind::Role => {
            role_memberships
                .entry(grant.principal.clone())
                .or_default()
                .insert(grant.object.as_str().to_string());
        }
    }
    let after = PolicySet {
        catalog: set.catalog,
        view_grants: &view_grants,
        constraint_grants: &constraint_grants,
        role_memberships: &role_memberships,
        revocations: set.revocations,
    };

    // Affected principals: the grantee, plus — when the grantee is a
    // role — every member inheriting from it.
    let mut affected: BTreeSet<String> = BTreeSet::new();
    affected.insert(grant.principal.clone());
    for (user, roles) in set.role_memberships {
        if roles.contains(&grant.principal) {
            affected.insert(user.clone());
        }
    }

    let kind_word = match grant.kind {
        GrantKind::View => "view",
        GrantKind::Constraint => "constraint",
        GrantKind::Role => "role",
    };
    let mut ctx = FlowContext::new();
    let mut out = Vec::new();
    for p in &affected {
        // Diff per principal in isolation: every finding is attributed
        // to the principal it concerns, role dedup does not apply.
        let alone: BTreeSet<String> = std::iter::once(p.clone()).collect();
        let before = ctx.principal_flow(set, p, &alone, opts);
        let after_flow = ctx.principal_flow(&after, p, &alone, opts);

        for (rel, mask_after) in &after_flow.closed {
            let mask_before = before.closed.get(rel).copied().unwrap_or(0);
            let new_bits = mask_after & !mask_before;
            if new_bits != 0 {
                out.push(Diagnostic::new(
                    Code::GrantFlowDiff,
                    p.as_str(),
                    grant.object.as_str(),
                    format!(
                        "granting {kind_word} `{}` to '{p}' newly discloses column(s) {} of \
                         `{rel}`",
                        grant.object,
                        mask_names(set.catalog, rel, new_bits),
                    ),
                ));
            }
        }
        let known: BTreeSet<(Code, String, String)> = before
            .findings
            .iter()
            .map(|d| (d.code, d.object.clone(), d.message.clone()))
            .collect();
        for f in after_flow.findings {
            if known.contains(&(f.code, f.object.clone(), f.message.clone())) {
                continue;
            }
            out.push(Diagnostic {
                code: Code::GrantFlowDiff,
                severity: f.severity,
                principal: p.clone(),
                object: f.object,
                message: format!(
                    "granting {kind_word} `{}` to '{p}' introduces {} ({}): {}",
                    grant.object,
                    f.code,
                    f.code.name(),
                    f.message
                ),
            });
        }
    }
    sort_diags(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_sql::{parse_query, GrantKind};
    use fgac_storage::ViewDef;
    use fgac_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "patients",
            Schema::new(vec![
                Column::new("id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("diagnosis", DataType::Str),
                Column::new("ward", DataType::Int),
            ]),
            Some(vec!["id".into()]),
        )
        .unwrap();
        c.add_table(
            "billing",
            Schema::new(vec![
                Column::new("patient_id", DataType::Str),
                Column::new("amount", DataType::Int),
            ]),
            Some(vec!["patient_id".into()]),
        )
        .unwrap();
        c
    }

    fn add_view(c: &mut Catalog, name: &str, sql: &str) {
        c.add_view(ViewDef {
            name: name.into(),
            authorization: true,
            query: parse_query(sql).unwrap(),
        })
        .unwrap();
    }

    fn grants(pairs: &[(&str, &str)]) -> BTreeMap<String, BTreeSet<Ident>> {
        let mut m: BTreeMap<String, BTreeSet<Ident>> = BTreeMap::new();
        for (p, v) in pairs {
            m.entry(p.to_string()).or_default().insert((*v).into());
        }
        m
    }

    fn run(
        catalog: &Catalog,
        views: &BTreeMap<String, BTreeSet<Ident>>,
        constraints: &BTreeMap<String, BTreeSet<Ident>>,
    ) -> Vec<Diagnostic> {
        let empty_roles = BTreeMap::new();
        let empty_rev = BTreeMap::new();
        let set = PolicySet {
            catalog,
            view_grants: views,
            constraint_grants: constraints,
            role_memberships: &empty_roles,
            revocations: &empty_rev,
        };
        analyze_flow_set(&set, None, &AnalyzeOptions::default())
    }

    #[test]
    fn key_joinable_projections_widen_disclosure() {
        let mut c = catalog();
        add_view(&mut c, "v_names", "select id, name from patients");
        add_view(&mut c, "v_diag", "select id, diagnosis from patients");
        let views = grants(&[("u", "v_names"), ("u", "v_diag")]);
        let diags = run(&c, &views, &BTreeMap::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::TransitiveDisclosureWidening);
        assert_eq!(diags[0].principal, "u");
        assert_eq!(diags[0].object, "patients");
    }

    #[test]
    fn disjoint_row_scopes_do_not_widen() {
        let mut c = catalog();
        add_view(&mut c, "v_low", "select id, name from patients where ward < 3");
        add_view(
            &mut c,
            "v_high",
            "select id, diagnosis from patients where ward > 7",
        );
        let views = grants(&[("u", "v_low"), ("u", "v_high")]);
        let diags = run(&c, &views, &BTreeMap::new());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn single_grant_covering_the_union_is_clean() {
        let mut c = catalog();
        add_view(&mut c, "v_names", "select id, name from patients");
        add_view(&mut c, "v_diag", "select id, diagnosis from patients");
        add_view(&mut c, "v_all", "select * from patients");
        let views = grants(&[("u", "v_names"), ("u", "v_diag"), ("u", "v_all")]);
        let diags = run(&c, &views, &BTreeMap::new());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn keyless_projections_do_not_widen() {
        let mut c = catalog();
        add_view(&mut c, "v_names", "select name from patients");
        add_view(&mut c, "v_diag", "select diagnosis from patients");
        let views = grants(&[("u", "v_names"), ("u", "v_diag")]);
        let diags = run(&c, &views, &BTreeMap::new());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn visible_dependency_opens_inference_channel() {
        let mut c = catalog();
        c.add_inclusion_dependency(InclusionDependency {
            name: "billed_patients".into(),
            src_table: "billing".into(),
            src_columns: vec!["patient_id".into()],
            src_filter: None,
            dst_table: "patients".into(),
            dst_columns: vec!["id".into()],
            dst_filter: None,
        })
        .unwrap();
        add_view(&mut c, "v_billing", "select patient_id, amount from billing");
        let views = grants(&[("u", "v_billing")]);
        let mut constraints: BTreeMap<String, BTreeSet<Ident>> = BTreeMap::new();
        constraints
            .entry("u".to_string())
            .or_default()
            .insert("billed_patients".into());
        let diags = run(&c, &views, &constraints);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::ConstraintInferenceChannel);
        assert_eq!(diags[0].object, "billed_patients");

        // Without the constraint grant the channel is closed.
        let diags = run(&c, &views, &BTreeMap::new());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn probe_predicate_over_undisclosed_columns_is_flagged() {
        let mut c = catalog();
        add_view(
            &mut c,
            "v_joined",
            "select b.patient_id, b.amount from billing b, patients p \
             where b.patient_id = p.id and p.ward = 9",
        );
        add_view(&mut c, "v_names", "select id, name from patients");
        let views = grants(&[("u", "v_joined"), ("u", "v_names")]);
        let diags = run(&c, &views, &BTreeMap::new());
        let probe: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::ProbeChannelExposure)
            .collect();
        assert_eq!(probe.len(), 1, "{diags:?}");
        assert_eq!(probe[0].object, "v_joined");

        // Without another view over patients the probe fails closed
        // (P005 territory) and the flow pass stays quiet.
        let views = grants(&[("u", "v_joined")]);
        let diags = run(&c, &views, &BTreeMap::new());
        assert!(
            diags.iter().all(|d| d.code != Code::ProbeChannelExposure),
            "{diags:?}"
        );
    }

    #[test]
    fn diff_grant_reports_new_cells_and_introduced_findings() {
        let mut c = catalog();
        add_view(&mut c, "v_names", "select id, name from patients");
        add_view(&mut c, "v_diag", "select id, diagnosis from patients");
        let views = grants(&[("u", "v_names")]);
        let constraints = BTreeMap::new();
        let empty_roles = BTreeMap::new();
        let empty_rev = BTreeMap::new();
        let set = PolicySet {
            catalog: &c,
            view_grants: &views,
            constraint_grants: &constraints,
            role_memberships: &empty_roles,
            revocations: &empty_rev,
        };
        let diags = flow_diff_grant(
            &set,
            &ProposedGrant {
                kind: GrantKind::View,
                object: "v_diag".into(),
                principal: "u".to_string(),
            },
            &AnalyzeOptions::default(),
        );
        assert!(diags.iter().all(|d| d.code == Code::GrantFlowDiff));
        // The new cell (diagnosis) plus the F001 the grant introduces.
        assert!(
            diags.iter().any(|d| d.message.contains("newly discloses")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("introduces F001")),
            "{diags:?}"
        );
        // The introduced-widening row keeps F001's error severity so a
        // gated run fails before the grant is committed.
        assert!(
            diags
                .iter()
                .any(|d| d.severity == crate::diag::Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn role_sourced_findings_report_once_on_the_role() {
        let mut c = catalog();
        add_view(&mut c, "v_names", "select id, name from patients");
        add_view(&mut c, "v_diag", "select id, diagnosis from patients");
        let views = grants(&[("staff", "v_names"), ("staff", "v_diag")]);
        let constraints = BTreeMap::new();
        let mut roles: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        roles
            .entry("alice".to_string())
            .or_default()
            .insert("staff".to_string());
        let empty_rev = BTreeMap::new();
        let set = PolicySet {
            catalog: &c,
            view_grants: &views,
            constraint_grants: &constraints,
            role_memberships: &roles,
            revocations: &empty_rev,
        };
        let diags = analyze_flow_set(&set, None, &AnalyzeOptions::default());
        let f001: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::TransitiveDisclosureWidening)
            .collect();
        assert_eq!(f001.len(), 1, "{diags:?}");
        assert_eq!(f001[0].principal, "staff");

        // A single-principal run for the member still sees it.
        let diags = analyze_flow_set(&set, Some("alice"), &AnalyzeOptions::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].principal, "alice");
    }

    #[test]
    fn summaries_memoize_and_clear() {
        let mut c = catalog();
        add_view(&mut c, "v_names", "select id, name from patients");
        let mut ctx = FlowContext::new();
        let views = grants(&[("u", "v_names")]);
        let constraints = BTreeMap::new();
        let empty_roles = BTreeMap::new();
        let empty_rev = BTreeMap::new();
        let set = PolicySet {
            catalog: &c,
            view_grants: &views,
            constraint_grants: &constraints,
            role_memberships: &empty_roles,
            revocations: &empty_rev,
        };
        let analyzed: BTreeSet<String> = std::iter::once("u".to_string()).collect();
        ctx.principal_flow(&set, "u", &analyzed, &AnalyzeOptions::default());
        assert_eq!(ctx.summary_count(), 1);
        ctx.clear();
        assert_eq!(ctx.summary_count(), 0);
    }
}
