//! Resource governor for the validity-checking pipeline.
//!
//! A [`Budget`] is a declarative spec — a step allowance plus an
//! optional wall-clock deadline — carried by `CheckOptions`. At check
//! time it is turned into a [`BudgetMeter`], the runtime counter that
//! inference code charges as it works. Exhaustion surfaces as
//! [`Error::ResourceExhausted`] naming the phase that ran dry; the
//! engine maps that to a fail-closed DENY, never a wrong ALLOW
//! (rejection is always safe in the non-Truman model, Section 4).
//!
//! The meter uses interior mutability so it can be threaded through
//! `&self` call chains (the implication prover, DAG matcher, and
//! inference rounds all borrow immutably). It is intentionally not
//! `Sync`; a meter belongs to one check.

use std::cell::Cell;
use std::time::{Duration, Instant};

use crate::{Error, Result};

/// How often (in charges) the meter consults the wall clock when a
/// deadline is set. `Instant::now()` per charge would dominate the
/// very work being metered.
const CLOCK_CHECK_INTERVAL: u64 = 256;

/// Declarative resource allowance for one validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of inference steps (prover facts, matcher probes,
    /// expansion passes, composed restrictions) a check may spend.
    pub max_steps: u64,
    /// Optional wall-clock allowance for the whole check.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// Default step allowance. Generous: the paper's university workload
    /// needs well under 1% of this, so default budgets never change a
    /// verdict; the ceiling exists to bound adversarial inputs.
    pub const DEFAULT_MAX_STEPS: u64 = 5_000_000;

    /// A budget that never exhausts.
    pub fn unlimited() -> Self {
        Budget {
            max_steps: u64::MAX,
            deadline: None,
        }
    }

    /// A budget capped at `max_steps` inference steps.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Budget {
            max_steps,
            deadline: None,
        }
    }

    /// Adds a wall-clock deadline to the budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Starts the runtime meter for one check.
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            remaining: Cell::new(self.max_steps),
            spent: Cell::new(0),
            deadline: self.deadline.map(|d| Instant::now() + d),
            charges: Cell::new(0),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_steps: Self::DEFAULT_MAX_STEPS,
            deadline: None,
        }
    }
}

/// Runtime counter for one validity check. Obtained from
/// [`Budget::start`]; inference code calls [`charge`](Self::charge)
/// as it works and propagates the error on exhaustion.
#[derive(Debug)]
pub struct BudgetMeter {
    remaining: Cell<u64>,
    spent: Cell<u64>,
    deadline: Option<Instant>,
    charges: Cell<u64>,
}

impl BudgetMeter {
    /// A meter that never exhausts (back-compat paths and tests).
    pub fn unlimited() -> Self {
        Budget::unlimited().start()
    }

    /// Spends `steps` from the allowance on behalf of `phase`.
    ///
    /// Returns [`Error::ResourceExhausted`] naming the phase once the
    /// step allowance is gone or the deadline has passed. After the
    /// first failure every subsequent charge fails too, so callers
    /// deep in the pipeline cannot accidentally resume.
    pub fn charge(&self, phase: &str, steps: u64) -> Result<()> {
        let remaining = self.remaining.get();
        if remaining < steps {
            self.remaining.set(0);
            return Err(Error::ResourceExhausted(format!(
                "{phase}: step budget exhausted after {} steps",
                self.spent.get()
            )));
        }
        self.remaining.set(remaining - steps);
        self.spent.set(self.spent.get() + steps);
        if let Some(deadline) = self.deadline {
            let charges = self.charges.get().wrapping_add(1);
            self.charges.set(charges);
            if charges.is_multiple_of(CLOCK_CHECK_INTERVAL) && Instant::now() >= deadline {
                self.remaining.set(0);
                return Err(Error::ResourceExhausted(format!(
                    "{phase}: deadline exceeded after {} steps",
                    self.spent.get()
                )));
            }
        }
        Ok(())
    }

    /// Steps successfully charged so far.
    pub fn steps_used(&self) -> u64 {
        self.spent.get()
    }

    /// True once nothing is left to spend (a failed charge zeroes the
    /// allowance, so this is sticky after the first failure).
    pub fn is_exhausted(&self) -> bool {
        self.remaining.get() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_generous_and_unlimited_never_trips() {
        let meter = Budget::default().start();
        for _ in 0..10_000 {
            meter.charge("prover", 1).unwrap();
        }
        let unlimited = BudgetMeter::unlimited();
        unlimited.charge("prover", u64::MAX - 1).unwrap();
    }

    #[test]
    fn exhaustion_names_the_phase_and_sticks() {
        let meter = Budget::with_max_steps(10).start();
        meter.charge("rounds", 10).unwrap();
        let err = meter.charge("prover", 1).unwrap_err();
        match &err {
            Error::ResourceExhausted(m) => assert!(m.starts_with("prover:"), "{m}"),
            other => panic!("wrong error: {other:?}"),
        }
        // Sticky: once tripped, every later charge fails too.
        assert!(meter.charge("matcher", 1).is_err());
        assert_eq!(meter.steps_used(), 10);
        assert!(meter.is_exhausted());
    }

    #[test]
    fn deadline_trips_after_interval() {
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(0));
        let meter = budget.start();
        let mut tripped = false;
        for _ in 0..=super::CLOCK_CHECK_INTERVAL {
            if meter.charge("rounds", 1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "zero deadline never tripped");
    }
}
