//! Relation schemas.

use crate::{DataType, Ident};
use std::fmt;

/// A column definition: name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Column {
    pub name: Ident,
    pub ty: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<Ident>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// An ordered list of columns describing a relation's shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of the column with the given name, if present.
    pub fn index_of(&self, name: &Ident) -> Option<usize> {
        self.columns.iter().position(|c| &c.name == name)
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn contains(&self, name: &Ident) -> bool {
        self.index_of(name).is_some()
    }

    /// Concatenates two schemas (used for joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Projects the schema onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema {
            columns: indexes.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if c.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::new(vec![
            Column::new("student_id", DataType::Str),
            Column::new("course_id", DataType::Str),
            Column::new("grade", DataType::Int).nullable(),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let schema = s();
        assert_eq!(schema.index_of(&Ident::new("GRADE")), Some(2));
        assert_eq!(schema.index_of(&Ident::new("missing")), None);
    }

    #[test]
    fn concat_joins_schemas() {
        let a = s();
        let b = Schema::new(vec![Column::new("name", DataType::Str)]);
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.column(3).name, Ident::new("name"));
    }

    #[test]
    fn project_reorders() {
        let schema = s();
        let p = schema.project(&[2, 0]);
        assert_eq!(p.column(0).name, Ident::new("grade"));
        assert_eq!(p.column(1).name, Ident::new("student_id"));
    }

    #[test]
    fn display_renders() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        assert_eq!(schema.to_string(), "(a INTEGER)");
    }
}
