//! Case-insensitive SQL identifiers.

use std::fmt;

/// A SQL identifier, normalized to lowercase at construction.
///
/// SQL identifiers are case-insensitive; normalizing once keeps every
/// downstream comparison (catalog lookups, column resolution, DAG
/// signatures) a plain string comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Ident(String);

impl Ident {
    pub fn new(name: impl AsRef<str>) -> Self {
        Ident(name.as_ref().to_ascii_lowercase())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.0 == other.to_ascii_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(Ident::new("Students"), Ident::new("STUDENTS"));
        assert_eq!(Ident::new("grades").as_str(), "grades");
    }

    #[test]
    fn compares_against_str() {
        let id = Ident::new("Grades");
        assert!(id == *"GRADES");
        assert!(id == *"grades");
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Ident::new("MyGrades").to_string(), "mygrades");
    }
}
