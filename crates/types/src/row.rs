//! Tuples of values.

use crate::Value;
use std::fmt;

/// A tuple of values — one row of a relation.
///
/// `Row` derives `Eq`/`Ord`/`Hash` from [`Value`]'s total order, so rows
/// can be used directly as keys in grouping and duplicate elimination and
/// sorted to compare multisets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, serde::Serialize, serde::Deserialize)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Concatenates two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.0.len() + other.0.len());
        values.extend_from_slice(&self.0);
        values.extend_from_slice(&other.0);
        Row(values)
    }

    /// Projects onto the given indexes.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row(indexes.iter().map(|&i| self.0[i].clone()).collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

/// Compares two collections of rows as multisets (order-insensitive,
/// multiplicity-sensitive). This is the paper's notion of query
/// equivalence on a fixed state (Definition 4.1 footnote).
pub fn multiset_eq(a: &[Row], b: &[Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa: Vec<&Row> = a.iter().collect();
    let mut sb: Vec<&Row> = b.iter().collect();
    sa.sort();
    sb.sort();
    sa == sb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Row {
        Row(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn concat_and_project() {
        let a = r(&[1, 2]);
        let b = r(&[3]);
        let c = a.concat(&b);
        assert_eq!(c, r(&[1, 2, 3]));
        assert_eq!(c.project(&[2, 0]), r(&[3, 1]));
    }

    #[test]
    fn multiset_eq_respects_multiplicity() {
        assert!(multiset_eq(
            &[r(&[1]), r(&[2]), r(&[1])],
            &[r(&[2]), r(&[1]), r(&[1])]
        ));
        assert!(!multiset_eq(&[r(&[1]), r(&[1])], &[r(&[1]), r(&[2])]));
        assert!(!multiset_eq(&[r(&[1])], &[r(&[1]), r(&[1])]));
    }

    #[test]
    fn display_renders() {
        let row = Row(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(row.to_string(), "(1, 'x')");
    }
}
