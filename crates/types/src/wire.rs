//! Minimal binary (de)serialization for durable storage.
//!
//! The write-ahead log and snapshot files (`fgac-wal`) need a stable,
//! dependency-free byte encoding for the foundation types. The format is
//! deliberately simple: fixed-width little-endian integers, length-
//! prefixed strings, and one tag byte per enum variant. It is *not* a
//! general interchange format — both ends are this workspace — but every
//! decoder is total: malformed input yields [`Error::Corrupt`], never a
//! panic, because recovery code runs on whatever bytes survived a crash.

use crate::{Column, DataType, Error, Ident, Result, Row, Schema, Value};

/// Types that can append their encoding to a byte buffer.
pub trait WireEncode {
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can be decoded from a [`Reader`]. Decoders must consume
/// exactly the bytes their encoder produced.
pub trait WireDecode: Sized {
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

/// A bounds-checked cursor over an encoded buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn corrupt(what: &str) -> Error {
        Error::Corrupt(format!("wire decode: truncated {what}"))
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::corrupt("bytes"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A `u64` length field validated against the bytes actually
    /// available, so a corrupt length cannot trigger a huge allocation.
    pub fn len_prefix(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(Error::Corrupt(format!(
                "wire decode: length {n} exceeds remaining {}",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Fails unless every byte has been consumed — trailing garbage in a
    /// checksummed record means the encoder and decoder disagree.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::Corrupt(format!(
                "wire decode: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl WireEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.u64()
    }
}

impl WireEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self as u64);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| Error::Corrupt(format!("wire decode: index {v} overflows")))
    }
}

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::Corrupt(format!("wire decode: bool byte {b}"))),
        }
    }
}

impl WireEncode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl WireDecode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.len_prefix()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("wire decode: invalid utf-8 string".into()))
    }
}

impl WireEncode for Ident {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl WireDecode for Ident {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Ident::new(String::decode(r)?))
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.u64()?;
        // Every element costs at least one byte, so a corrupt count can
        // be rejected before allocating.
        if n > r.remaining() as u64 {
            return Err(Error::Corrupt(format!(
                "wire decode: element count {n} exceeds remaining bytes"
            )));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(Error::Corrupt(format!("wire decode: option byte {b}"))),
        }
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl WireEncode for DataType {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Double => 2,
            DataType::Str => 3,
        });
    }
}

impl WireDecode for DataType {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(DataType::Bool),
            1 => Ok(DataType::Int),
            2 => Ok(DataType::Double),
            3 => Ok(DataType::Str),
            b => Err(Error::Corrupt(format!("wire decode: data type tag {b}"))),
        }
    }
}

impl WireEncode for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                b.encode(out);
            }
            Value::Int(i) => {
                out.push(2);
                put_u64(out, *i as u64);
            }
            Value::Double(d) => {
                out.push(3);
                put_u64(out, d.to_bits());
            }
            Value::Str(s) => {
                out.push(4);
                s.encode(out);
            }
        }
    }
}

impl WireDecode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(bool::decode(r)?)),
            2 => Ok(Value::Int(r.u64()? as i64)),
            3 => Ok(Value::Double(f64::from_bits(r.u64()?))),
            4 => Ok(Value::Str(String::decode(r)?)),
            b => Err(Error::Corrupt(format!("wire decode: value tag {b}"))),
        }
    }
}

impl WireEncode for Row {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for Row {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Row(Vec::<Value>::decode(r)?))
    }
}

impl WireEncode for Column {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.ty.encode(out);
        self.nullable.encode(out);
    }
}

impl WireDecode for Column {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let name = Ident::decode(r)?;
        let ty = DataType::decode(r)?;
        let nullable = bool::decode(r)?;
        let mut col = Column::new(name, ty);
        if nullable {
            col = col.nullable();
        }
        Ok(col)
    }
}

impl WireEncode for Schema {
    fn encode(&self, out: &mut Vec<u8>) {
        self.columns().to_vec().encode(out);
    }
}

impl WireDecode for Schema {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Schema::new(Vec::<Column>::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(String::from("héllo 'quoted'"));
        roundtrip(Ident::new("MiXeD"));
        roundtrip(Option::<String>::None);
        roundtrip(Some(Ident::new("x")));
    }

    #[test]
    fn values_and_rows_roundtrip() {
        roundtrip(Value::Null);
        roundtrip(Value::Int(-42));
        roundtrip(Value::Double(f64::NAN)); // total_cmp equality
        roundtrip(Value::Str(String::new()));
        roundtrip(Row(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(7),
            Value::Double(2.5),
            Value::Str("s".into()),
        ]));
        roundtrip(vec![Row(vec![Value::Int(1)]), Row(vec![])]);
    }

    #[test]
    fn schema_roundtrips() {
        roundtrip(Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str).nullable(),
        ]));
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let bytes = Value::Str("hello".into()).to_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(matches!(Value::decode(&mut r), Err(Error::Corrupt(_))));
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_u64(&mut bytes, u64::MAX); // element count
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Vec::<Row>::decode(&mut r),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = Value::Int(1).to_bytes();
        bytes.push(0xAB);
        let mut r = Reader::new(&bytes);
        Value::decode(&mut r).unwrap();
        assert!(r.expect_end().is_err());
    }
}
