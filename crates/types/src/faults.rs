//! Test-only fault injection (compiled under `feature = "fault-injection"`).
//!
//! Instrumented sites in the storage and execution layers call
//! [`hit`] with a stable site name; tests arm a site with [`arm`] to
//! make its Nth hit return an error or panic. The registry is
//! thread-local so concurrently running tests cannot trip each other's
//! faults. With nothing armed, `hit` is a counter increment and the
//! instrumented code behaves exactly as in a normal build.

use crate::{Error, Result};
use std::cell::RefCell;
use std::collections::HashMap;

/// What an armed site does when its trigger count is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Return `Error::Internal` on the Nth hit (1-based).
    ErrorOnNth(u64),
    /// Panic on the Nth hit (1-based) — exercises unwind isolation.
    PanicOnNth(u64),
}

thread_local! {
    static ARMED: RefCell<HashMap<&'static str, (Fault, u64)>> =
        RefCell::new(HashMap::new());
}

/// Arms `site` with `fault`, resetting its hit counter.
pub fn arm(site: &'static str, fault: Fault) {
    ARMED.with(|m| {
        m.borrow_mut().insert(site, (fault, 0));
    });
}

/// Disarms every site and clears all hit counters.
pub fn disarm_all() {
    ARMED.with(|m| m.borrow_mut().clear());
}

/// Number of times `site` has been hit since it was armed.
pub fn hits(site: &str) -> u64 {
    ARMED.with(|m| m.borrow().get(site).map_or(0, |(_, n)| *n))
}

/// Called by instrumented code. Counts the hit and fires the armed
/// fault when the trigger count is reached.
pub fn hit(site: &str) -> Result<()> {
    let fire = ARMED.with(|m| {
        let mut m = m.borrow_mut();
        let (fault, count) = m.get_mut(site)?;
        *count += 1;
        let n = *count;
        match *fault {
            Fault::ErrorOnNth(target) if n == target => Some((false, n)),
            Fault::PanicOnNth(target) if n == target => Some((true, n)),
            _ => None,
        }
    });
    match fire {
        None => Ok(()),
        Some((false, n)) => Err(Error::Internal(format!(
            "injected fault at {site} (hit {n})"
        ))),
        Some((true, n)) => panic!("injected panic at {site} (hit {n})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_is_a_no_op() {
        disarm_all();
        assert!(hit("nowhere").is_ok());
        assert_eq!(hits("nowhere"), 0);
    }

    #[test]
    fn error_fires_on_nth_hit_only() {
        disarm_all();
        arm("site", Fault::ErrorOnNth(2));
        assert!(hit("site").is_ok());
        let err = hit("site").unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
        // After firing, later hits pass again (one-shot trigger).
        assert!(hit("site").is_ok());
        assert_eq!(hits("site"), 3);
        disarm_all();
    }

    #[test]
    fn panic_fires_on_nth_hit() {
        disarm_all();
        arm("psite", Fault::PanicOnNth(1));
        let r = std::panic::catch_unwind(|| hit("psite"));
        assert!(r.is_err());
        disarm_all();
    }
}
