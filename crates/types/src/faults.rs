//! Test-only fault injection (compiled under `feature = "fault-injection"`).
//!
//! Instrumented sites in the storage and execution layers call
//! [`hit`] with a stable site name; tests arm a site with [`arm`] to
//! make its Nth hit return an error or panic. The registry is
//! thread-local so concurrently running tests cannot trip each other's
//! faults. With nothing armed, `hit` is a counter increment and the
//! instrumented code behaves exactly as in a normal build.
//!
//! Multi-threaded subsystems (the `fgac-server` connection and worker
//! threads) never share the arming thread's registry, so sites in the
//! wire layer are armed **globally** with [`arm_global`]: every thread's
//! [`hit`] consults the global registry after its thread-local one.
//! Tests that arm globally must serialize against each other (they
//! share one process-wide registry); the server test suite does this
//! with a file-local mutex.

use crate::{Error, Result};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Mutex;

/// What an armed site does when its trigger count is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Return `Error::Internal` on the Nth hit (1-based).
    ErrorOnNth(u64),
    /// Panic on the Nth hit (1-based) — exercises unwind isolation.
    PanicOnNth(u64),
}

thread_local! {
    static ARMED: RefCell<HashMap<&'static str, (Fault, u64)>> =
        RefCell::new(HashMap::new());
}

/// Sites armed for *every* thread (see [`arm_global`]). A std mutex —
/// this is cold test-only machinery and must not depend on the rest of
/// the workspace.
static GLOBAL_ARMED: Mutex<Option<HashMap<&'static str, (Fault, u64)>>> = Mutex::new(None);

fn with_global<T>(f: impl FnOnce(&mut HashMap<&'static str, (Fault, u64)>) -> T) -> T {
    let mut guard = GLOBAL_ARMED.lock().unwrap_or_else(|p| p.into_inner());
    f(guard.get_or_insert_with(HashMap::new))
}

/// Arms `site` with `fault`, resetting its hit counter.
pub fn arm(site: &'static str, fault: Fault) {
    ARMED.with(|m| {
        m.borrow_mut().insert(site, (fault, 0));
    });
}

/// Arms `site` for **all threads** — required for sites that fire on
/// server worker/connection threads, which never see the test thread's
/// thread-local registry. A site armed both locally and globally fires
/// (and counts) on the thread-local arming only.
pub fn arm_global(site: &'static str, fault: Fault) {
    with_global(|m| {
        m.insert(site, (fault, 0));
    });
}

/// Disarms every site and clears all hit counters — both this thread's
/// registry and the process-global one.
pub fn disarm_all() {
    ARMED.with(|m| m.borrow_mut().clear());
    with_global(|m| m.clear());
}

/// Number of times `site` has been hit since it was armed (thread-local
/// count if armed here, otherwise the global count).
pub fn hits(site: &str) -> u64 {
    let local = ARMED.with(|m| m.borrow().get(site).map(|(_, n)| *n));
    match local {
        Some(n) => n,
        None => with_global(|m| m.get(site).map_or(0, |(_, n)| *n)),
    }
}

fn fire_decision(fault: Fault, n: u64) -> Option<(bool, u64)> {
    match fault {
        Fault::ErrorOnNth(target) if n == target => Some((false, n)),
        Fault::PanicOnNth(target) if n == target => Some((true, n)),
        _ => None,
    }
}

/// Called by instrumented code. Counts the hit and fires the armed
/// fault when the trigger count is reached. Checks the thread-local
/// registry first; a site not armed there falls through to the global
/// registry.
pub fn hit(site: &str) -> Result<()> {
    let fire = ARMED.with(|m| {
        let mut m = m.borrow_mut();
        match m.get_mut(site) {
            Some((fault, count)) => {
                *count += 1;
                Some(fire_decision(*fault, *count))
            }
            None => None,
        }
    });
    let fire = match fire {
        Some(decision) => decision,
        None => with_global(|m| {
            let (fault, count) = match m.get_mut(site) {
                Some(entry) => entry,
                None => return None,
            };
            *count += 1;
            fire_decision(*fault, *count)
        }),
    };
    match fire {
        None => Ok(()),
        Some((false, n)) => Err(Error::Internal(format!(
            "injected fault at {site} (hit {n})"
        ))),
        Some((true, n)) => panic!("injected panic at {site} (hit {n})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_is_a_no_op() {
        disarm_all();
        assert!(hit("nowhere").is_ok());
        assert_eq!(hits("nowhere"), 0);
    }

    #[test]
    fn error_fires_on_nth_hit_only() {
        disarm_all();
        arm("site", Fault::ErrorOnNth(2));
        assert!(hit("site").is_ok());
        let err = hit("site").unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
        // After firing, later hits pass again (one-shot trigger).
        assert!(hit("site").is_ok());
        assert_eq!(hits("site"), 3);
        disarm_all();
    }

    #[test]
    fn panic_fires_on_nth_hit() {
        disarm_all();
        arm("psite", Fault::PanicOnNth(1));
        let r = std::panic::catch_unwind(|| hit("psite"));
        assert!(r.is_err());
        disarm_all();
    }

    #[test]
    fn global_arming_fires_on_other_threads() {
        disarm_all();
        arm_global("gsite-xthread", Fault::ErrorOnNth(2));
        let handle = std::thread::spawn(|| {
            let first = hit("gsite-xthread");
            let second = hit("gsite-xthread");
            (first.is_ok(), second.is_err())
        });
        let (first_ok, second_err) = handle.join().unwrap();
        assert!(first_ok && second_err, "global fault did not fire across threads");
        assert_eq!(hits("gsite-xthread"), 2);
        disarm_all();
        assert!(hit("gsite-xthread").is_ok());
    }

    #[test]
    fn thread_local_arming_shadows_global() {
        disarm_all();
        arm_global("shadowed", Fault::ErrorOnNth(1));
        arm("shadowed", Fault::ErrorOnNth(2));
        // Thread-local wins: first hit passes (local target is 2).
        assert!(hit("shadowed").is_ok());
        assert!(hit("shadowed").is_err());
        // The global counter never moved.
        ARMED.with(|m| m.borrow_mut().clear());
        assert_eq!(hits("shadowed"), 0);
        disarm_all();
    }
}
