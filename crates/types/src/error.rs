//! The workspace-wide error type.

use std::fmt;

/// Errors produced anywhere in the fgac stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing/parsing failure, with position information in the message.
    Parse(String),
    /// Name-resolution failure (unknown table/column/view, ambiguity).
    Bind(String),
    /// Type mismatch in an expression or DML statement.
    Type(String),
    /// Catalog-level problem (duplicate table, unknown constraint, ...).
    Catalog(String),
    /// An integrity constraint would be violated by a DML statement.
    Constraint(String),
    /// The Non-Truman validity check rejected the query, or an update was
    /// not authorized. Carries a user-facing reason.
    ///
    /// Per Section 4, rejection is safe: it reveals only that the query is
    /// not covered by the user's authorization views.
    Unauthorized(String),
    /// Runtime execution failure.
    Execution(String),
    /// Feature outside the supported SQL subset (e.g. nested subqueries,
    /// which the paper also excludes in Section 5).
    Unsupported(String),
    /// A resource budget (inference steps or wall-clock deadline) was
    /// exhausted before the operation finished. Carries the phase that
    /// ran out. The engine maps this to fail-closed DENY: an exhausted
    /// validity check never turns into an ALLOW.
    ResourceExhausted(String),
    /// Durable state (WAL record, snapshot) failed a checksum or decode
    /// check. Recovery treats this as fail-closed: a corrupt *policy*
    /// record refuses to serve rather than guessing at the grant state.
    Corrupt(String),
    /// Internal invariant violation — a bug.
    Internal(String),
}

impl Error {
    /// True when the error is an authorization rejection (as opposed to a
    /// malformed or failing query).
    pub fn is_unauthorized(&self) -> bool {
        matches!(self, Error::Unauthorized(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Bind(m) => write!(f, "binding error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource budget exhausted: {m}"),
            Error::Corrupt(m) => write!(f, "corrupt durable state: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let e = Error::Unauthorized("query not covered by authorization views".into());
        assert!(e.is_unauthorized());
        assert!(e.to_string().starts_with("unauthorized:"));
        assert!(!Error::Parse("x".into()).is_unauthorized());
    }
}
