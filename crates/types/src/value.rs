//! SQL values and data types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The data types supported by the engine.
///
/// The paper's running examples need strings, integers, and averages
/// (doubles); booleans round out predicate results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Double,
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOLEAN"),
            DataType::Int => write!(f, "INTEGER"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// A single SQL value.
///
/// `Value` has a *total* order so rows can serve as hash/sort keys in
/// grouping, duplicate elimination (`SELECT DISTINCT`), and multiset
/// equality checks. The order places `Null` before everything else and
/// orders doubles by `f64::total_cmp`. Three-valued comparison logic for
/// SQL predicates is implemented in the expression evaluator, not here.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
}

impl Value {
    /// Returns the value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerces to a double for arithmetic/aggregation; `None` for
    /// non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL (unknown), or when
    /// the types are incomparable.
    ///
    /// Ints and doubles compare numerically across types.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Some(x.total_cmp(&y))
            }
        }
    }

    /// Whether two values are comparable under SQL semantics (same type
    /// family, neither NULL).
    pub fn sql_comparable(&self, other: &Value) -> bool {
        self.sql_cmp(other).is_some()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order for internal data structures: Null < Bool < numeric <
    /// Str; ints and doubles interleave numerically (ties broken with Int
    /// first so the order stays antisymmetric for e.g. `1` vs `1.0`).
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Double(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and doubles that are numerically equal are *not* `eq`
            // (tie-broken in `cmp`), so they may hash differently.
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Double(d) => {
                3u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn total_order_ranks() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Int(3),
            Value::Str("a".into()),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn numeric_interleave_is_antisymmetric() {
        let i = Value::Int(1);
        let d = Value::Double(1.0);
        assert_eq!(i.cmp(&d), Ordering::Less);
        assert_eq!(d.cmp(&i), Ordering::Greater);
        assert_ne!(i, d);
    }

    #[test]
    fn sql_cmp_crosses_numeric_types() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_type_mismatch_is_none() {
        assert_eq!(Value::Str("1".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn eq_consistent_with_hash_for_identical_values() {
        let a = Value::Str("hello".into());
        let b = Value::Str("hello".into());
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        let c = Value::Double(2.5);
        let d = Value::Double(2.5);
        assert_eq!(c, d);
        assert_eq!(h(&c), h(&d));
    }

    #[test]
    fn nan_is_self_equal_under_total_order() {
        let a = Value::Double(f64::NAN);
        let b = Value::Double(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Str(String::new()).data_type(), Some(DataType::Str));
    }
}
