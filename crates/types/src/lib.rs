//! # fgac-types
//!
//! Foundation types shared by every crate in the `fgac` workspace:
//! SQL values with multiset-friendly total ordering, data types, schemas,
//! rows, case-insensitive identifiers, and the common error type.
//!
//! The paper's model (Rizvi et al., SIGMOD 2004) is defined over SQL's
//! multiset semantics, so [`Value`] implements `Eq`/`Ord`/`Hash` with a
//! *total* order (NULLs first, doubles via `total_cmp`) making rows usable
//! as keys for grouping, duplicate elimination, and multiset comparison.

mod budget;
mod error;
#[cfg(feature = "fault-injection")]
pub mod faults;
mod ident;
mod row;
mod schema;
mod value;
pub mod wire;

pub use budget::{Budget, BudgetMeter};
pub use error::{Error, Result};
pub use ident::Ident;
pub use row::{multiset_eq, Row};
pub use schema::{Column, Schema};
pub use value::{DataType, Value};
