//! Projection/selection transposition.

use crate::dag::{Dag, OpId, Operator};
use fgac_algebra::{normalize_conjuncts, substitute_cols, ScalarExpr};

/// `π_e(σ_p(X))  ≡  σ_p'(π_e(X))` — valid when every column `p`
/// references survives the projection as a plain column (so `p` can be
/// re-expressed over the projected row).
///
/// This lets selections climb above projections so they can match
/// selections over (projected) authorization views.
pub fn project_select_transpose(dag: &mut Dag, op_id: OpId) -> usize {
    let node = dag.op(op_id).clone();
    let Operator::Project { exprs } = &node.op else {
        return 0;
    };
    let class = dag.class_of(op_id);
    let child = node.children[0];

    let mut added = 0;
    let members: Vec<OpId> = dag.ops_of(child).to_vec();
    for member in members {
        let inner = dag.op(member).clone();
        let Operator::Select { conjuncts } = &inner.op else {
            continue;
        };
        let below = inner.children[0];
        // Remap each conjunct through the projection: Col(i) -> Col(k)
        // where exprs[k] == Col(i).
        let mut remapped = Vec::with_capacity(conjuncts.len());
        let mut ok = true;
        'conj: for c in conjuncts {
            let mut mapping = std::collections::BTreeMap::new();
            for i in c.referenced_cols() {
                match exprs.iter().position(|e| e == &ScalarExpr::Col(i)) {
                    Some(k) => {
                        mapping.insert(i, k);
                    }
                    None => {
                        ok = false;
                        break 'conj;
                    }
                }
            }
            remapped.push(c.map_cols(&|i| mapping[&i]));
        }
        if !ok {
            continue;
        }
        let projected = dag.add_op(
            Operator::Project {
                exprs: exprs.clone(),
            },
            vec![below],
            None,
        );
        dag.add_op(
            Operator::Select {
                conjuncts: normalize_conjuncts(&remapped),
            },
            vec![projected],
            Some(class),
        );
        added += 1;
    }
    added
}

/// `σ_p(π_e(X))  ≡  π_e(σ_{p∘e}(X))` — always valid: substitute the
/// projection expressions into the predicate.
pub fn select_project_transpose(dag: &mut Dag, op_id: OpId) -> usize {
    let node = dag.op(op_id).clone();
    let Operator::Select { conjuncts } = &node.op else {
        return 0;
    };
    let class = dag.class_of(op_id);
    let child = node.children[0];

    let mut added = 0;
    let members: Vec<OpId> = dag.ops_of(child).to_vec();
    for member in members {
        let inner = dag.op(member).clone();
        let Operator::Project { exprs } = &inner.op else {
            continue;
        };
        let below = inner.children[0];
        let pushed: Vec<ScalarExpr> =
            conjuncts.iter().map(|c| substitute_cols(c, exprs)).collect();
        let selected = dag.add_op(
            Operator::Select {
                conjuncts: normalize_conjuncts(&pushed),
            },
            vec![below],
            None,
        );
        dag.add_op(
            Operator::Project {
                exprs: exprs.clone(),
            },
            vec![selected],
            Some(class),
        );
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::Plan;
    use fgac_types::{Column, DataType, Schema};

    fn scan(t: &str) -> Plan {
        Plan::scan(
            t,
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Int),
                Column::new("z", DataType::Int),
            ]),
        )
    }

    #[test]
    fn project_over_select_lifts_predicate() {
        let mut dag = Dag::new();
        let p = scan("t")
            .select(vec![ScalarExpr::eq(ScalarExpr::col(2), ScalarExpr::lit(5))])
            .project(vec![ScalarExpr::col(2), ScalarExpr::col(0)]);
        let root = dag.insert_plan(&p);
        let proj_op = dag.ops_of(root)[0];
        assert_eq!(project_select_transpose(&mut dag, proj_op), 1);
        // New member: Select over Project with remapped offset 2 -> 0.
        let found = dag.ops_of(root).iter().any(|&o| {
            matches!(
                &dag.op(o).op,
                Operator::Select { conjuncts }
                    if conjuncts == &vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(5))]
            )
        });
        assert!(found);
    }

    #[test]
    fn project_dropping_predicate_column_blocks_lift() {
        let mut dag = Dag::new();
        let p = scan("t")
            .select(vec![ScalarExpr::eq(ScalarExpr::col(2), ScalarExpr::lit(5))])
            .project(vec![ScalarExpr::col(0)]);
        let root = dag.insert_plan(&p);
        let proj_op = dag.ops_of(root)[0];
        assert_eq!(project_select_transpose(&mut dag, proj_op), 0);
    }

    #[test]
    fn select_over_project_pushes_down() {
        let mut dag = Dag::new();
        let p = scan("t")
            .project(vec![ScalarExpr::col(1)])
            .select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(9))]);
        let root = dag.insert_plan(&p);
        let sel_op = dag.ops_of(root)[0];
        assert_eq!(select_project_transpose(&mut dag, sel_op), 1);
        let found = dag.ops_of(root).iter().any(|&o| {
            matches!(&dag.op(o).op, Operator::Project { .. })
        });
        assert!(found);
    }
}
