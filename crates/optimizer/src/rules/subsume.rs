//! Subsumption derivations (Section 5.6.1): "allow a selection to be
//! evaluated from a weaker selection or a coarse-grained aggregation from
//! a finer-grained one".

use crate::dag::{Dag, EqId, OpId, Operator};
use fgac_algebra::implication::implies;
use fgac_algebra::{AggExpr, AggFunc, ScalarExpr};

/// Selection subsumption: if `σ_p(E)` and `σ_q(E)` both exist over the
/// same class `E` and `p ⟹ q`, then `σ_p(E) = σ_p(σ_q(E))`, so the class
/// of `σ_p(E)` gains the member `σ_p(class-of σ_q(E))`.
///
/// This is what lets a query's *stronger* selection be answered from an
/// authorization view's *weaker* one.
///
/// Returns the number of derivations added for the given class.
pub fn selection_subsumption(dag: &mut Dag, class: EqId) -> usize {
    let arity = dag.arity(class);
    // Collect the distinct Select parents of this class.
    let mut selects: Vec<(OpId, Vec<ScalarExpr>)> = Vec::new();
    for &p in dag.parents_of(class) {
        let node = dag.op(p);
        if dag.find(node.children[0]) != dag.find(class) {
            continue; // parent via a different child slot
        }
        if let Operator::Select { conjuncts } = &node.op {
            selects.push((p, conjuncts.clone()));
        }
    }
    let mut added = 0;
    for i in 0..selects.len() {
        for j in 0..selects.len() {
            if i == j {
                continue;
            }
            let (p_op, p) = &selects[i];
            let (q_op, q) = &selects[j];
            if p == q {
                continue;
            }
            if implies(p, q, arity) {
                // σ_p(E) can be computed as σ_p over σ_q(E).
                let p_class = dag.class_of(*p_op);
                let q_class = dag.class_of(*q_op);
                if p_class == q_class {
                    continue;
                }
                let before = dag.stats();
                dag.add_op(
                    Operator::Select {
                        conjuncts: p.clone(),
                    },
                    vec![q_class],
                    Some(p_class),
                );
                if dag.stats() != before {
                    added += 1;
                }
            }
        }
    }
    added
}

/// Aggregate rollup: a coarser aggregation computed from a finer one over
/// the same input, `γ_{G1}(E)` from `γ_{G2}(E)` when `G1 ⊆ G2` and every
/// aggregate re-aggregates (COUNT→SUM of counts, SUM→SUM of sums,
/// MIN→MIN of mins, MAX→MAX of maxes). DISTINCT aggregates and AVG do
/// not re-aggregate and block the derivation.
pub fn aggregate_rollup(dag: &mut Dag, class: EqId) -> usize {
    // Collect Aggregate parents of this class.
    let mut aggs: Vec<(OpId, Vec<ScalarExpr>, Vec<AggExpr>)> = Vec::new();
    for &p in dag.parents_of(class) {
        let node = dag.op(p);
        if dag.find(node.children[0]) != dag.find(class) {
            continue;
        }
        if let Operator::Aggregate { group_by, aggs: a } = &node.op {
            aggs.push((p, group_by.clone(), a.clone()));
        }
    }
    let mut added = 0;
    for (coarse_op, g1, a1) in &aggs {
        for (fine_op, g2, a2) in &aggs {
            if coarse_op == fine_op {
                continue;
            }
            // G1 must be a strict subset of G2.
            if g1.len() >= g2.len() || !g1.iter().all(|g| g2.contains(g)) {
                continue;
            }
            // Each coarse aggregate must re-aggregate from a fine one.
            let mut re_aggs = Vec::with_capacity(a1.len());
            let mut ok = true;
            for a in a1 {
                if a.distinct {
                    ok = false;
                    break;
                }
                let (want_fine, re_func) = match a.func {
                    AggFunc::CountStar => (
                        AggExpr {
                            func: AggFunc::CountStar,
                            arg: None,
                            distinct: false,
                        },
                        AggFunc::Sum,
                    ),
                    AggFunc::Count => (a.clone(), AggFunc::Sum),
                    AggFunc::Sum => (a.clone(), AggFunc::Sum),
                    AggFunc::Min => (a.clone(), AggFunc::Min),
                    AggFunc::Max => (a.clone(), AggFunc::Max),
                    AggFunc::Avg => {
                        ok = false;
                        break;
                    }
                };
                let Some(pos) = a2.iter().position(|f| f == &want_fine) else {
                    ok = false;
                    break;
                };
                re_aggs.push(AggExpr {
                    func: re_func,
                    arg: Some(ScalarExpr::Col(g2.len() + pos)),
                    distinct: false,
                });
            }
            if !ok {
                continue;
            }
            // Coarse group keys, as offsets into the fine output.
            let mut key_cols = Vec::with_capacity(g1.len());
            for g in g1 {
                let pos = g2.iter().position(|f| f == g).expect("subset checked");
                key_cols.push(ScalarExpr::Col(pos));
            }
            let coarse_class = dag.class_of(*coarse_op);
            let fine_class = dag.class_of(*fine_op);
            let before = dag.stats();
            dag.add_op(
                Operator::Aggregate {
                    group_by: key_cols,
                    aggs: re_aggs,
                },
                vec![fine_class],
                Some(coarse_class),
            );
            if dag.stats() != before {
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::{CmpOp, Plan};
    use fgac_types::{Column, DataType, Schema};

    fn scan() -> Plan {
        Plan::scan(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        )
    }

    #[test]
    fn stronger_selection_derives_from_weaker() {
        let mut dag = Dag::new();
        let base = dag.insert_plan(&scan());
        // q: σ_{a=5}, view: σ_{a>0}.
        let strong = dag.insert_plan(&scan().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit(5),
        )]));
        let weak = dag.insert_plan(&scan().select(vec![ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(0),
            ScalarExpr::lit(0),
        )]));
        let n = selection_subsumption(&mut dag, base);
        assert_eq!(n, 1);
        // The strong class gained a member whose child is the weak class.
        let derived = dag.ops_of(strong).iter().any(|&o| {
            let node = dag.op(o);
            matches!(node.op, Operator::Select { .. })
                && dag.find(node.children[0]) == dag.find(weak)
        });
        assert!(derived);
    }

    #[test]
    fn incomparable_selections_do_not_derive() {
        let mut dag = Dag::new();
        let base = dag.insert_plan(&scan());
        dag.insert_plan(&scan().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit(5),
        )]));
        dag.insert_plan(&scan().select(vec![ScalarExpr::eq(
            ScalarExpr::col(1),
            ScalarExpr::lit(7),
        )]));
        assert_eq!(selection_subsumption(&mut dag, base), 0);
    }

    #[test]
    fn coarse_aggregate_rolls_up_from_fine() {
        let mut dag = Dag::new();
        let base = dag.insert_plan(&scan());
        let count = AggExpr {
            func: AggFunc::CountStar,
            arg: None,
            distinct: false,
        };
        // Fine: group by (a, b); coarse: group by (a).
        let fine = dag.insert_plan(&scan().aggregate(
            vec![ScalarExpr::col(0), ScalarExpr::col(1)],
            vec![count.clone()],
        ));
        let coarse =
            dag.insert_plan(&scan().aggregate(vec![ScalarExpr::col(0)], vec![count.clone()]));
        assert_eq!(aggregate_rollup(&mut dag, base), 1);
        let derived = dag.ops_of(coarse).iter().any(|&o| {
            let node = dag.op(o);
            matches!(&node.op, Operator::Aggregate { aggs, .. }
                if aggs.iter().all(|a| a.func == AggFunc::Sum))
                && dag.find(node.children[0]) == dag.find(fine)
        });
        assert!(derived);
    }

    #[test]
    fn avg_blocks_rollup() {
        let mut dag = Dag::new();
        let base = dag.insert_plan(&scan());
        let avg = AggExpr {
            func: AggFunc::Avg,
            arg: Some(ScalarExpr::col(1)),
            distinct: false,
        };
        dag.insert_plan(&scan().aggregate(
            vec![ScalarExpr::col(0), ScalarExpr::col(1)],
            vec![avg.clone()],
        ));
        dag.insert_plan(&scan().aggregate(vec![ScalarExpr::col(0)], vec![avg]));
        assert_eq!(aggregate_rollup(&mut dag, base), 0);
    }
}
