//! Selection pushdown into joins.

use super::col_range;
use crate::dag::{Dag, OpId, Operator};
use fgac_algebra::normalize_conjuncts;

/// `σ_p(A ⋈_j B)  ≡  σ_pA(A) ⋈_{j ∧ p_mixed} σ_pB(B)`:
/// conjuncts referencing only `A` (resp. `B`) move below the join;
/// cross-side conjuncts merge into the join predicate.
///
/// Returns the number of alternatives added.
pub fn select_push_into_join(dag: &mut Dag, op_id: OpId) -> usize {
    let node = dag.op(op_id).clone();
    let Operator::Select { conjuncts } = &node.op else {
        return 0;
    };
    let class = dag.class_of(op_id);
    let child = node.children[0];

    let mut added = 0;
    let members: Vec<OpId> = dag.ops_of(child).to_vec();
    for member in members {
        let inner = dag.op(member).clone();
        let Operator::Join {
            conjuncts: join_conj,
        } = &inner.op
        else {
            continue;
        };
        let (a_class, b_class) = (inner.children[0], inner.children[1]);
        let a_arity = dag.arity(a_class);

        let mut a_only = Vec::new();
        let mut b_only = Vec::new();
        let mut mixed = join_conj.clone();
        for c in conjuncts {
            match col_range(c) {
                Some((_, hi)) if hi < a_arity => a_only.push(c.clone()),
                Some((lo, _)) if lo >= a_arity => b_only.push(c.map_cols(&|i| i - a_arity)),
                _ => mixed.push(c.clone()),
            }
        }

        let new_a = if a_only.is_empty() {
            a_class
        } else {
            dag.add_op(
                Operator::Select {
                    conjuncts: normalize_conjuncts(&a_only),
                },
                vec![a_class],
                None,
            )
        };
        let new_b = if b_only.is_empty() {
            b_class
        } else {
            dag.add_op(
                Operator::Select {
                    conjuncts: normalize_conjuncts(&b_only),
                },
                vec![b_class],
                None,
            )
        };
        dag.add_op(
            Operator::Join {
                conjuncts: normalize_conjuncts(&mixed),
            },
            vec![new_a, new_b],
            Some(class),
        );
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::{Plan, ScalarExpr};
    use fgac_types::{Column, DataType, Schema};

    fn scan(t: &str) -> Plan {
        Plan::scan(
            t,
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Int),
            ]),
        )
    }

    #[test]
    fn pushes_single_side_conjuncts_below() {
        let mut dag = Dag::new();
        // σ_{a.x=1 ∧ b.y=2 ∧ a.y=b.x}(A × B)
        let p = scan("a").join(scan("b"), vec![]).select(vec![
            ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1)),
            ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::lit(2)),
            ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2)),
        ]);
        let root = dag.insert_plan(&p);
        let sel_op = dag.ops_of(root)[0];
        assert_eq!(select_push_into_join(&mut dag, sel_op), 1);
        // Root class should now include a Join member.
        let has_join = dag
            .ops_of(root)
            .iter()
            .any(|&o| matches!(dag.op(o).op, Operator::Join { .. }));
        assert!(has_join);
    }
}
