//! Aggregation-related rules.

use crate::dag::{Dag, OpId, Operator};
use fgac_algebra::{normalize_conjuncts, CmpOp, ScalarExpr};

/// `σ_p(γ_{G,aggs}(X))  ≡  γ_{G,aggs}(σ_p'(X))` when `p` references only
/// group-by output columns that are plain input columns. Selections on
/// group keys commute with grouping.
pub fn agg_select_commute(dag: &mut Dag, op_id: OpId) -> usize {
    let node = dag.op(op_id).clone();
    let Operator::Select { conjuncts } = &node.op else {
        return 0;
    };
    let class = dag.class_of(op_id);
    let child = node.children[0];

    let mut added = 0;
    let members: Vec<OpId> = dag.ops_of(child).to_vec();
    for member in members {
        let inner = dag.op(member).clone();
        let Operator::Aggregate { group_by, aggs } = &inner.op else {
            continue;
        };
        let below = inner.children[0];
        // Every referenced output column must be a group column.
        let ok = conjuncts
            .iter()
            .flat_map(|c| c.referenced_cols())
            .all(|i| i < group_by.len());
        if !ok {
            continue;
        }
        // Remap through the group-by expressions.
        let pushed: Vec<ScalarExpr> = conjuncts
            .iter()
            .map(|c| {
                c.transform(&|e| match e {
                    ScalarExpr::Col(i) => Some(group_by[*i].clone()),
                    _ => None,
                })
            })
            .collect();
        let selected = dag.add_op(
            Operator::Select {
                conjuncts: normalize_conjuncts(&pushed),
            },
            vec![below],
            None,
        );
        dag.add_op(
            Operator::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            vec![selected],
            Some(class),
        );
        added += 1;
    }
    added
}

/// Rewrites a *global* aggregate over a key-instantiating selection as a
/// selection over a *grouped* aggregate:
///
/// `γ_{[],aggs}(σ_{c=k}(X))  ≈  π_aggs(σ_{g=k}(γ_{[c],aggs}(X)))`
///
/// This is the classic aggregate/view-matching derivation ([14, 26, 28])
/// that lets `SELECT avg(grade) FROM Grades WHERE course_id='CS101'` be
/// answered from the `AvgGrades` authorization view (Example 4.1).
///
/// **Deviation note (documented in DESIGN.md):** the two sides differ on
/// states where no row matches `c=k` — the left yields one row of NULL
/// aggregates, the right yields zero rows. Following the paper's
/// Example 4.1 (and the cited aggregate-rewriting literature, which
/// resolves the mismatch with outer joins), we treat them as equivalent.
pub fn global_agg_to_grouped(dag: &mut Dag, op_id: OpId) -> usize {
    let node = dag.op(op_id).clone();
    let Operator::Aggregate { group_by, aggs } = &node.op else {
        return 0;
    };
    if !group_by.is_empty() {
        return 0;
    }
    let class = dag.class_of(op_id);
    let child = node.children[0];

    let mut added = 0;
    let members: Vec<OpId> = dag.ops_of(child).to_vec();
    for member in members {
        let inner = dag.op(member).clone();
        let Operator::Select { conjuncts } = &inner.op else {
            continue;
        };
        let below = inner.children[0];
        // Every conjunct must instantiate a column: Col(i) = constant.
        let mut keys: Vec<(usize, ScalarExpr)> = Vec::new();
        let mut ok = true;
        for c in conjuncts {
            match c {
                ScalarExpr::Cmp { op: CmpOp::Eq, left, right } => {
                    match (&**left, &**right) {
                        (ScalarExpr::Col(i), k)
                            if matches!(k, ScalarExpr::Lit(_) | ScalarExpr::AccessParam(_)) =>
                        {
                            keys.push((*i, k.clone()));
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || keys.is_empty() {
            continue;
        }
        keys.sort_by_key(|(i, _)| *i);
        keys.dedup_by_key(|(i, _)| *i);

        // Grouped aggregate keyed on the instantiated columns.
        let grouped = dag.add_op(
            Operator::Aggregate {
                group_by: keys.iter().map(|(i, _)| ScalarExpr::Col(*i)).collect(),
                aggs: aggs.clone(),
            },
            vec![below],
            None,
        );
        // Selection pinning the group keys (over the grouped output).
        let pins: Vec<ScalarExpr> = keys
            .iter()
            .enumerate()
            .map(|(out, (_, k))| ScalarExpr::eq(ScalarExpr::Col(out), k.clone()))
            .collect();
        let selected = dag.add_op(
            Operator::Select {
                conjuncts: normalize_conjuncts(&pins),
            },
            vec![grouped],
            None,
        );
        // Project away the keys, keeping only the aggregates.
        let proj: Vec<ScalarExpr> = (0..aggs.len())
            .map(|j| ScalarExpr::Col(keys.len() + j))
            .collect();
        dag.add_op(Operator::Project { exprs: proj }, vec![selected], Some(class));
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::{AggExpr, AggFunc, Plan};
    use fgac_types::{Column, DataType, Schema};

    fn grades() -> Plan {
        Plan::scan(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int),
            ]),
        )
    }

    fn avg_grade() -> AggExpr {
        AggExpr {
            func: AggFunc::Avg,
            arg: Some(ScalarExpr::col(2)),
            distinct: false,
        }
    }

    #[test]
    fn select_on_group_key_commutes() {
        let mut dag = Dag::new();
        // σ_{course='cs101'}(γ_{course}(grades))
        let p = grades()
            .aggregate(vec![ScalarExpr::col(1)], vec![avg_grade()])
            .select(vec![ScalarExpr::eq(
                ScalarExpr::col(0),
                ScalarExpr::lit("cs101"),
            )]);
        let root = dag.insert_plan(&p);
        let sel = dag.ops_of(root)[0];
        assert_eq!(agg_select_commute(&mut dag, sel), 1);
        let has_agg_member = dag
            .ops_of(root)
            .iter()
            .any(|&o| matches!(dag.op(o).op, Operator::Aggregate { .. }));
        assert!(has_agg_member);
    }

    #[test]
    fn selection_on_aggregate_output_does_not_commute() {
        let mut dag = Dag::new();
        // σ_{avg > 50}(γ_{course}(grades)) — references agg column 1.
        let p = grades()
            .aggregate(vec![ScalarExpr::col(1)], vec![avg_grade()])
            .select(vec![ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(1),
                ScalarExpr::lit(50),
            )]);
        let root = dag.insert_plan(&p);
        let sel = dag.ops_of(root)[0];
        assert_eq!(agg_select_commute(&mut dag, sel), 0);
    }

    #[test]
    fn global_aggregate_becomes_grouped() {
        let mut dag = Dag::new();
        // γ_{[],avg}(σ_{course='cs101'}(grades)) — Example 4.1's q1.
        let p = grades()
            .select(vec![ScalarExpr::eq(
                ScalarExpr::col(1),
                ScalarExpr::lit("cs101"),
            )])
            .aggregate(vec![], vec![avg_grade()]);
        let root = dag.insert_plan(&p);
        let agg = dag
            .ops_of(root)
            .iter()
            .copied()
            .find(|&o| matches!(dag.op(o).op, Operator::Aggregate { .. }))
            .unwrap();
        assert_eq!(global_agg_to_grouped(&mut dag, agg), 1);
        // The class now also contains a Project member.
        let has_proj = dag
            .ops_of(root)
            .iter()
            .any(|&o| matches!(dag.op(o).op, Operator::Project { .. }));
        assert!(has_proj);
    }
}
