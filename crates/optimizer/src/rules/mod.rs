//! Algebraic equivalence rules applied during DAG expansion.
//!
//! Each rule inspects one operation node (or one equivalence class) and
//! adds alternative operation nodes *into the same equivalence class*,
//! exactly as the paper describes: "Applying an equivalence rule to an
//! operation node results in an alternative equivalent expression, which
//! is added as another child of the parent equivalence node" (Section
//! 5.6.1).
//!
//! All rules are multiset-sound. Column references are positional, so
//! rules that reorder inputs remap offsets explicitly (join commutativity
//! wraps the swapped join in a permutation projection to preserve output
//! column order).

mod aggregate;
mod join;
mod project;
mod select;
mod subsume;

pub use aggregate::{agg_select_commute, global_agg_to_grouped};
pub use join::{join_associate, join_commute};
pub use project::{project_select_transpose, select_project_transpose};
pub use select::select_push_into_join;
pub use subsume::{aggregate_rollup, selection_subsumption};

use crate::dag::{Dag, OpId};

/// Applies every structural (per-operation) rule to `op`. Returns how
/// many rule applications were attempted that changed the DAG.
pub fn apply_structural(dag: &mut Dag, op: OpId) -> usize {
    let mut changed = 0;
    changed += join_commute(dag, op) as usize;
    changed += join_associate(dag, op);
    changed += select_push_into_join(dag, op);
    changed += project_select_transpose(dag, op);
    changed += select_project_transpose(dag, op);
    changed += agg_select_commute(dag, op);
    changed += global_agg_to_grouped(dag, op);
    changed
}

/// Shared helper: the lowest and highest column offsets a conjunct
/// references, if any.
pub(crate) fn col_range(e: &fgac_algebra::ScalarExpr) -> Option<(usize, usize)> {
    let cols = e.referenced_cols();
    match (cols.first(), cols.last()) {
        (Some(&lo), Some(&hi)) => Some((lo, hi)),
        _ => None,
    }
}
