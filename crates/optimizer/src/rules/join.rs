//! Join commutativity and associativity (the rules used for Figure 1).

use super::col_range;
use crate::dag::{Dag, OpId, Operator};
use fgac_algebra::{normalize_conjuncts, ScalarExpr};

/// Join commutativity: `A ⋈_p B  ≡  π_swap(B ⋈_p' A)`.
///
/// Column references are positional, so the swapped join is wrapped in a
/// permutation projection restoring the original column order.
pub fn join_commute(dag: &mut Dag, op_id: OpId) -> bool {
    let node = dag.op(op_id).clone();
    let Operator::Join { conjuncts } = &node.op else {
        return false;
    };
    let class = dag.class_of(op_id);
    let (l, r) = (node.children[0], node.children[1]);
    let (la, ra) = (dag.arity(l), dag.arity(r));

    // Remap: left cols shift right by ra, right cols shift left by la.
    let remapped: Vec<ScalarExpr> = conjuncts
        .iter()
        .map(|c| c.map_cols(&|i| if i < la { i + ra } else { i - la }))
        .collect();
    let swapped = dag.add_op(
        Operator::Join {
            conjuncts: normalize_conjuncts(&remapped),
        },
        vec![r, l],
        None,
    );
    // Permutation projection restoring A ++ B order.
    let perm: Vec<ScalarExpr> = (0..la)
        .map(|i| ScalarExpr::Col(ra + i))
        .chain((0..ra).map(ScalarExpr::Col))
        .collect();
    dag.add_op(Operator::Project { exprs: perm }, vec![swapped], Some(class));
    true
}

/// Join associativity: `(A ⋈ B) ⋈ C  ≡  A ⋈ (B ⋈ C)`.
///
/// With positional columns and left-to-right concatenation both shapes
/// produce columns in order `A ++ B ++ C`, so only the *placement* of
/// conjuncts changes: a conjunct goes to the inner `(B ⋈ C)` join iff it
/// references no `A` column.
///
/// Returns the number of alternatives added.
pub fn join_associate(dag: &mut Dag, op_id: OpId) -> usize {
    let node = dag.op(op_id).clone();
    let Operator::Join { conjuncts: top } = &node.op else {
        return 0;
    };
    let class = dag.class_of(op_id);
    let (left_class, c_class) = (node.children[0], node.children[1]);
    let c_arity = dag.arity(c_class);

    let mut added = 0;
    // For every join-shaped member of the left child: ((A ⋈ B) ⋈ C).
    let members: Vec<OpId> = dag.ops_of(left_class).to_vec();
    for member in members {
        let inner = dag.op(member).clone();
        let Operator::Join { conjuncts: bot } = &inner.op else {
            continue;
        };
        let (a_class, b_class) = (inner.children[0], inner.children[1]);
        let a_arity = dag.arity(a_class);
        let b_arity = dag.arity(b_class);
        debug_assert_eq!(a_arity + b_arity, dag.arity(left_class));

        // Partition all conjuncts by lowest referenced column.
        let mut inner_conj = Vec::new(); // references only B/C
        let mut outer_conj = Vec::new(); // references A (or nothing)
        for c in top.iter().chain(bot.iter()) {
            match col_range(c) {
                Some((lo, hi)) => {
                    debug_assert!(hi < a_arity + b_arity + c_arity);
                    if lo >= a_arity {
                        inner_conj.push(c.map_cols(&|i| i - a_arity));
                    } else {
                        outer_conj.push(c.clone());
                    }
                }
                None => outer_conj.push(c.clone()),
            }
        }

        let bc = dag.add_op(
            Operator::Join {
                conjuncts: normalize_conjuncts(&inner_conj),
            },
            vec![b_class, c_class],
            None,
        );
        dag.add_op(
            Operator::Join {
                conjuncts: normalize_conjuncts(&outer_conj),
            },
            vec![a_class, bc],
            Some(class),
        );
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_any;
    use fgac_algebra::Plan;
    use fgac_types::{Column, DataType, Schema};

    fn scan(t: &str) -> Plan {
        Plan::scan(
            t,
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Int),
            ]),
        )
    }

    #[test]
    fn commute_preserves_class() {
        let mut dag = Dag::new();
        let p = scan("a").join(
            scan("b"),
            vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2))],
        );
        let root = dag.insert_plan(&p);
        let join_op = dag.ops_of(root)[0];
        assert!(join_commute(&mut dag, join_op));
        // Class now has 2 members: the join and the projected swap.
        assert_eq!(dag.ops_of(root).len(), 2);
        // Double application is a no-op thanks to hash-consing.
        let before = dag.stats();
        join_commute(&mut dag, join_op);
        assert_eq!(dag.stats(), before);
    }

    #[test]
    fn associate_regroups() {
        let mut dag = Dag::new();
        // (A ⋈_{a.y=b.x} B) ⋈_{b.y=c.x} C
        let p = scan("a")
            .join(
                scan("b"),
                vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2))],
            )
            .join(
                scan("c"),
                vec![ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(4))],
            );
        let root = dag.insert_plan(&p);
        let top = dag.ops_of(root)[0];
        assert_eq!(join_associate(&mut dag, top), 1);
        assert_eq!(dag.ops_of(root).len(), 2);
        // Some member of the root class is now A ⋈ (B ⋈ C): check a B⋈C
        // class exists by extracting and scanning shapes.
        let plan = extract_any(&dag, root).unwrap();
        assert_eq!(plan.scanned_tables().len(), 3);
    }
}
