//! Plan extraction from the DAG.
//!
//! [`extract_any`] picks the smallest member plan (used for provenance
//! analysis and witness printing); [`extract_best`] picks the cheapest
//! under a [`CostModel`] (normal optimization). Both guard against
//! cycles, which merges can create (a class reachable through itself via
//! a derivation).

use crate::cost::{CostModel, Estimate};
use crate::dag::{Dag, EqId, Operator};
use fgac_algebra::Plan;
use std::collections::HashMap;

/// Extracts *some* plan for the class, minimizing node count.
pub fn extract_any(dag: &Dag, class: EqId) -> Option<Plan> {
    let mut memo: HashMap<EqId, Option<(usize, Plan)>> = HashMap::new();
    let mut on_stack = std::collections::HashSet::new();
    extract_min(dag, dag.find(class), &mut memo, &mut on_stack).map(|(_, p)| p)
}

fn extract_min(
    dag: &Dag,
    class: EqId,
    memo: &mut HashMap<EqId, Option<(usize, Plan)>>,
    on_stack: &mut std::collections::HashSet<EqId>,
) -> Option<(usize, Plan)> {
    let class = dag.find(class);
    if let Some(cached) = memo.get(&class) {
        return cached.clone();
    }
    if !on_stack.insert(class) {
        return None; // cycle
    }
    let mut best: Option<(usize, Plan)> = None;
    for &op_id in dag.ops_of(class) {
        let node = dag.op(op_id);
        let mut children = Vec::with_capacity(node.children.len());
        let mut size = 1usize;
        let mut ok = true;
        for &c in &node.children {
            match extract_min(dag, c, memo, on_stack) {
                Some((s, p)) => {
                    size += s;
                    children.push(p);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        if best.as_ref().is_some_and(|(bs, _)| *bs <= size) {
            continue;
        }
        best = Some((size, build_plan(&node.op, children)));
    }
    on_stack.remove(&class);
    memo.insert(class, best.clone());
    best
}

/// Extracts the cheapest plan for the class under the cost model.
/// Returns `(plan, estimated cost)`.
pub fn extract_best(dag: &Dag, class: EqId, model: &CostModel) -> Option<(Plan, f64)> {
    let mut memo: HashMap<EqId, Option<(Estimate, Plan)>> = HashMap::new();
    let mut on_stack = std::collections::HashSet::new();
    extract_cheapest(dag, dag.find(class), model, &mut memo, &mut on_stack)
        .map(|(e, p)| (p, e.cost))
}

fn extract_cheapest(
    dag: &Dag,
    class: EqId,
    model: &CostModel,
    memo: &mut HashMap<EqId, Option<(Estimate, Plan)>>,
    on_stack: &mut std::collections::HashSet<EqId>,
) -> Option<(Estimate, Plan)> {
    let class = dag.find(class);
    if let Some(cached) = memo.get(&class) {
        return cached.clone();
    }
    if !on_stack.insert(class) {
        return None;
    }
    let mut best: Option<(Estimate, Plan)> = None;
    for &op_id in dag.ops_of(class) {
        let node = dag.op(op_id);
        let mut children = Vec::with_capacity(node.children.len());
        let mut child_ests = Vec::with_capacity(node.children.len());
        let mut ok = true;
        for &c in &node.children {
            match extract_cheapest(dag, c, model, memo, on_stack) {
                Some((e, p)) => {
                    child_ests.push(e);
                    children.push(p);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let est = match &node.op {
            Operator::Scan { table, .. } => model.scan(table),
            Operator::Select { conjuncts } => model.select(child_ests[0], conjuncts),
            Operator::Project { .. } => model.project(child_ests[0]),
            Operator::Distinct => model.distinct(child_ests[0]),
            Operator::Join { conjuncts } => model.join(child_ests[0], child_ests[1], conjuncts),
            Operator::Aggregate { group_by, .. } => {
                model.aggregate(child_ests[0], group_by.len())
            }
        };
        if best.as_ref().is_some_and(|(be, _)| be.cost <= est.cost) {
            continue;
        }
        best = Some((est, build_plan(&node.op, children)));
    }
    on_stack.remove(&class);
    memo.insert(class, best.clone());
    best
}

fn build_plan(op: &Operator, mut children: Vec<Plan>) -> Plan {
    match op {
        Operator::Scan { table, schema } => Plan::Scan {
            table: table.clone(),
            schema: schema.clone(),
        },
        Operator::Select { conjuncts } => Plan::Select {
            input: Box::new(children.remove(0)),
            conjuncts: conjuncts.clone(),
        },
        Operator::Project { exprs } => Plan::Project {
            input: Box::new(children.remove(0)),
            exprs: exprs.clone(),
        },
        Operator::Distinct => Plan::Distinct {
            input: Box::new(children.remove(0)),
        },
        Operator::Join { conjuncts } => {
            let left = children.remove(0);
            let right = children.remove(0);
            Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                conjuncts: conjuncts.clone(),
            }
        }
        Operator::Aggregate { group_by, aggs } => Plan::Aggregate {
            input: Box::new(children.remove(0)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableStats;
    use crate::expand::{expand, ExpandOptions};
    use fgac_algebra::ScalarExpr;
    use fgac_types::{Column, DataType, Schema};

    fn scan(t: &str) -> Plan {
        Plan::scan(
            t,
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Int),
            ]),
        )
    }

    #[test]
    fn roundtrips_simple_plan() {
        let mut dag = Dag::new();
        let p = fgac_algebra::normalize(
            &scan("t")
                .select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))])
                .project(vec![ScalarExpr::col(1)]),
        );
        let root = dag.insert_plan(&p);
        assert_eq!(extract_any(&dag, root).unwrap(), p);
    }

    #[test]
    fn best_plan_pushes_selection_down() {
        let mut dag = Dag::new();
        // σ_{a.x=1}(A ⋈ B): after expansion, the pushed-down form should
        // win (filter before join).
        let p = scan("a")
            .join(
                scan("b"),
                vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2))],
            )
            .select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))]);
        let root = dag.insert_plan(&p);
        expand(&mut dag, &ExpandOptions::default());

        let mut stats = TableStats::new();
        stats.set("a", 10_000);
        stats.set("b", 10_000);
        let (best, _) = extract_best(&dag, root, &CostModel::new(stats)).unwrap();
        // The top of the best plan should no longer be the selection.
        assert!(
            !matches!(best, Plan::Select { .. }),
            "expected pushed-down plan, got:\n{best}"
        );
    }

    #[test]
    fn extraction_costs_match_model_ordering() {
        let mut dag = Dag::new();
        let p = scan("a").join(scan("b"), vec![]);
        let root = dag.insert_plan(&p);
        let mut stats = TableStats::new();
        stats.set("a", 10);
        stats.set("b", 10);
        let (_, cost_small) = extract_best(&dag, root, &CostModel::new(stats)).unwrap();
        let mut stats = TableStats::new();
        stats.set("a", 1000);
        stats.set("b", 1000);
        let (_, cost_big) = extract_best(&dag, root, &CostModel::new(stats)).unwrap();
        assert!(cost_big > cost_small);
    }
}
