//! A simple cardinality-based cost model for plan extraction.
//!
//! The paper only needs the optimizer to pick *some* best plan (validity
//! checking is orthogonal to plan quality), so this model is deliberately
//! basic: fixed selectivities per predicate class, costs proportional to
//! rows touched.

use fgac_algebra::{CmpOp, ScalarExpr};
use fgac_types::Ident;
use std::collections::BTreeMap;

/// Base-table row counts used for estimation.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    rows: BTreeMap<Ident, f64>,
}

impl TableStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, table: impl Into<Ident>, rows: usize) -> &mut Self {
        self.rows.insert(table.into(), rows as f64);
        self
    }

    pub fn rows(&self, table: &Ident) -> f64 {
        self.rows.get(table).copied().unwrap_or(1000.0)
    }

    /// Snapshot from a live database.
    pub fn from_database(db: &fgac_storage::Database) -> Self {
        let mut s = Self::new();
        for meta in db.catalog().tables() {
            if let Some(t) = db.table(&meta.name) {
                s.set(meta.name.clone(), t.len().max(1));
            }
        }
        s
    }
}

/// Cost/cardinality estimation.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    pub stats: TableStats,
}

/// Estimated (cost, output cardinality).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub cost: f64,
    pub card: f64,
}

impl CostModel {
    pub fn new(stats: TableStats) -> Self {
        CostModel { stats }
    }

    /// Selectivity of one conjunct: equality is more selective than
    /// ranges.
    fn selectivity(conjunct: &ScalarExpr) -> f64 {
        match conjunct {
            ScalarExpr::Cmp { op: CmpOp::Eq, .. } => 0.05,
            ScalarExpr::Cmp { .. } => 0.3,
            _ => 0.5,
        }
    }

    pub fn scan(&self, table: &Ident) -> Estimate {
        let rows = self.stats.rows(table);
        Estimate {
            cost: rows,
            card: rows,
        }
    }

    pub fn select(&self, input: Estimate, conjuncts: &[ScalarExpr]) -> Estimate {
        let sel: f64 = conjuncts.iter().map(Self::selectivity).product();
        Estimate {
            cost: input.cost + input.card,
            card: (input.card * sel).max(1.0),
        }
    }

    pub fn project(&self, input: Estimate) -> Estimate {
        Estimate {
            cost: input.cost + input.card,
            card: input.card,
        }
    }

    pub fn distinct(&self, input: Estimate) -> Estimate {
        Estimate {
            cost: input.cost + input.card,
            card: (input.card * 0.8).max(1.0),
        }
    }

    pub fn join(&self, left: Estimate, right: Estimate, conjuncts: &[ScalarExpr]) -> Estimate {
        let sel: f64 = if conjuncts.is_empty() {
            1.0
        } else {
            conjuncts.iter().map(Self::selectivity).product()
        };
        let out = (left.card * right.card * sel).max(1.0);
        Estimate {
            // Hash-join-ish: build + probe + output.
            cost: left.cost + right.cost + left.card + right.card + out,
            card: out,
        }
    }

    pub fn aggregate(&self, input: Estimate, group_by_len: usize) -> Estimate {
        let card = if group_by_len == 0 {
            1.0
        } else {
            (input.card * 0.1).max(1.0)
        };
        Estimate {
            cost: input.cost + input.card,
            card,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_more_selective_than_range() {
        let m = CostModel::default();
        let base = Estimate {
            cost: 0.0,
            card: 1000.0,
        };
        let eq = m.select(
            base,
            &[ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))],
        );
        let range = m.select(
            base,
            &[ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(0),
                ScalarExpr::lit(1),
            )],
        );
        assert!(eq.card < range.card);
    }

    #[test]
    fn join_cost_grows_with_inputs() {
        let m = CostModel::default();
        let small = Estimate {
            cost: 10.0,
            card: 10.0,
        };
        let big = Estimate {
            cost: 10_000.0,
            card: 10_000.0,
        };
        let j1 = m.join(small, small, &[]);
        let j2 = m.join(big, big, &[]);
        assert!(j2.cost > j1.cost);
    }

    #[test]
    fn stats_default_and_override() {
        let mut s = TableStats::new();
        s.set("grades", 500);
        assert_eq!(s.rows(&Ident::new("grades")), 500.0);
        assert_eq!(s.rows(&Ident::new("unknown")), 1000.0);
    }
}
