//! The AND-OR DAG (Figure 1 of the paper).
//!
//! Rectangular *equivalence nodes* (OR nodes) represent a logical
//! expression; circular *operation nodes* (AND nodes) represent one way
//! to compute it from child equivalence nodes. Hash-consing on
//! `(operator, canonical child ids)` gives the **unification** of
//! Roy et al. [25]: when two DAGs (e.g. a query and an authorization
//! view) contain a common subexpression, they share the equivalence
//! node — the basis of validity testing (Section 5.6.2).
//!
//! The structure is a congruence-closed e-graph: merging two equivalence
//! nodes re-canonicalizes their parents, which can cascade further
//! merges.

use fgac_algebra::{normalize, AggExpr, Plan, ScalarExpr};
use fgac_types::{Ident, Schema};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Id of an equivalence (OR) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EqId(pub u32);

/// Id of an operation (AND) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

/// The payload of an operation node. Children (equivalence-node inputs)
/// are stored separately on [`OpNode`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operator {
    Scan { table: Ident, schema: Schema },
    Select { conjuncts: Vec<ScalarExpr> },
    Project { exprs: Vec<ScalarExpr> },
    Distinct,
    Join { conjuncts: Vec<ScalarExpr> },
    Aggregate { group_by: Vec<ScalarExpr>, aggs: Vec<AggExpr> },
}

impl Operator {
    /// Output arity given child arities.
    fn arity(&self, child_arities: &[usize]) -> usize {
        match self {
            Operator::Scan { schema, .. } => schema.len(),
            Operator::Select { .. } | Operator::Distinct => child_arities[0],
            Operator::Project { exprs } => exprs.len(),
            Operator::Join { .. } => child_arities[0] + child_arities[1],
            Operator::Aggregate { group_by, aggs } => group_by.len() + aggs.len(),
        }
    }

    pub fn expected_children(&self) -> usize {
        match self {
            Operator::Scan { .. } => 0,
            Operator::Join { .. } => 2,
            _ => 1,
        }
    }
}

/// An operation (AND) node.
#[derive(Debug, Clone)]
pub struct OpNode {
    pub op: Operator,
    pub children: Vec<EqId>,
    /// The equivalence class this operation computes.
    pub class: EqId,
}

/// An equivalence (OR) node.
#[derive(Debug, Clone, Default)]
struct EqData {
    ops: Vec<OpId>,
    parents: Vec<OpId>,
    arity: usize,
}

/// Counters for experiment E1 (Figure 1 reproduction) and E2/E3
/// overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DagStats {
    pub eq_nodes: usize,
    pub op_nodes: usize,
}

/// The AND-OR DAG.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    ops: Vec<OpNode>,
    eqs: Vec<EqData>,
    /// Union-find over equivalence ids.
    uf: Vec<u32>,
    /// Hash-consing index on canonical (operator, children).
    index: HashMap<(Operator, Vec<EqId>), OpId>,
    /// Classes whose parents must be re-canonicalized.
    dirty: Vec<EqId>,
}

impl Dag {
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical representative of an equivalence id.
    pub fn find(&self, id: EqId) -> EqId {
        let mut c = id.0;
        while self.uf[c as usize] != c {
            c = self.uf[c as usize];
        }
        EqId(c)
    }

    fn find_compress(&mut self, id: EqId) -> EqId {
        let root = self.find(id);
        let mut c = id.0;
        while self.uf[c as usize] != root.0 {
            let next = self.uf[c as usize];
            self.uf[c as usize] = root.0;
            c = next;
        }
        root
    }

    /// Number of live (canonical) equivalence nodes and operation nodes.
    pub fn stats(&self) -> DagStats {
        let eq_nodes = (0..self.uf.len())
            .filter(|&i| self.uf[i] == i as u32)
            .count();
        DagStats {
            eq_nodes,
            op_nodes: self.ops.len(),
        }
    }

    /// The operation nodes of an equivalence class.
    pub fn ops_of(&self, id: EqId) -> &[OpId] {
        &self.eqs[self.find(id).0 as usize].ops
    }

    /// The parent operation nodes consuming this class.
    pub fn parents_of(&self, id: EqId) -> &[OpId] {
        &self.eqs[self.find(id).0 as usize].parents
    }

    /// Output arity of a class.
    pub fn arity(&self, id: EqId) -> usize {
        self.eqs[self.find(id).0 as usize].arity
    }

    pub fn op(&self, id: OpId) -> &OpNode {
        &self.ops[id.0 as usize]
    }

    /// The canonical class an operation belongs to.
    pub fn class_of(&self, id: OpId) -> EqId {
        self.find(self.ops[id.0 as usize].class)
    }

    /// All canonical equivalence ids.
    pub fn classes(&self) -> Vec<EqId> {
        (0..self.uf.len() as u32)
            .map(EqId)
            .filter(|&e| self.find(e) == e)
            .collect()
    }

    /// All operation ids.
    pub fn all_ops(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    fn new_class(&mut self, arity: usize) -> EqId {
        let id = EqId(self.uf.len() as u32);
        self.uf.push(id.0);
        self.eqs.push(EqData {
            ops: Vec::new(),
            parents: Vec::new(),
            arity,
        });
        id
    }

    /// Inserts an operation with the given children, hash-consing. If an
    /// identical operation exists, returns its class; otherwise creates
    /// the operation (in a fresh class unless `into` is given, in which
    /// case the operation is added to that class).
    ///
    /// If the operation already exists in a *different* class than
    /// `into`, the classes are merged (this is unification).
    pub fn add_op(&mut self, op: Operator, children: Vec<EqId>, into: Option<EqId>) -> EqId {
        debug_assert_eq!(op.expected_children(), children.len());
        let children: Vec<EqId> = children.iter().map(|&c| self.find_compress(c)).collect();
        let key = (op.clone(), children.clone());
        match self.index.entry(key) {
            Entry::Occupied(o) => {
                let existing = *o.get();
                let class = self.class_of(existing);
                if let Some(target) = into {
                    let target = self.find(target);
                    if target != class {
                        self.merge(target, class);
                        return self.find(target);
                    }
                }
                class
            }
            Entry::Vacant(v) => {
                let op_id = OpId(self.ops.len() as u32);
                v.insert(op_id);
                let child_arities: Vec<usize> = children
                    .iter()
                    .map(|&c| self.eqs[c.0 as usize].arity)
                    .collect();
                let arity = op.arity(&child_arities);
                let class = match into {
                    Some(c) => {
                        let c = self.find(c);
                        debug_assert_eq!(
                            self.eqs[c.0 as usize].arity, arity,
                            "operator arity must match its class"
                        );
                        c
                    }
                    None => self.new_class(arity),
                };
                self.ops.push(OpNode {
                    op,
                    children: children.clone(),
                    class,
                });
                self.eqs[class.0 as usize].ops.push(op_id);
                for &c in &children {
                    self.eqs[c.0 as usize].parents.push(op_id);
                }
                class
            }
        }
    }

    /// Merges two equivalence classes (they compute the same relation),
    /// then restores congruence: parents whose canonical signatures now
    /// collide are merged too.
    pub fn merge(&mut self, a: EqId, b: EqId) {
        let (a, b) = (self.find_compress(a), self.find_compress(b));
        if a == b {
            return;
        }
        debug_assert_eq!(
            self.eqs[a.0 as usize].arity, self.eqs[b.0 as usize].arity,
            "cannot merge classes of different arity"
        );
        // Union: b -> a.
        self.uf[b.0 as usize] = a.0;
        let b_data = std::mem::take(&mut self.eqs[b.0 as usize]);
        for &op in &b_data.ops {
            self.ops[op.0 as usize].class = a;
        }
        self.eqs[a.0 as usize].ops.extend(b_data.ops);
        self.eqs[a.0 as usize].parents.extend(b_data.parents);
        self.dirty.push(a);
        self.rebuild();
    }

    /// Restores the hash-consing invariant after merges.
    fn rebuild(&mut self) {
        while let Some(class) = self.dirty.pop() {
            let class = self.find_compress(class);
            let parents = self.eqs[class.0 as usize].parents.clone();
            for op_id in parents {
                let (op, old_children) = {
                    let node = &self.ops[op_id.0 as usize];
                    (node.op.clone(), node.children.clone())
                };
                let new_children: Vec<EqId> =
                    old_children.iter().map(|&c| self.find_compress(c)).collect();
                if new_children == old_children {
                    continue;
                }
                self.ops[op_id.0 as usize].children = new_children.clone();
                let key = (op, new_children);
                match self.index.entry(key) {
                    Entry::Occupied(o) => {
                        let other = *o.get();
                        if other != op_id {
                            // Congruence: op_id and other compute the same
                            // thing; merge their classes.
                            let (ca, cb) = (self.class_of(op_id), self.class_of(other));
                            if ca != cb {
                                let (ca, cb) = (self.find_compress(ca), self.find_compress(cb));
                                self.uf[cb.0 as usize] = ca.0;
                                let b_data = std::mem::take(&mut self.eqs[cb.0 as usize]);
                                for &op in &b_data.ops {
                                    self.ops[op.0 as usize].class = ca;
                                }
                                self.eqs[ca.0 as usize].ops.extend(b_data.ops);
                                self.eqs[ca.0 as usize].parents.extend(b_data.parents);
                                self.dirty.push(ca);
                            }
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(op_id);
                    }
                }
            }
        }
        // Deduplicate op/parent lists of canonical classes lazily.
        for i in 0..self.eqs.len() {
            if self.uf[i] == i as u32 {
                self.eqs[i].ops.sort_unstable();
                self.eqs[i].ops.dedup();
                self.eqs[i].parents.sort_unstable();
                self.eqs[i].parents.dedup();
            }
        }
    }

    /// Inserts a (normalized) plan, returning its equivalence class.
    pub fn insert_plan(&mut self, plan: &Plan) -> EqId {
        let plan = normalize(plan);
        self.insert_normalized(&plan)
    }

    fn insert_normalized(&mut self, plan: &Plan) -> EqId {
        match plan {
            Plan::Scan { table, schema } => self.add_op(
                Operator::Scan {
                    table: table.clone(),
                    schema: schema.clone(),
                },
                vec![],
                None,
            ),
            Plan::Select { input, conjuncts } => {
                let child = self.insert_normalized(input);
                self.add_op(
                    Operator::Select {
                        conjuncts: conjuncts.clone(),
                    },
                    vec![child],
                    None,
                )
            }
            Plan::Project { input, exprs } => {
                let child = self.insert_normalized(input);
                self.add_op(
                    Operator::Project {
                        exprs: exprs.clone(),
                    },
                    vec![child],
                    None,
                )
            }
            Plan::Distinct { input } => {
                let child = self.insert_normalized(input);
                self.add_op(Operator::Distinct, vec![child], None)
            }
            Plan::Join {
                left,
                right,
                conjuncts,
            } => {
                let l = self.insert_normalized(left);
                let r = self.insert_normalized(right);
                self.add_op(
                    Operator::Join {
                        conjuncts: conjuncts.clone(),
                    },
                    vec![l, r],
                    None,
                )
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let child = self.insert_normalized(input);
                self.add_op(
                    Operator::Aggregate {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    vec![child],
                    None,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::CmpOp;
    use fgac_types::{Column, DataType};

    fn schema(cols: &[&str]) -> Schema {
        Schema::new(cols.iter().map(|c| Column::new(*c, DataType::Int)).collect())
    }

    fn scan(t: &str) -> Plan {
        Plan::scan(t, schema(&["a", "b"]))
    }

    #[test]
    fn hash_consing_shares_identical_subplans() {
        let mut dag = Dag::new();
        let p1 = scan("t").select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))]);
        let p2 = scan("t").select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))]);
        let e1 = dag.insert_plan(&p1);
        let e2 = dag.insert_plan(&p2);
        assert_eq!(dag.find(e1), dag.find(e2));
        assert_eq!(dag.stats().op_nodes, 2); // scan + select
    }

    #[test]
    fn different_predicates_stay_separate() {
        let mut dag = Dag::new();
        let e1 = dag.insert_plan(
            &scan("t").select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))]),
        );
        let e2 = dag.insert_plan(
            &scan("t").select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(2))]),
        );
        assert_ne!(dag.find(e1), dag.find(e2));
    }

    #[test]
    fn normalization_unifies_variants() {
        let mut dag = Dag::new();
        // Stacked selects vs merged select.
        let a = scan("t")
            .select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))])
            .select(vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(2))]);
        let b = scan("t").select(vec![
            ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(2)),
            ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1)),
        ]);
        let e1 = dag.insert_plan(&a);
        let e2 = dag.insert_plan(&b);
        assert_eq!(dag.find(e1), dag.find(e2));
    }

    #[test]
    fn merge_cascades_congruence() {
        let mut dag = Dag::new();
        // f(x) where x = scan(t) select ..., and f(y) where y = scan(u):
        // merging x and y must merge f(x) and f(y).
        let x = dag.insert_plan(&scan("t"));
        let y = dag.insert_plan(&scan("u"));
        let fx = dag.add_op(Operator::Distinct, vec![x], None);
        let fy = dag.add_op(Operator::Distinct, vec![y], None);
        assert_ne!(dag.find(fx), dag.find(fy));
        dag.merge(x, y);
        assert_eq!(dag.find(fx), dag.find(fy));
    }

    #[test]
    fn add_op_into_class_unifies() {
        let mut dag = Dag::new();
        let t = dag.insert_plan(&scan("t"));
        let sel = dag.add_op(
            Operator::Select {
                conjuncts: vec![ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::col(0),
                    ScalarExpr::lit(5),
                )],
            },
            vec![t],
            None,
        );
        // Re-adding the same op "into" another class merges them.
        let u = dag.insert_plan(&scan("u"));
        let su = dag.add_op(
            Operator::Select {
                conjuncts: vec![ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::col(0),
                    ScalarExpr::lit(5),
                )],
            },
            vec![t],
            Some(u),
        );
        assert_eq!(dag.find(sel), dag.find(su));
        assert_eq!(dag.find(sel), dag.find(u));
    }

    #[test]
    fn figure_one_initial_dag_shape() {
        // Figure 1(b): query A ⋈ B ⋈ C as a left-deep tree has 5 eq nodes
        // (A, B, C, A⋈B, A⋈B⋈C) and 5 op nodes (3 scans + 2 joins).
        let mut dag = Dag::new();
        let p = scan("a")
            .join(
                scan("b"),
                vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2))],
            )
            .join(
                scan("c"),
                vec![ScalarExpr::eq(ScalarExpr::col(2), ScalarExpr::col(4))],
            );
        dag.insert_plan(&p);
        let stats = dag.stats();
        assert_eq!(stats.eq_nodes, 5);
        assert_eq!(stats.op_nodes, 5);
    }

    #[test]
    fn parents_tracked() {
        let mut dag = Dag::new();
        let t = dag.insert_plan(&scan("t"));
        let _d = dag.add_op(Operator::Distinct, vec![t], None);
        assert_eq!(dag.parents_of(t).len(), 1);
    }
}
