//! Validity marking (Section 5.6.2).
//!
//! "The root equivalence nodes for all views are marked as valid. The
//! following rules are applied bottom-up to the DAG:
//!   1. An equivalence node is marked as valid if any of its children
//!      operation nodes is marked as valid.
//!   2. An operation node is marked as valid if all its children
//!      equivalence nodes are marked as valid."
//!
//! A `Scan` operation has no children and would be vacuously valid, so
//! scans are explicitly *never* valid through propagation — a base table
//! is visible only if some authorization view class (e.g. `SELECT * FROM
//! t`, whose normalized plan *is* the scan) is marked directly.

use crate::dag::{Dag, EqId, Operator};
use std::collections::HashSet;

/// The set of equivalence classes inferred computable from the marked
/// roots.
#[derive(Debug, Clone, Default)]
pub struct Marking {
    valid: HashSet<EqId>,
}

impl Marking {
    /// True if the class is marked valid.
    pub fn is_valid(&self, dag: &Dag, class: EqId) -> bool {
        self.valid.contains(&dag.find(class))
    }

    /// Marks a class valid directly (used by U3/C3 derivations, which
    /// justify validity outside the bottom-up propagation).
    pub fn mark(&mut self, dag: &Dag, class: EqId) {
        self.valid.insert(dag.find(class));
    }

    /// Number of valid classes.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Re-canonicalizes the marking after DAG mutations and re-runs the
    /// propagation to a fixpoint.
    pub fn propagate(&mut self, dag: &Dag) {
        // Re-canonicalize ids (merges may have changed representatives).
        self.valid = self.valid.iter().map(|&e| dag.find(e)).collect();
        loop {
            let mut changed = false;
            for op_id in dag.all_ops() {
                let node = dag.op(op_id);
                if matches!(node.op, Operator::Scan { .. }) {
                    continue;
                }
                let class = dag.find(node.class);
                if self.valid.contains(&class) {
                    continue;
                }
                if node
                    .children
                    .iter()
                    .all(|&c| self.valid.contains(&dag.find(c)))
                {
                    self.valid.insert(class);
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }
}

/// Marks the given roots (instantiated authorization view classes) valid
/// and propagates bottom-up. This implements inference rules **U1** and
/// **U2** (equivalently **C1**/**C2** when conditional roots are
/// included).
pub fn mark_valid(dag: &Dag, roots: &[EqId]) -> Marking {
    let mut m = Marking::default();
    for &r in roots {
        m.mark(dag, r);
    }
    m.propagate(dag);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand, ExpandOptions};
    use fgac_algebra::{Plan, ScalarExpr};
    use fgac_types::{Column, DataType, Schema};

    fn grades() -> Plan {
        Plan::scan(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int),
            ]),
        )
    }

    fn my_grades() -> Plan {
        // σ_{student_id='11'}(grades) — instantiated MyGrades.
        grades().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("11"),
        )])
    }

    #[test]
    fn query_matching_view_is_valid() {
        // Section 5.2: "select grade from Grades where student-id='11'"
        // is a projection of the instantiated MyGrades.
        let mut dag = Dag::new();
        let query = my_grades().project(vec![ScalarExpr::col(2)]);
        let q = dag.insert_plan(&query);
        let v = dag.insert_plan(&my_grades());
        let marking = mark_valid(&dag, &[v]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn scan_is_not_vacuously_valid() {
        let mut dag = Dag::new();
        let q = dag.insert_plan(&grades());
        let v = dag.insert_plan(&my_grades());
        let marking = mark_valid(&dag, &[v]);
        // The raw scan must NOT be valid from a selection view.
        assert!(!marking.is_valid(&dag, q));
    }

    #[test]
    fn whole_table_view_authorizes_scan() {
        let mut dag = Dag::new();
        let q = dag.insert_plan(&grades());
        let v = dag.insert_plan(&grades()); // view body: select * from grades
        let marking = mark_valid(&dag, &[v]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn expression_over_two_views_is_valid() {
        // U2 with n=2: join of two valid views.
        let mut dag = Dag::new();
        let reg = Plan::scan(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
        );
        let v1 = my_grades();
        let v2 = reg.clone().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("11"),
        )]);
        let query = v1.clone().join(
            v2.clone(),
            vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(4))],
        );
        let q = dag.insert_plan(&query);
        let r1 = dag.insert_plan(&v1);
        let r2 = dag.insert_plan(&v2);
        let marking = mark_valid(&dag, &[r1, r2]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn stronger_selection_validates_through_subsumption() {
        // Query σ_{sid='11' ∧ grade>90}(grades); view σ_{sid='11'}(grades).
        // Needs the subsumption derivation added by expansion.
        let mut dag = Dag::new();
        let query = grades().select(vec![
            ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit("11")),
            ScalarExpr::cmp(fgac_algebra::CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(90)),
        ]);
        let q = dag.insert_plan(&query);
        let v = dag.insert_plan(&my_grades());
        expand(&mut dag, &ExpandOptions::default());
        let marking = mark_valid(&dag, &[v]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn unrelated_selection_stays_invalid() {
        let mut dag = Dag::new();
        let query = grades().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("12"), // someone else's grades
        )]);
        let q = dag.insert_plan(&query);
        let v = dag.insert_plan(&my_grades());
        expand(&mut dag, &ExpandOptions::default());
        let marking = mark_valid(&dag, &[v]);
        assert!(!marking.is_valid(&dag, q));
    }
}
