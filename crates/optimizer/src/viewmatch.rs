//! Validity marking (Section 5.6.2).
//!
//! "The root equivalence nodes for all views are marked as valid. The
//! following rules are applied bottom-up to the DAG:
//!   1. An equivalence node is marked as valid if any of its children
//!      operation nodes is marked as valid.
//!   2. An operation node is marked as valid if all its children
//!      equivalence nodes are marked as valid."
//!
//! A `Scan` operation has no children and would be vacuously valid, so
//! scans are explicitly *never* valid through propagation — a base table
//! is visible only if some authorization view class (e.g. `SELECT * FROM
//! t`, whose normalized plan *is* the scan) is marked directly.

use crate::dag::{Dag, EqId, Operator};
use std::collections::{HashMap, HashSet};

/// Why a class became valid — the marking's provenance, kept so an
/// acceptance can name the view roots it ultimately rests on.
#[derive(Debug, Clone)]
enum Why {
    /// Marked directly as root `i` of the `mark_valid` root list.
    Root(usize),
    /// Marked directly outside the root list (U3/C3 derivations, probe
    /// inserts); carries no root index.
    Direct,
    /// Marked by propagation through an operation node whose children
    /// are these (canonical) classes.
    Op(Vec<EqId>),
}

/// The set of equivalence classes inferred computable from the marked
/// roots.
#[derive(Debug, Clone, Default)]
pub struct Marking {
    valid: HashSet<EqId>,
    why: HashMap<EqId, Why>,
}

impl Marking {
    /// True if the class is marked valid.
    pub fn is_valid(&self, dag: &Dag, class: EqId) -> bool {
        self.valid.contains(&dag.find(class))
    }

    /// Marks a class valid directly (used by U3/C3 derivations, which
    /// justify validity outside the bottom-up propagation).
    pub fn mark(&mut self, dag: &Dag, class: EqId) {
        let c = dag.find(class);
        if self.valid.insert(c) {
            self.why.insert(c, Why::Direct);
        }
    }

    /// Marks a class valid as root number `index` (of the root list
    /// passed to [`mark_valid`]), so provenance can name it later.
    pub fn mark_root(&mut self, dag: &Dag, class: EqId, index: usize) {
        let c = dag.find(class);
        self.valid.insert(c);
        // A root annotation wins over a plain Direct mark: it carries
        // strictly more information.
        match self.why.get(&c) {
            Some(Why::Root(_)) => {}
            _ => {
                self.why.insert(c, Why::Root(index));
            }
        }
    }

    /// Number of valid classes.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// The indices (into the `mark_valid` root list) of the roots the
    /// validity of `class` transitively rests on, sorted and deduped.
    /// Empty when the class is not valid or its provenance reaches only
    /// direct (non-root) marks.
    pub fn supporting_roots(&self, dag: &Dag, class: EqId) -> Vec<usize> {
        let start = dag.find(class);
        if !self.valid.contains(&start) {
            return Vec::new();
        }
        let mut seen: HashSet<EqId> = HashSet::new();
        let mut stack = vec![start];
        let mut roots = Vec::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            match self.why.get(&c) {
                Some(Why::Root(i)) => roots.push(*i),
                Some(Why::Op(children)) => {
                    for &ch in children {
                        stack.push(dag.find(ch));
                    }
                }
                Some(Why::Direct) | None => {}
            }
        }
        roots.sort_unstable();
        roots.dedup();
        roots
    }

    /// The directly-marked (non-root) classes the validity of `class`
    /// transitively rests on — the U3/C3-derived marks, whose
    /// justification lives outside the DAG propagation. Sorted and
    /// deduped; empty when the class is invalid.
    pub fn supporting_marks(&self, dag: &Dag, class: EqId) -> Vec<EqId> {
        let start = dag.find(class);
        if !self.valid.contains(&start) {
            return Vec::new();
        }
        let mut seen: HashSet<EqId> = HashSet::new();
        let mut stack = vec![start];
        let mut marks = Vec::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            match self.why.get(&c) {
                Some(Why::Direct) => marks.push(c),
                Some(Why::Op(children)) => {
                    for &ch in children {
                        stack.push(dag.find(ch));
                    }
                }
                Some(Why::Root(_)) | None => {}
            }
        }
        marks.sort_unstable();
        marks.dedup();
        marks
    }

    /// Re-canonicalizes the marking after DAG mutations and re-runs the
    /// propagation to a fixpoint.
    pub fn propagate(&mut self, dag: &Dag) {
        // Re-canonicalize ids (merges may have changed representatives).
        self.valid = self.valid.iter().map(|&e| dag.find(e)).collect();
        let old_why = std::mem::take(&mut self.why);
        for (c, why) in old_why {
            let canon = dag.find(c);
            // On a merge collision prefer the root annotation, then any
            // existing entry (provenance only needs one justification).
            match (self.why.get(&canon), &why) {
                (Some(Why::Root(_)), _) => {}
                (Some(_), Why::Root(_)) | (None, _) => {
                    self.why.insert(canon, why);
                }
                (Some(_), _) => {}
            }
        }
        loop {
            let mut changed = false;
            for op_id in dag.all_ops() {
                let node = dag.op(op_id);
                if matches!(node.op, Operator::Scan { .. }) {
                    continue;
                }
                let class = dag.find(node.class);
                if self.valid.contains(&class) {
                    continue;
                }
                if node
                    .children
                    .iter()
                    .all(|&c| self.valid.contains(&dag.find(c)))
                {
                    self.valid.insert(class);
                    self.why.insert(
                        class,
                        Why::Op(node.children.iter().map(|&c| dag.find(c)).collect()),
                    );
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }
}

/// Marks the given roots (instantiated authorization view classes) valid
/// and propagates bottom-up. This implements inference rules **U1** and
/// **U2** (equivalently **C1**/**C2** when conditional roots are
/// included).
pub fn mark_valid(dag: &Dag, roots: &[EqId]) -> Marking {
    let mut m = Marking::default();
    for (i, &r) in roots.iter().enumerate() {
        m.mark_root(dag, r, i);
    }
    m.propagate(dag);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand, ExpandOptions};
    use fgac_algebra::{Plan, ScalarExpr};
    use fgac_types::{Column, DataType, Schema};

    fn grades() -> Plan {
        Plan::scan(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int),
            ]),
        )
    }

    fn my_grades() -> Plan {
        // σ_{student_id='11'}(grades) — instantiated MyGrades.
        grades().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("11"),
        )])
    }

    #[test]
    fn query_matching_view_is_valid() {
        // Section 5.2: "select grade from Grades where student-id='11'"
        // is a projection of the instantiated MyGrades.
        let mut dag = Dag::new();
        let query = my_grades().project(vec![ScalarExpr::col(2)]);
        let q = dag.insert_plan(&query);
        let v = dag.insert_plan(&my_grades());
        let marking = mark_valid(&dag, &[v]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn scan_is_not_vacuously_valid() {
        let mut dag = Dag::new();
        let q = dag.insert_plan(&grades());
        let v = dag.insert_plan(&my_grades());
        let marking = mark_valid(&dag, &[v]);
        // The raw scan must NOT be valid from a selection view.
        assert!(!marking.is_valid(&dag, q));
    }

    #[test]
    fn whole_table_view_authorizes_scan() {
        let mut dag = Dag::new();
        let q = dag.insert_plan(&grades());
        let v = dag.insert_plan(&grades()); // view body: select * from grades
        let marking = mark_valid(&dag, &[v]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn expression_over_two_views_is_valid() {
        // U2 with n=2: join of two valid views.
        let mut dag = Dag::new();
        let reg = Plan::scan(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
        );
        let v1 = my_grades();
        let v2 = reg.clone().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("11"),
        )]);
        let query = v1.clone().join(
            v2.clone(),
            vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(4))],
        );
        let q = dag.insert_plan(&query);
        let r1 = dag.insert_plan(&v1);
        let r2 = dag.insert_plan(&v2);
        let marking = mark_valid(&dag, &[r1, r2]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn stronger_selection_validates_through_subsumption() {
        // Query σ_{sid='11' ∧ grade>90}(grades); view σ_{sid='11'}(grades).
        // Needs the subsumption derivation added by expansion.
        let mut dag = Dag::new();
        let query = grades().select(vec![
            ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit("11")),
            ScalarExpr::cmp(fgac_algebra::CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(90)),
        ]);
        let q = dag.insert_plan(&query);
        let v = dag.insert_plan(&my_grades());
        expand(&mut dag, &ExpandOptions::default());
        let marking = mark_valid(&dag, &[v]);
        assert!(marking.is_valid(&dag, q));
    }

    #[test]
    fn provenance_names_the_supporting_roots() {
        // Join of two valid views: the query's provenance must reach
        // both roots, and only those.
        let mut dag = Dag::new();
        let reg = Plan::scan(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
        );
        let v1 = my_grades();
        let v2 = reg.select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("11"),
        )]);
        let unrelated = grades().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("99"),
        )]);
        let query = v1.clone().join(
            v2.clone(),
            vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(4))],
        );
        let q = dag.insert_plan(&query);
        let r1 = dag.insert_plan(&v1);
        let r2 = dag.insert_plan(&v2);
        let r3 = dag.insert_plan(&unrelated);
        let marking = mark_valid(&dag, &[r1, r2, r3]);
        assert!(marking.is_valid(&dag, q));
        assert_eq!(marking.supporting_roots(&dag, q), vec![0, 1]);
        // An invalid class has no supporting roots.
        let lone = dag.insert_plan(&grades());
        assert_eq!(marking.supporting_roots(&dag, lone), Vec::<usize>::new());
    }

    #[test]
    fn unrelated_selection_stays_invalid() {
        let mut dag = Dag::new();
        let query = grades().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("12"), // someone else's grades
        )]);
        let q = dag.insert_plan(&query);
        let v = dag.insert_plan(&my_grades());
        expand(&mut dag, &ExpandOptions::default());
        let marking = mark_valid(&dag, &[v]);
        assert!(!marking.is_valid(&dag, q));
    }
}
