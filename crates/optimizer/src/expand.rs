//! DAG expansion: apply equivalence rules to a fixpoint (Section 5.6.1,
//! Figure 1(c)) under a node budget.

use crate::dag::{Dag, DagStats, OpId};
use crate::rules;

/// Expansion controls.
#[derive(Debug, Clone, Copy)]
pub struct ExpandOptions {
    /// Stop expanding when the DAG reaches this many operation nodes
    /// (the paper notes the DAG is "at worst exponential in the number of
    /// relations" — the budget keeps worst cases bounded).
    pub max_ops: usize,
    /// Apply selection-subsumption / aggregate-rollup derivations
    /// (Section 5.6.1's "subsumption derivations").
    pub subsumption: bool,
    /// Maximum full passes over the DAG.
    pub max_passes: usize,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            max_ops: 20_000,
            subsumption: true,
            max_passes: 12,
        }
    }
}

/// Expands the DAG to a fixpoint (or until budget). Returns final stats.
pub fn expand(dag: &mut Dag, opts: &ExpandOptions) -> DagStats {
    for _pass in 0..opts.max_passes {
        let mut changed = 0;
        let op_count_before = dag.stats().op_nodes;

        // Structural rules over a snapshot of current ops.
        let ops: Vec<OpId> = dag.all_ops().collect();
        for op in ops {
            if dag.stats().op_nodes >= opts.max_ops {
                return dag.stats();
            }
            changed += rules::apply_structural(dag, op);
        }

        // Class-level derivations.
        if opts.subsumption {
            let classes = dag.classes();
            for class in classes {
                if dag.stats().op_nodes >= opts.max_ops {
                    return dag.stats();
                }
                // The class may have been merged away during this loop.
                if dag.find(class) != class {
                    continue;
                }
                changed += rules::selection_subsumption(dag, class);
                changed += rules::aggregate_rollup(dag, class);
            }
        }

        if changed == 0 && dag.stats().op_nodes == op_count_before {
            break;
        }
    }
    dag.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Operator;
    use fgac_algebra::{Plan, ScalarExpr};
    use fgac_types::{Column, DataType, Schema};

    fn scan(t: &str) -> Plan {
        Plan::scan(
            t,
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Int),
            ]),
        )
    }

    /// Figure 1(c): the chain join A ⋈ B ⋈ C expands to contain all
    /// three join orders (modulo commutativity): (AB)C, A(BC), and the
    /// (AC)B order reached through commute+associate chains.
    #[test]
    fn figure1_expansion_produces_all_join_orders() {
        let mut dag = Dag::new();
        let p = scan("a")
            .join(
                scan("b"),
                vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2))],
            )
            .join(
                scan("c"),
                vec![ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(4))],
            );
        let root = dag.insert_plan(&p);
        expand(&mut dag, &ExpandOptions::default());

        // Gather the table-sets of every Join op in the DAG to see which
        // groupings were generated.
        let mut pair_groupings = std::collections::BTreeSet::new();
        for op in dag.all_ops() {
            let node = dag.op(op);
            if !matches!(node.op, Operator::Join { .. }) {
                continue;
            }
            let mut tables: Vec<String> = Vec::new();
            for &c in &node.children {
                if let Some(plan) = crate::extract_any(&dag, c) {
                    let mut t: Vec<String> =
                        plan.scanned_tables().iter().map(|i| i.to_string()).collect();
                    t.sort();
                    tables.push(t.join("+"));
                }
            }
            if tables.iter().any(|t| t.contains('+')) || tables.len() == 2 {
                pair_groupings.insert(tables.join(" JOIN "));
            }
        }
        let all: String = pair_groupings.iter().cloned().collect::<Vec<_>>().join("; ");
        // (A⋈B) and (B⋈C) sub-joins must both exist.
        assert!(all.contains("a JOIN b"), "groupings: {all}");
        assert!(all.contains("b JOIN c"), "groupings: {all}");

        // The root class must have gained alternatives.
        assert!(dag.ops_of(root).len() >= 2);
    }

    #[test]
    fn expansion_is_idempotent_at_fixpoint() {
        let mut dag = Dag::new();
        let p = scan("a").join(
            scan("b"),
            vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2))],
        );
        dag.insert_plan(&p);
        let s1 = expand(&mut dag, &ExpandOptions::default());
        let s2 = expand(&mut dag, &ExpandOptions::default());
        assert_eq!(s1, s2);
    }

    #[test]
    fn budget_caps_expansion() {
        let mut dag = Dag::new();
        // 6-relation chain join.
        let mut p = scan("t0");
        for i in 1..6 {
            let off = 2 * i;
            p = p.join(
                scan(&format!("t{i}")),
                vec![ScalarExpr::eq(
                    ScalarExpr::col(off - 1),
                    ScalarExpr::col(off),
                )],
            );
        }
        dag.insert_plan(&p);
        let stats = expand(
            &mut dag,
            &ExpandOptions {
                max_ops: 500,
                ..Default::default()
            },
        );
        assert!(stats.op_nodes <= 600, "stats: {stats:?}");
    }
}
