//! # fgac-optimizer
//!
//! A Volcano-style optimizer (Graefe & McKenna \[13\]) extended with the
//! multi-query-optimization DAG machinery of Roy et al. \[25\], as the
//! paper's Section 5.6 prescribes for validity testing:
//!
//! * [`Dag`] — the AND-OR DAG: *equivalence nodes* (OR) hold alternative
//!   *operation nodes* (AND); hash-consing **unifies** identical
//!   subexpressions, which is exactly how authorization-view DAGs are
//!   matched against the query DAG (Section 5.6.2).
//! * [`expand`] — applies algebraic equivalence rules (join
//!   commutativity/associativity, selection push/split/merge,
//!   projection transposition) to a fixpoint under a node budget,
//!   producing the *expanded DAG* of Figure 1(c).
//! * Subsumption derivations (Section 5.6.1): a selection can be
//!   answered from a weaker selection (via the implication prover), and
//!   a coarser aggregation from a finer one.
//! * [`mark_valid`] — the bottom-up validity marking of Section 5.6.2:
//!   an equivalence node is valid if any child operation is valid; an
//!   operation node is valid if all its children are valid.
//! * [`extract_best`] — classic cost-based plan extraction, used both to
//!   run queries and to measure validity-checking overhead *relative to*
//!   normal optimization (experiment E2).

mod cost;
mod dag;
mod expand;
mod extract;
pub mod rules;
mod viewmatch;

pub use cost::{CostModel, TableStats};
pub use dag::{Dag, DagStats, EqId, OpId, OpNode, Operator};
pub use expand::{expand, ExpandOptions};
pub use extract::{extract_any, extract_best};
pub use viewmatch::{mark_valid, Marking};
