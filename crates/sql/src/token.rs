//! Token definitions for the SQL lexer.

use fgac_types::Value;
use std::fmt;

/// SQL keywords recognized by the lexer.
///
/// Keywords are matched case-insensitively; anything not listed here
/// lexes as an identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    As,
    And,
    Or,
    Not,
    Is,
    Null,
    True,
    False,
    Between,
    In,
    Like,
    Join,
    Inner,
    On,
    Create,
    Table,
    View,
    Authorization,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Authorize,
    Grant,
    Primary,
    Key,
    Foreign,
    References,
    Inclusion,
    Dependency,
    Integer,
    Varchar,
    Double,
    Boolean,
    Old,
    New,
    Union,
    All,
    Analyze,
    Policy,
    For,
    To,
    Role,
    Constraint,
    Explain,
    Flow,
}

impl Keyword {
    /// Parses a keyword from a raw word, case-insensitively.
    pub fn from_word(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IS" => Is,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "BETWEEN" => Between,
            "IN" => In,
            "LIKE" => Like,
            "JOIN" => Join,
            "INNER" => Inner,
            "ON" => On,
            "CREATE" => Create,
            "TABLE" => Table,
            "VIEW" => View,
            "AUTHORIZATION" => Authorization,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "UPDATE" => Update,
            "SET" => Set,
            "DELETE" => Delete,
            "AUTHORIZE" => Authorize,
            "GRANT" => Grant,
            "PRIMARY" => Primary,
            "KEY" => Key,
            "FOREIGN" => Foreign,
            "REFERENCES" => References,
            "INCLUSION" => Inclusion,
            "DEPENDENCY" => Dependency,
            "INTEGER" | "INT" => Integer,
            "VARCHAR" | "TEXT" | "STRING" => Varchar,
            "DOUBLE" | "FLOAT" | "REAL" => Double,
            "BOOLEAN" | "BOOL" => Boolean,
            "OLD" => Old,
            "NEW" => New,
            "UNION" => Union,
            "ALL" => All,
            "ANALYZE" => Analyze,
            "POLICY" => Policy,
            "FOR" => For,
            "TO" => To,
            "ROLE" => Role,
            "CONSTRAINT" => Constraint,
            "EXPLAIN" => Explain,
            "FLOW" => Flow,
            _ => return None,
        })
    }

    /// Context-sensitive keywords: words that head the `GRANT`/`ANALYZE
    /// POLICY` statements but stay valid identifiers everywhere else,
    /// so pre-existing schemas and queries using e.g. a column named
    /// `role` or a table named `policy` keep parsing. Returns the
    /// identifier spelling (the lexer lowercases identifiers).
    pub fn soft_ident(self) -> Option<&'static str> {
        use Keyword::*;
        Some(match self {
            Analyze => "analyze",
            Policy => "policy",
            For => "for",
            To => "to",
            Role => "role",
            Constraint => "constraint",
            Explain => "explain",
            Flow => "flow",
            _ => return None,
        })
    }
}

/// A lexical token with its source offset (byte index), used for error
/// reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// The kinds of tokens the lexer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    /// Unquoted identifier (already lowercased by the lexer).
    Ident(String),
    /// A literal value: string, integer, double.
    Literal(Value),
    /// Session parameter `$name` (Section 2: `$user-id` etc.).
    Param(String),
    /// Access-pattern parameter `$$name` (Section 2: `$$1`).
    AccessParam(String),
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Literal(v) => write!(f, "literal {v}"),
            TokenKind::Param(p) => write!(f, "${p}"),
            TokenKind::AccessParam(p) => write!(f, "$${p}"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("int"), Some(Keyword::Integer));
        assert_eq!(Keyword::from_word("grades"), None);
    }
}
