//! Hand-written SQL lexer.

use crate::token::{Keyword, Token, TokenKind};
use fgac_types::{Error, Result, Value};

/// Lexes `input` into a token stream terminated by [`TokenKind::Eof`].
///
/// Supported lexical forms:
/// * identifiers and keywords (`[A-Za-z_][A-Za-z0-9_]*`), `"quoted"`
///   identifiers;
/// * string literals `'...'` with doubled-quote escaping;
/// * integer and double literals;
/// * session parameters `$name` and access-pattern parameters `$$name`;
/// * operators and punctuation; `--` line comments.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    Lexer {
        input: input.as_bytes(),
        src: input,
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let offset = self.pos;
            let Some(&b) = self.input.get(self.pos) else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    offset,
                });
                return Ok(tokens);
            };
            let kind = match b {
                b'\'' => self.string_literal()?,
                b'"' => self.quoted_ident()?,
                b'$' => self.parameter()?,
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                _ => self.operator()?,
            };
            tokens.push(Token { kind, offset });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            while self
                .input
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            if self.input[self.pos..].starts_with(b"--") {
                while self.input.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn string_literal(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.input.get(self.pos) {
                None => {
                    return Err(Error::Parse(format!(
                        "unterminated string literal starting at byte {start}"
                    )))
                }
                Some(b'\'') => {
                    if self.input.get(self.pos + 1) == Some(&b'\'') {
                        out.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::Literal(Value::Str(out)));
                    }
                }
                Some(_) => {
                    // Advance one full UTF-8 character. Indexing by a
                    // checked `get` so a mid-character position surfaces
                    // as a parse error instead of a slice panic.
                    let ch = self
                        .src
                        .get(self.pos..)
                        .and_then(|rest| rest.chars().next())
                        .ok_or_else(|| {
                            Error::Parse(format!(
                                "malformed UTF-8 at byte {} in string literal",
                                self.pos
                            ))
                        })?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn quoted_ident(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1;
        let begin = self.pos;
        while self.input.get(self.pos).is_some_and(|&b| b != b'"') {
            self.pos += 1;
        }
        if self.input.get(self.pos).is_none() {
            return Err(Error::Parse(format!(
                "unterminated quoted identifier at byte {start}"
            )));
        }
        let name = self.src[begin..self.pos].to_ascii_lowercase();
        self.pos += 1;
        Ok(TokenKind::Ident(name))
    }

    fn parameter(&mut self) -> Result<TokenKind> {
        let access = self.input.get(self.pos + 1) == Some(&b'$');
        self.pos += if access { 2 } else { 1 };
        let begin = self.pos;
        while self
            .input
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        if begin == self.pos {
            return Err(Error::Parse(format!(
                "empty parameter name at byte {begin}"
            )));
        }
        let name = self.src[begin..self.pos].to_ascii_lowercase();
        Ok(if access {
            TokenKind::AccessParam(name)
        } else {
            TokenKind::Param(name)
        })
    }

    fn number(&mut self) -> Result<TokenKind> {
        let begin = self.pos;
        while self.input.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.input.get(self.pos) == Some(&b'.')
            && self
                .input
                .get(self.pos + 1)
                .is_some_and(|b| b.is_ascii_digit())
        {
            is_double = true;
            self.pos += 1;
            while self.input.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.input.get(self.pos), Some(b'e') | Some(b'E')) {
            let mut probe = self.pos + 1;
            if matches!(self.input.get(probe), Some(b'+') | Some(b'-')) {
                probe += 1;
            }
            if self.input.get(probe).is_some_and(|b| b.is_ascii_digit()) {
                is_double = true;
                self.pos = probe;
                while self.input.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[begin..self.pos];
        if is_double {
            text.parse::<f64>()
                .map(|d| TokenKind::Literal(Value::Double(d)))
                .map_err(|e| Error::Parse(format!("bad double literal `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(|i| TokenKind::Literal(Value::Int(i)))
                .map_err(|e| Error::Parse(format!("bad integer literal `{text}`: {e}")))
        }
    }

    fn word(&mut self) -> TokenKind {
        let begin = self.pos;
        while self
            .input
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let text = &self.src[begin..self.pos];
        match Keyword::from_word(text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(text.to_ascii_lowercase()),
        }
    }

    fn operator(&mut self) -> Result<TokenKind> {
        let b = self.input[self.pos];
        let two = self.input.get(self.pos + 1).copied();
        let (kind, len) = match (b, two) {
            (b'<', Some(b'=')) => (TokenKind::LtEq, 2),
            (b'<', Some(b'>')) => (TokenKind::NotEq, 2),
            (b'!', Some(b'=')) => (TokenKind::NotEq, 2),
            (b'>', Some(b'=')) => (TokenKind::GtEq, 2),
            (b'<', _) => (TokenKind::Lt, 1),
            (b'>', _) => (TokenKind::Gt, 1),
            (b'=', _) => (TokenKind::Eq, 1),
            (b'+', _) => (TokenKind::Plus, 1),
            (b'-', _) => (TokenKind::Minus, 1),
            (b'*', _) => (TokenKind::Star, 1),
            (b'/', _) => (TokenKind::Slash, 1),
            (b'%', _) => (TokenKind::Percent, 1),
            (b'(', _) => (TokenKind::LParen, 1),
            (b')', _) => (TokenKind::RParen, 1),
            (b',', _) => (TokenKind::Comma, 1),
            (b'.', _) => (TokenKind::Dot, 1),
            (b';', _) => (TokenKind::Semicolon, 1),
            _ => {
                return Err(Error::Parse(format!(
                    "unexpected character `{}` at byte {}",
                    self.src[self.pos..].chars().next().unwrap_or('?'),
                    self.pos
                )))
            }
        };
        self.pos += len;
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_select_star() {
        assert_eq!(
            kinds("select * from Grades"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Star,
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("grades".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_parameters() {
        assert_eq!(
            kinds("$user_id $$1"),
            vec![
                TokenKind::Param("user_id".into()),
                TokenKind::AccessParam("1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_with_escape() {
        assert_eq!(
            kinds("'o''brien'"),
            vec![
                TokenKind::Literal(Value::Str("o'brien".into())),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 2.5 1e3"),
            vec![
                TokenKind::Literal(Value::Int(42)),
                TokenKind::Literal(Value::Double(2.5)),
                TokenKind::Literal(Value::Double(1000.0)),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_after_integer_is_projection() {
        // `g.grade` style access must not eat the dot into a float.
        assert_eq!(
            kinds("g.grade"),
            vec![
                TokenKind::Ident("g".into()),
                TokenKind::Dot,
                TokenKind::Ident("grade".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("select -- comment\n 1"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Literal(Value::Int(1)),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn empty_param_errors() {
        assert!(lex("$ ").is_err());
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(
            kinds("\"Order\""),
            vec![TokenKind::Ident("order".into()), TokenKind::Eof]
        );
    }
}
