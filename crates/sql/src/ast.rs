//! Abstract syntax tree for the fgac SQL dialect.

use fgac_types::{DataType, Ident, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Query(Query),
    /// `CREATE TABLE name (col type [NOT NULL], ..., PRIMARY KEY (...),
    /// FOREIGN KEY (...) REFERENCES t (...))`.
    CreateTable(CreateTable),
    /// `CREATE [AUTHORIZATION] VIEW name AS query` (Section 2). The
    /// `authorization` flag distinguishes plain views from authorization
    /// views; parameterized/access-pattern views are authorization views
    /// whose body mentions `$`/`$$` parameters.
    CreateView(CreateView),
    /// `CREATE INCLUSION DEPENDENCY name ON src (cols) [WHERE p]
    /// REFERENCES dst (cols) [WHERE p]` — the integrity constraints used
    /// by inference rules U3a–U3c (Section 5.3).
    CreateInclusionDependency(CreateInclusionDependency),
    /// `AUTHORIZE {INSERT|UPDATE|DELETE} ON table [(columns)] WHERE p`
    /// (Section 4.4).
    Authorize(Authorize),
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`.
    Insert(Insert),
    /// `UPDATE t SET col = expr, ... [WHERE p]`.
    Update(Update),
    /// `DELETE FROM t [WHERE p]`.
    Delete(Delete),
    /// `GRANT {VIEW|CONSTRAINT|ROLE} name TO principal` — the SQL
    /// surface for the grant tables of Section 4.1 (views granted to
    /// users or roles, constraint visibility for U3a, role membership).
    Grant(Grant),
    /// `ANALYZE POLICY [FOR principal]` — run the grant-time policy
    /// static analyzer over the installed policy set and return its
    /// diagnostics as rows.
    AnalyzePolicy(AnalyzePolicy),
    /// `ANALYZE FLOW [FOR principal]` — run the whole-policy
    /// information-flow analysis (disclosure lattices, F-codes) and
    /// return its findings as rows.
    AnalyzeFlow(AnalyzeFlow),
    /// `EXPLAIN AUTHORIZATION <query>` — run the Non-Truman validity
    /// check with certificate emission, re-verify the certificate with
    /// the independent checker, and return the derivation steps as rows.
    ExplainAuthorization(ExplainAuthorization),
}

/// `CREATE TABLE` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: Ident,
    pub columns: Vec<ColumnDef>,
    pub primary_key: Option<Vec<Ident>>,
    pub foreign_keys: Vec<ForeignKeyDef>,
}

/// One column in a `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: Ident,
    pub ty: DataType,
    pub nullable: bool,
}

/// `FOREIGN KEY (cols) REFERENCES table (cols)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKeyDef {
    pub columns: Vec<Ident>,
    pub parent_table: Ident,
    pub parent_columns: Vec<Ident>,
}

/// `CREATE [AUTHORIZATION] VIEW`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    pub name: Ident,
    pub authorization: bool,
    pub query: Query,
}

/// A conditional inclusion dependency: every tuple of
/// `σ_{src_filter}(src)` projected on `src_columns` appears in
/// `σ_{dst_filter}(dst)` projected on `dst_columns`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateInclusionDependency {
    pub name: Ident,
    pub src_table: Ident,
    pub src_columns: Vec<Ident>,
    pub src_filter: Option<Expr>,
    pub dst_table: Ident,
    pub dst_columns: Vec<Ident>,
    pub dst_filter: Option<Expr>,
}

/// The DML action being authorized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmlAction {
    Insert,
    Update,
    Delete,
}

impl std::fmt::Display for DmlAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmlAction::Insert => write!(f, "INSERT"),
            DmlAction::Update => write!(f, "UPDATE"),
            DmlAction::Delete => write!(f, "DELETE"),
        }
    }
}

/// `AUTHORIZE action ON table [(columns)] WHERE condition` (Section 4.4).
///
/// The condition may reference `OLD(col)` / `NEW(col)` for updates, bare
/// columns (meaning the inserted/deleted tuple, or NEW for updates), and
/// `$` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Authorize {
    pub action: DmlAction,
    pub table: Ident,
    /// For UPDATE: the set of columns the authorization covers (empty =
    /// all columns).
    pub columns: Vec<Ident>,
    pub condition: Expr,
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: Ident,
    pub columns: Vec<Ident>,
    pub rows: Vec<Vec<Expr>>,
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: Ident,
    pub assignments: Vec<(Ident, Expr)>,
    pub filter: Option<Expr>,
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: Ident,
    pub filter: Option<Expr>,
}

/// What a `GRANT` statement grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrantKind {
    /// `GRANT VIEW v TO p`: the authorization view becomes available to
    /// the principal's validity checks.
    View,
    /// `GRANT CONSTRAINT c TO p`: the integrity constraint becomes
    /// visible to the principal (U3a condition 2).
    Constraint,
    /// `GRANT ROLE r TO p`: role membership; the principal's effective
    /// grant set is the union over its roles.
    Role,
}

impl std::fmt::Display for GrantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrantKind::View => write!(f, "VIEW"),
            GrantKind::Constraint => write!(f, "CONSTRAINT"),
            GrantKind::Role => write!(f, "ROLE"),
        }
    }
}

/// `GRANT {VIEW|CONSTRAINT|ROLE} object TO principal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant {
    pub kind: GrantKind,
    /// The view/constraint/role being granted.
    pub object: Ident,
    /// The receiving principal (a user id or role name).
    pub principal: String,
}

/// `ANALYZE POLICY [FOR principal]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzePolicy {
    /// Restrict the analysis to one principal's effective grant set;
    /// `None` analyzes every principal in the grant tables.
    pub principal: Option<String>,
}

/// `ANALYZE FLOW [FOR principal]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeFlow {
    /// Restrict the flow analysis to one principal's disclosure
    /// lattice; `None` analyzes every principal in the grant tables.
    pub principal: Option<String>,
}

/// `EXPLAIN AUTHORIZATION <query>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainAuthorization {
    /// The query whose validity derivation is requested.
    pub query: Query,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(Ident),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<Ident> },
}

/// A table reference in `FROM`: `name [AS alias]`, plus any `JOIN ... ON`
/// chain hanging off it (inner joins only; the binder flattens these into
/// the from-list + conjuncts).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: Ident,
    pub alias: Option<Ident>,
    pub joins: Vec<Join>,
}

impl TableRef {
    pub fn named(name: impl Into<Ident>) -> Self {
        TableRef {
            name: name.into(),
            alias: None,
            joins: Vec::new(),
        }
    }

    /// The name this table is known by in the query (alias if present).
    pub fn binding_name(&self) -> &Ident {
        self.alias.as_ref().unwrap_or(&self.name)
    }
}

/// `JOIN table [AS alias] ON condition` (inner join).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: Ident,
    pub alias: Option<Ident>,
    pub on: Expr,
}

/// `ORDER BY expr [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub asc: bool,
}

/// Scalar / boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `[qualifier.]column`
    Column {
        qualifier: Option<Ident>,
        name: Ident,
    },
    /// A literal constant.
    Literal(Value),
    /// Session parameter `$name`, instantiated per access (Section 2).
    Param(String),
    /// Access-pattern parameter `$$name`, bindable to any value at query
    /// time (Section 2 / Section 6).
    AccessParam(String),
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// Function call — aggregates (`COUNT/SUM/AVG/MIN/MAX`) or the
    /// `OLD(...)`/`NEW(...)` tuple selectors of Section 4.4. `COUNT(*)`
    /// is a `Function` with `star = true` and empty `args`.
    Function {
        name: Ident,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
}

impl Expr {
    pub fn col(name: impl Into<Ident>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qcol(qualifier: impl Into<Ident>, name: impl Into<Ident>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Eq, right)
    }

    /// Visits every sub-expression (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// True if the expression mentions any `$` or `$$` parameter.
    pub fn has_params(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Param(_) | Expr::AccessParam(_)) {
                found = true;
            }
        });
        found
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinaryOp {
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::NotEq => BinaryOp::NotEq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => return None,
        })
    }

    /// The negated comparison (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negate(&self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::NotEq,
            BinaryOp::NotEq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::GtEq,
            BinaryOp::LtEq => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::LtEq,
            BinaryOp::GtEq => BinaryOp::Lt,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::and(
            Expr::eq(Expr::col("a"), Expr::lit(1)),
            Expr::eq(Expr::col("b"), Expr::Param("user_id".into())),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 7);
        assert!(e.has_params());
    }

    #[test]
    fn op_flip_and_negate() {
        assert_eq!(BinaryOp::Lt.flip(), Some(BinaryOp::Gt));
        assert_eq!(BinaryOp::Lt.negate(), Some(BinaryOp::GtEq));
        assert_eq!(BinaryOp::Add.flip(), None);
    }

    #[test]
    fn binding_name_prefers_alias() {
        let mut t = TableRef::named("grades");
        assert_eq!(t.binding_name(), &Ident::new("grades"));
        t.alias = Some(Ident::new("g"));
        assert_eq!(t.binding_name(), &Ident::new("g"));
    }
}
