//! # fgac-sql
//!
//! SQL front-end for the fgac engine: lexer, AST, recursive-descent
//! parser, and an AST printer (used for witness queries and round-trip
//! tests).
//!
//! The dialect covers the subset the paper works with (Section 5 assumes
//! no nested subqueries):
//!
//! * `SELECT [DISTINCT] ... FROM ... [WHERE] [GROUP BY] [HAVING]
//!   [ORDER BY] [LIMIT]`, comma joins and `[INNER] JOIN ... ON`,
//!   aggregates `COUNT/SUM/AVG/MIN/MAX` (and `COUNT(*)`).
//! * Session parameters `$user_id` and access-pattern parameters `$$1`
//!   (Section 2 of the paper).
//! * `CREATE TABLE` with `PRIMARY KEY` / `FOREIGN KEY ... REFERENCES`.
//! * `CREATE [AUTHORIZATION] VIEW v AS SELECT ...` (Section 2).
//! * `CREATE INCLUSION DEPENDENCY` — the total-participation integrity
//!   constraints that power inference rules U3a–U3c (Section 5.3).
//! * `AUTHORIZE {INSERT|UPDATE|DELETE} ON r [(cols)] WHERE p` with
//!   `OLD(...)`/`NEW(...)` references (Section 4.4).
//! * `INSERT` / `UPDATE` / `DELETE`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::*;
pub use parser::{parse_expr, parse_query, parse_statement, parse_statements};
pub use printer::{print_expr, print_query, print_statement};
