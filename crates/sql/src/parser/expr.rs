//! Expression parsing (precedence climbing).

use super::Parser;
use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::token::{Keyword, TokenKind};
use fgac_types::{Error, Ident, Result, Value};

/// Binding powers, loosest to tightest.
const P_OR: u8 = 1;
const P_AND: u8 = 2;
const P_NOT: u8 = 3;
const P_CMP: u8 = 4;
const P_ADD: u8 = 5;
const P_MUL: u8 = 6;

/// Maximum expression nesting before the parser gives up. Recursive
/// descent spends one native stack frame per level; bounding it turns a
/// pathological input (e.g. ten thousand opening parens) into a parse
/// error instead of a stack overflow that kills the process.
const MAX_EXPR_DEPTH: usize = 128;

impl Parser {
    /// Parses a full expression.
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.expr_bp(0)
    }

    fn expr_bp(&mut self, min_bp: u8) -> Result<Expr> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(Error::Parse(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        let result = self.expr_bp_at_depth(min_bp);
        self.depth -= 1;
        result
    }

    fn expr_bp_at_depth(&mut self, min_bp: u8) -> Result<Expr> {
        let mut lhs = self.prefix()?;
        loop {
            let (op_bp, op): (u8, Option<BinaryOp>) = match self.peek() {
                TokenKind::Keyword(Keyword::Or) => (P_OR, Some(BinaryOp::Or)),
                TokenKind::Keyword(Keyword::And) => (P_AND, Some(BinaryOp::And)),
                TokenKind::Eq => (P_CMP, Some(BinaryOp::Eq)),
                TokenKind::NotEq => (P_CMP, Some(BinaryOp::NotEq)),
                TokenKind::Lt => (P_CMP, Some(BinaryOp::Lt)),
                TokenKind::LtEq => (P_CMP, Some(BinaryOp::LtEq)),
                TokenKind::Gt => (P_CMP, Some(BinaryOp::Gt)),
                TokenKind::GtEq => (P_CMP, Some(BinaryOp::GtEq)),
                TokenKind::Plus => (P_ADD, Some(BinaryOp::Add)),
                TokenKind::Minus => (P_ADD, Some(BinaryOp::Sub)),
                TokenKind::Star => (P_MUL, Some(BinaryOp::Mul)),
                TokenKind::Slash => (P_MUL, Some(BinaryOp::Div)),
                TokenKind::Percent => (P_MUL, Some(BinaryOp::Mod)),
                TokenKind::Keyword(Keyword::Is) => (P_CMP, None),
                TokenKind::Keyword(Keyword::Between) => (P_CMP, None),
                TokenKind::Keyword(Keyword::In) => (P_CMP, None),
                TokenKind::Keyword(Keyword::Not)
                    if matches!(
                        self.peek2(),
                        TokenKind::Keyword(Keyword::Between) | TokenKind::Keyword(Keyword::In)
                    ) =>
                {
                    (P_CMP, None)
                }
                _ => break,
            };
            if op_bp < min_bp {
                break;
            }
            match op {
                Some(op) => {
                    self.advance();
                    let rhs = self.expr_bp(op_bp + 1)?;
                    lhs = Expr::binary(lhs, op, rhs);
                }
                None => lhs = self.postfix(lhs)?,
            }
        }
        Ok(lhs)
    }

    /// Handles `IS [NOT] NULL`, `[NOT] BETWEEN`, `[NOT] IN (...)`.
    fn postfix(&mut self, lhs: Expr) -> Result<Expr> {
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = self.eat_kw(Keyword::Not);
        if self.eat_kw(Keyword::Between) {
            // Desugar: a BETWEEN x AND y  =>  a >= x AND a <= y.
            let low = self.expr_bp(P_ADD)?;
            self.expect_kw(Keyword::And)?;
            let high = self.expr_bp(P_ADD)?;
            let e = Expr::and(
                Expr::binary(lhs.clone(), BinaryOp::GtEq, low),
                Expr::binary(lhs, BinaryOp::LtEq, high),
            );
            return Ok(negate_if(e, negated));
        }
        if self.eat_kw(Keyword::In) {
            self.expect(&TokenKind::LParen)?;
            if self.peek_kw(Keyword::Select) {
                return Err(Error::Unsupported(
                    "nested subqueries are not supported (the paper's Section 5 \
                     assumes subquery-free queries); rewrite using a join"
                        .into(),
                ));
            }
            // Desugar: a IN (v1, v2) => a = v1 OR a = v2.
            let mut e = Expr::eq(lhs.clone(), self.expr()?);
            while self.eat(&TokenKind::Comma) {
                e = Expr::binary(e, BinaryOp::Or, Expr::eq(lhs.clone(), self.expr()?));
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(negate_if(e, negated));
        }
        Err(self.unexpected("IS, BETWEEN or IN"))
    }

    fn prefix(&mut self) -> Result<Expr> {
        // Context-sensitive keywords (ANALYZE, POLICY, FOR, TO, ROLE,
        // CONSTRAINT) stay valid in expression position as column or
        // function names.
        let head = match self.peek().clone() {
            TokenKind::Keyword(k) => match k.soft_ident() {
                Some(word) => TokenKind::Ident(word.to_string()),
                None => TokenKind::Keyword(k),
            },
            t => t,
        };
        match head {
            TokenKind::Keyword(Keyword::Not) => {
                self.advance();
                let e = self.expr_bp(P_NOT)?;
                Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(e),
                })
            }
            TokenKind::Minus => {
                self.advance();
                // Fold negation into numeric literals for cleaner ASTs.
                match self.expr_bp(P_MUL + 1)? {
                    Expr::Literal(Value::Int(i)) => Ok(Expr::lit(-i)),
                    Expr::Literal(Value::Double(d)) => Ok(Expr::lit(-d)),
                    e => Ok(Expr::Unary {
                        op: UnaryOp::Neg,
                        expr: Box::new(e),
                    }),
                }
            }
            TokenKind::Plus => {
                self.advance();
                self.expr_bp(P_MUL + 1)
            }
            TokenKind::LParen => {
                self.advance();
                if self.peek_kw(Keyword::Select) {
                    return Err(Error::Unsupported(
                        "nested subqueries are not supported (the paper's Section 5 \
                         assumes subquery-free queries); rewrite using a join"
                            .into(),
                    ));
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Literal(v) => {
                self.advance();
                Ok(Expr::Literal(v))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::lit(true))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::lit(false))
            }
            TokenKind::Param(name) => {
                self.advance();
                Ok(Expr::Param(name))
            }
            TokenKind::AccessParam(name) => {
                self.advance();
                Ok(Expr::AccessParam(name))
            }
            TokenKind::Keyword(kw @ (Keyword::Old | Keyword::New)) => {
                // OLD(col) / NEW(col) tuple selectors for authorize
                // conditions (Section 4.4).
                self.advance();
                let name = Ident::new(if kw == Keyword::Old { "old" } else { "new" });
                self.expect(&TokenKind::LParen)?;
                let mut args = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    args.push(self.expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Function {
                    name,
                    args,
                    distinct: false,
                    star: false,
                })
            }
            TokenKind::Ident(first) => {
                self.advance();
                if self.eat(&TokenKind::Dot) {
                    // qualifier.column (a trailing `.*` is handled by the
                    // select-list parser before calling into expr()).
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(Ident::new(first)),
                        name: col,
                    })
                } else if self.peek() == &TokenKind::LParen {
                    self.function_call(Ident::new(first))
                } else {
                    Ok(Expr::col(first))
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn function_call(&mut self, name: Ident) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        if self.eat(&TokenKind::Star) {
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Function {
                name,
                args: Vec::new(),
                distinct: false,
                star: true,
            });
        }
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            args.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::Function {
            name,
            args,
            distinct,
            star: false,
        })
    }
}

fn negate_if(e: Expr, negated: bool) -> Expr {
    if negated {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(e),
        }
    } else {
        e
    }
}
