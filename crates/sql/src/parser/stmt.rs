//! Statement parsing: DDL, DML, authorization statements.

use super::Parser;
use crate::ast::{
    AnalyzeFlow, AnalyzePolicy, Authorize, ColumnDef, CreateInclusionDependency, CreateTable, CreateView,
    Delete, DmlAction, Expr, ExplainAuthorization, ForeignKeyDef, Grant, GrantKind, Insert,
    Statement, Update,
};
use crate::token::{Keyword, TokenKind};
use fgac_types::{DataType, Result, Value};

impl Parser {
    /// Parses one statement.
    pub(crate) fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Select) => Ok(Statement::Query(self.query()?)),
            TokenKind::Keyword(Keyword::Create) => self.create(),
            TokenKind::Keyword(Keyword::Authorize) => self.authorize(),
            TokenKind::Keyword(Keyword::Insert) => self.insert(),
            TokenKind::Keyword(Keyword::Update) => self.update(),
            TokenKind::Keyword(Keyword::Delete) => self.delete(),
            TokenKind::Keyword(Keyword::Grant) => self.grant(),
            TokenKind::Keyword(Keyword::Analyze) => self.analyze_policy(),
            TokenKind::Keyword(Keyword::Explain) => self.explain_authorization(),
            _ => Err(self.unexpected("a statement")),
        }
    }

    /// A principal name: a bare identifier, a string literal (`'11'`) or
    /// an integer literal (user ids in the paper are numbers).
    fn principal(&mut self) -> Result<String> {
        if let Some(name) = self.peek_ident_like().map(str::to_string) {
            self.advance();
            return Ok(name);
        }
        match self.peek().clone() {
            TokenKind::Literal(Value::Str(s)) => {
                self.advance();
                Ok(s)
            }
            TokenKind::Literal(Value::Int(i)) => {
                self.advance();
                Ok(i.to_string())
            }
            _ => Err(self.unexpected("a principal (identifier or string)")),
        }
    }

    fn grant(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Grant)?;
        let kind = if self.eat_kw(Keyword::View) {
            GrantKind::View
        } else if self.eat_kw(Keyword::Constraint) {
            GrantKind::Constraint
        } else if self.eat_kw(Keyword::Role) {
            GrantKind::Role
        } else {
            return Err(self.unexpected("VIEW, CONSTRAINT or ROLE"));
        };
        let object = self.ident()?;
        self.expect_kw(Keyword::To)?;
        let principal = self.principal()?;
        Ok(Statement::Grant(Grant {
            kind,
            object,
            principal,
        }))
    }

    fn analyze_policy(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Analyze)?;
        if self.eat_kw(Keyword::Flow) {
            let principal = if self.eat_kw(Keyword::For) {
                Some(self.principal()?)
            } else {
                None
            };
            return Ok(Statement::AnalyzeFlow(AnalyzeFlow { principal }));
        }
        self.expect_kw(Keyword::Policy)?;
        let principal = if self.eat_kw(Keyword::For) {
            Some(self.principal()?)
        } else {
            None
        };
        Ok(Statement::AnalyzePolicy(AnalyzePolicy { principal }))
    }

    fn explain_authorization(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Explain)?;
        self.expect_kw(Keyword::Authorization)?;
        let query = self.query()?;
        Ok(Statement::ExplainAuthorization(ExplainAuthorization {
            query,
        }))
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Table) {
            return self.create_table();
        }
        if self.eat_kw(Keyword::Authorization) {
            self.expect_kw(Keyword::View)?;
            return self.create_view(true);
        }
        if self.eat_kw(Keyword::View) {
            return self.create_view(false);
        }
        if self.eat_kw(Keyword::Inclusion) {
            self.expect_kw(Keyword::Dependency)?;
            return self.create_inclusion_dependency();
        }
        Err(self.unexpected("TABLE, VIEW, AUTHORIZATION VIEW or INCLUSION DEPENDENCY"))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        let mut foreign_keys = Vec::new();
        loop {
            if self.eat_kw(Keyword::Primary) {
                self.expect_kw(Keyword::Key)?;
                primary_key = Some(self.ident_list()?);
            } else if self.eat_kw(Keyword::Foreign) {
                self.expect_kw(Keyword::Key)?;
                let cols = self.ident_list()?;
                self.expect_kw(Keyword::References)?;
                let parent_table = self.ident()?;
                let parent_columns = self.ident_list()?;
                foreign_keys.push(ForeignKeyDef {
                    columns: cols,
                    parent_table,
                    parent_columns,
                });
            } else {
                let col_name = self.ident()?;
                let ty = self.data_type()?;
                let mut nullable = true;
                if self.eat_kw(Keyword::Not) {
                    self.expect_kw(Keyword::Null)?;
                    nullable = false;
                } else if self.eat_kw(Keyword::Null) {
                    // explicit NULL: keep nullable = true
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    nullable,
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
            foreign_keys,
        }))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let ty = match self.peek() {
            TokenKind::Keyword(Keyword::Integer) => DataType::Int,
            TokenKind::Keyword(Keyword::Varchar) => DataType::Str,
            TokenKind::Keyword(Keyword::Double) => DataType::Double,
            TokenKind::Keyword(Keyword::Boolean) => DataType::Bool,
            _ => return Err(self.unexpected("a data type")),
        };
        self.advance();
        // Optional length, e.g. VARCHAR(20): parsed and ignored.
        if self.eat(&TokenKind::LParen) {
            self.advance();
            self.expect(&TokenKind::RParen)?;
        }
        Ok(ty)
    }

    fn create_view(&mut self, authorization: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw(Keyword::As)?;
        let query = self.query()?;
        Ok(Statement::CreateView(CreateView {
            name,
            authorization,
            query,
        }))
    }

    fn create_inclusion_dependency(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw(Keyword::On)?;
        let src_table = self.ident()?;
        let src_columns = self.ident_list()?;
        let src_filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_kw(Keyword::References)?;
        let dst_table = self.ident()?;
        let dst_columns = self.ident_list()?;
        let dst_filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::CreateInclusionDependency(
            CreateInclusionDependency {
                name,
                src_table,
                src_columns,
                src_filter,
                dst_table,
                dst_columns,
                dst_filter,
            },
        ))
    }

    fn authorize(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Authorize)?;
        let action = if self.eat_kw(Keyword::Insert) {
            DmlAction::Insert
        } else if self.eat_kw(Keyword::Update) {
            DmlAction::Update
        } else if self.eat_kw(Keyword::Delete) {
            DmlAction::Delete
        } else {
            return Err(self.unexpected("INSERT, UPDATE or DELETE"));
        };
        self.expect_kw(Keyword::On)?;
        let table = self.ident()?;
        let columns = if self.peek() == &TokenKind::LParen {
            self.ident_list()?
        } else {
            Vec::new()
        };
        let condition = if self.eat_kw(Keyword::Where) {
            self.expr()?
        } else {
            Expr::lit(true)
        };
        Ok(Statement::Authorize(Authorize {
            action,
            table,
            columns,
            condition,
        }))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.peek() == &TokenKind::LParen {
            self.ident_list()?
        } else {
            Vec::new()
        };
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            filter,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, filter }))
    }
}
