//! `SELECT` query parsing.

use super::Parser;
use crate::ast::{Join, OrderByItem, Query, SelectItem, TableRef};
use crate::token::{Keyword, TokenKind};
use fgac_types::{Error, Ident, Result, Value};

impl Parser {
    /// Parses a `SELECT` query.
    pub(crate) fn query(&mut self) -> Result<Query> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        if self.eat_kw(Keyword::All) {
            // SELECT ALL is the default; accept and ignore.
        }
        let projection = self.select_list()?;

        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            from.push(self.table_ref()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.table_ref()?);
            }
        }

        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }

        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                order_by.push(OrderByItem { expr, asc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw(Keyword::Limit) {
            match self.advance() {
                TokenKind::Literal(Value::Int(n)) if n >= 0 => Some(n as u64),
                _ => return Err(Error::Parse("LIMIT expects a non-negative integer".into())),
            }
        } else {
            None
        };

        if self.eat_kw(Keyword::Union) {
            return Err(Error::Unsupported(
                "UNION is not supported in queries; issue the parts separately".into(),
            ));
        }

        Ok(Query {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*` needs two-token lookahead before falling back to expr.
        if let Some(name) = self.peek_ident_like().map(str::to_string) {
            if self.peek2() == &TokenKind::Dot {
                // Peek one further for `*`: consume tentatively.
                let save = self.checkpoint();
                self.advance(); // ident
                self.advance(); // dot
                if self.eat(&TokenKind::Star) {
                    return Ok(SelectItem::QualifiedWildcard(Ident::new(name)));
                }
                self.rewind(save);
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) || self.peek_ident_like().is_some() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.peek() == &TokenKind::LParen {
            return Err(Error::Unsupported(
                "derived tables (subqueries in FROM) are not supported".into(),
            ));
        }
        let name = self.ident()?;
        let alias = self.table_alias()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_kw(Keyword::Inner);
            if self.eat_kw(Keyword::Join) {
                let table = self.ident()?;
                let alias = self.table_alias()?;
                self.expect_kw(Keyword::On)?;
                let on = self.expr()?;
                joins.push(Join { table, alias, on });
            } else if inner {
                return Err(self.unexpected("JOIN after INNER"));
            } else {
                break;
            }
        }
        Ok(TableRef { name, alias, joins })
    }

    fn table_alias(&mut self) -> Result<Option<Ident>> {
        if self.eat_kw(Keyword::As) {
            return Ok(Some(self.ident()?));
        }
        if self.peek_ident_like().is_some() {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    pub(crate) fn checkpoint(&self) -> usize {
        self.pos
    }

    pub(crate) fn rewind(&mut self, checkpoint: usize) {
        self.pos = checkpoint;
    }
}
