//! Recursive-descent parser for the fgac SQL dialect.

mod expr;
mod query;
mod stmt;

use crate::ast::{Expr, Query, Statement};
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};
use fgac_types::{Error, Ident, Result};

/// Parses a single statement (trailing semicolon optional).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a semicolon-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.eat(&TokenKind::Semicolon) {
            p.expect_eof()?;
            return Ok(out);
        }
    }
}

/// Parses a `SELECT` query.
pub fn parse_query(sql: &str) -> Result<Query> {
    let mut p = Parser::new(sql)?;
    let q = p.query()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone expression (used for authorize conditions and
/// tests).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression-recursion depth (bounded; see `expr.rs`).
    pub(crate) depth: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(sql)?,
            pos: 0,
            depth: 0,
        })
    }

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    pub(crate) fn peek2(&self) -> &TokenKind {
        let idx = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    pub(crate) fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Consumes the next token if it equals `kind`.
    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is the given keyword.
    pub(crate) fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&TokenKind::Keyword(kw))
    }

    pub(crate) fn peek_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{kind}`")))
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        self.expect(&TokenKind::Keyword(kw))
    }

    pub(crate) fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    /// The identifier spelling of the next token, when it is an
    /// identifier or a context-sensitive keyword
    /// ([`Keyword::soft_ident`]) usable as one.
    pub(crate) fn peek_ident_like(&self) -> Option<&str> {
        match self.peek() {
            TokenKind::Ident(name) => Some(name),
            TokenKind::Keyword(k) => k.soft_ident(),
            _ => None,
        }
    }

    /// Expects an identifier. Context-sensitive keywords (ANALYZE,
    /// POLICY, FOR, TO, ROLE, CONSTRAINT) are accepted; fully reserved
    /// keywords that commonly double as names (type names, OLD/NEW) are
    /// not — quote them instead.
    pub(crate) fn ident(&mut self) -> Result<Ident> {
        match self.peek_ident_like() {
            Some(name) => {
                let name = name.to_string();
                self.advance();
                Ok(Ident::new(name))
            }
            None => Err(self.unexpected("an identifier")),
        }
    }

    pub(crate) fn ident_list(&mut self) -> Result<Vec<Ident>> {
        self.expect(&TokenKind::LParen)?;
        let mut out = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    pub(crate) fn unexpected(&self, wanted: &str) -> Error {
        let tok = &self.tokens[self.pos];
        Error::Parse(format!(
            "expected {wanted}, found {} at byte {}",
            tok.kind, tok.offset
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use fgac_types::Value;

    #[test]
    fn parses_paper_view_mygrades() {
        // Section 1: the MyGrades authorization view.
        let stmt = parse_statement(
            "create authorization view MyGrades as \
             select * from Grades where student_id = $user_id",
        )
        .unwrap();
        let Statement::CreateView(v) = stmt else {
            panic!("expected view");
        };
        assert!(v.authorization);
        assert_eq!(v.name, Ident::new("mygrades"));
        assert_eq!(
            v.query.selection,
            Some(Expr::eq(
                Expr::col("student_id"),
                Expr::Param("user_id".into())
            ))
        );
    }

    #[test]
    fn parses_paper_view_co_student_grades() {
        // Section 2: Co-studentGrades (qualified wildcard + join).
        let stmt = parse_statement(
            "create authorization view CoStudentGrades as \
             select Grades.* from Grades, Registered \
             where Registered.student_id = $user_id \
               and Grades.course_id = Registered.course_id",
        )
        .unwrap();
        let Statement::CreateView(v) = stmt else {
            panic!()
        };
        assert_eq!(
            v.query.projection,
            vec![SelectItem::QualifiedWildcard(Ident::new("grades"))]
        );
        assert_eq!(v.query.from.len(), 2);
    }

    #[test]
    fn parses_aggregate_group_by() {
        // Section 4.1: AvgGrades.
        let q = parse_query("select course_id, avg(grade) from Grades group by course_id").unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.projection.len(), 2);
        match &q.projection[1] {
            SelectItem::Expr { expr, .. } => {
                assert!(matches!(expr, Expr::Function { name, .. } if name == &Ident::new("avg")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_access_pattern_view() {
        // Section 2: SingleGrade with $$1.
        let stmt = parse_statement(
            "create authorization view SingleGrade as \
             select * from Grades where student_id = $$1",
        )
        .unwrap();
        let Statement::CreateView(v) = stmt else {
            panic!()
        };
        assert_eq!(
            v.query.selection,
            Some(Expr::eq(
                Expr::col("student_id"),
                Expr::AccessParam("1".into())
            ))
        );
    }

    #[test]
    fn parses_authorize_statements() {
        // Section 4.4.
        let stmt = parse_statement(
            "authorize insert on Registered where Registered.student_id = $user_id",
        )
        .unwrap();
        let Statement::Authorize(a) = stmt else {
            panic!()
        };
        assert_eq!(a.action, DmlAction::Insert);
        assert_eq!(a.table, Ident::new("registered"));

        let stmt = parse_statement(
            "authorize update on Students (address) where old(student_id) = $user_id",
        )
        .unwrap();
        let Statement::Authorize(a) = stmt else {
            panic!()
        };
        assert_eq!(a.action, DmlAction::Update);
        assert_eq!(a.columns, vec![Ident::new("address")]);
        match a.condition {
            Expr::Binary { left, .. } => {
                assert!(
                    matches!(*left, Expr::Function { ref name, .. } if name == &Ident::new("old"))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse_statement(
            "create table Grades (\
               student_id varchar not null, \
               course_id varchar not null, \
               grade int, \
               primary key (student_id, course_id), \
               foreign key (student_id) references Students (student_id))",
        )
        .unwrap();
        let Statement::CreateTable(t) = stmt else {
            panic!()
        };
        assert_eq!(t.columns.len(), 3);
        assert!(t.columns[2].nullable);
        assert_eq!(
            t.primary_key,
            Some(vec![Ident::new("student_id"), Ident::new("course_id")])
        );
        assert_eq!(t.foreign_keys.len(), 1);
    }

    #[test]
    fn parses_inclusion_dependency() {
        // Example 5.3: all full-time students are registered.
        let stmt = parse_statement(
            "create inclusion dependency ft_registered \
             on Students (student_id) where type = 'FullTime' \
             references Registered (student_id)",
        )
        .unwrap();
        let Statement::CreateInclusionDependency(d) = stmt else {
            panic!()
        };
        assert_eq!(d.src_table, Ident::new("students"));
        assert!(d.src_filter.is_some());
        assert!(d.dst_filter.is_none());
    }

    #[test]
    fn parses_dml() {
        let s = parse_statement("insert into Grades values ('11', 'cs101', 90)").unwrap();
        assert!(matches!(s, Statement::Insert(_)));
        let s = parse_statement("update Students set address = 'x' where student_id = '11'")
            .unwrap();
        assert!(matches!(s, Statement::Update(_)));
        let s = parse_statement("delete from Registered where course_id = 'cs101'").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
    }

    #[test]
    fn parses_join_on_syntax() {
        let q = parse_query(
            "select s.name from Students s join Registered r on s.student_id = r.student_id",
        )
        .unwrap();
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].joins.len(), 1);
    }

    #[test]
    fn parses_script() {
        let stmts = parse_statements(
            "create table T (a int); insert into T values (1); select * from T;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parses_order_by_limit() {
        let q = parse_query("select a from T order by a desc, b limit 10").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].asc);
        assert!(q.order_by[1].asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_between_and_in_as_sugar() {
        let e = parse_expr("a between 1 and 3").unwrap();
        // Desugared to a >= 1 AND a <= 3.
        assert_eq!(
            e,
            Expr::and(
                Expr::binary(Expr::col("a"), BinaryOp::GtEq, Expr::lit(1)),
                Expr::binary(Expr::col("a"), BinaryOp::LtEq, Expr::lit(3)),
            )
        );
        let e = parse_expr("a in (1, 2)").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                Expr::eq(Expr::col("a"), Expr::lit(1)),
                BinaryOp::Or,
                Expr::eq(Expr::col("a"), Expr::lit(2)),
            )
        );
    }

    #[test]
    fn parses_count_star_and_distinct_agg() {
        let q = parse_query("select count(*), count(distinct a) from T").unwrap();
        let SelectItem::Expr { expr, .. } = &q.projection[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Function { star: true, .. }));
        let SelectItem::Expr { expr, .. } = &q.projection[1] else {
            panic!()
        };
        assert!(matches!(
            expr,
            Expr::Function {
                distinct: true,
                star: false,
                ..
            }
        ));
    }

    #[test]
    fn precedence_and_parens() {
        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        // AND binds tighter than OR.
        let Expr::Binary { op, .. } = &e else { panic!() };
        assert_eq!(*op, BinaryOp::Or);

        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::Binary { op, right, .. } = &e else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **right,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));

        let e = parse_expr("(1 + 2) * 3").unwrap();
        let Expr::Binary { op, .. } = &e else { panic!() };
        assert_eq!(*op, BinaryOp::Mul);
    }

    #[test]
    fn parses_is_null_and_not() {
        let e = parse_expr("a is not null and not b = 1").unwrap();
        let Expr::Binary { left, right, .. } = &e else {
            panic!()
        };
        assert!(matches!(**left, Expr::IsNull { negated: true, .. }));
        assert!(matches!(
            **right,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn parses_literals() {
        assert_eq!(parse_expr("true").unwrap(), Expr::lit(true));
        assert_eq!(parse_expr("null").unwrap(), Expr::Literal(Value::Null));
        assert_eq!(parse_expr("-5").unwrap(), Expr::lit(-5));
        assert_eq!(parse_expr("2.5").unwrap(), Expr::lit(2.5));
    }

    #[test]
    fn statement_keywords_stay_valid_identifiers() {
        // ANALYZE, POLICY, FOR, TO, ROLE, and CONSTRAINT head the
        // GRANT/ANALYZE statements but are context-sensitive: schemas
        // and queries written before those statements existed may use
        // them as table, column, or alias names.
        let stmt =
            parse_statement("create table policy (role int, to varchar, constraint int)").unwrap();
        let Statement::CreateTable(t) = stmt else {
            panic!("expected table");
        };
        assert_eq!(t.name, Ident::new("policy"));
        assert_eq!(
            t.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
            vec![Ident::new("role"), Ident::new("to"), Ident::new("constraint")]
        );

        // Column references, qualified columns, and predicates.
        let q = parse_query("select role, p.analyze from policy p where to = 1 and p.for = 2")
            .unwrap();
        assert_eq!(q.projection.len(), 2);
        assert_eq!(q.from[0].name, Ident::new("policy"));

        // Implicit alias positions and qualified wildcards.
        let q = parse_query("select role.* from grades role").unwrap();
        assert_eq!(
            q.projection,
            vec![SelectItem::QualifiedWildcard(Ident::new("role"))]
        );
        let q = parse_query("select grade constraint from grades to").unwrap();
        let SelectItem::Expr { alias, .. } = &q.projection[0] else {
            panic!()
        };
        assert_eq!(alias, &Some(Ident::new("constraint")));
        assert_eq!(q.from[0].alias, Some(Ident::new("to")));

        // The statements those words head still parse.
        assert!(matches!(
            parse_statement("grant view mygrades to '11'").unwrap(),
            Statement::Grant(_)
        ));
        assert!(matches!(
            parse_statement("analyze policy for role").unwrap(),
            Statement::AnalyzePolicy(_)
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("select from where").is_err());
        assert!(parse_statement("selec * from t").is_err());
        assert!(parse_query("select * from t where").is_err());
        assert!(parse_query("select * from t 1").is_err());
    }

    #[test]
    fn rejects_nested_subquery() {
        // The paper (Section 5) excludes nested subqueries; we reject them
        // at parse time with a clear message.
        let err = parse_query("select * from t where a in (select a from u)").unwrap_err();
        assert!(err.to_string().contains("subquer"), "{err}");
    }
}
