//! Renders ASTs back to SQL text.
//!
//! Used for parser round-trip tests, error messages, and for printing the
//! *witness* rewritten query `q'` when the Non-Truman checker explains why
//! a query was accepted.

use crate::ast::*;
use crate::token::Keyword;
use std::fmt::Write as _;

/// Prints an identifier, quoting it when it would lex as a keyword.
fn pid(id: &fgac_types::Ident) -> String {
    if Keyword::from_word(id.as_str()).is_some() {
        format!("\"{id}\"")
    } else {
        id.to_string()
    }
}

/// Renders a statement as SQL.
pub fn print_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => print_query(q),
        Statement::CreateTable(t) => print_create_table(t),
        Statement::CreateView(v) => {
            let kind = if v.authorization {
                "AUTHORIZATION VIEW"
            } else {
                "VIEW"
            };
            format!("CREATE {kind} {} AS {}", v.name, print_query(&v.query))
        }
        Statement::CreateInclusionDependency(d) => {
            let mut s = format!(
                "CREATE INCLUSION DEPENDENCY {} ON {} ({})",
                d.name,
                d.src_table,
                idents(&d.src_columns)
            );
            if let Some(f) = &d.src_filter {
                write!(s, " WHERE {}", print_expr(f)).unwrap();
            }
            write!(
                s,
                " REFERENCES {} ({})",
                d.dst_table,
                idents(&d.dst_columns)
            )
            .unwrap();
            if let Some(f) = &d.dst_filter {
                write!(s, " WHERE {}", print_expr(f)).unwrap();
            }
            s
        }
        Statement::Authorize(a) => {
            let mut s = format!("AUTHORIZE {} ON {}", a.action, a.table);
            if !a.columns.is_empty() {
                write!(s, " ({})", idents(&a.columns)).unwrap();
            }
            write!(s, " WHERE {}", print_expr(&a.condition)).unwrap();
            s
        }
        Statement::Insert(i) => {
            let mut s = format!("INSERT INTO {}", i.table);
            if !i.columns.is_empty() {
                write!(s, " ({})", idents(&i.columns)).unwrap();
            }
            s.push_str(" VALUES ");
            for (n, row) in i.rows.iter().enumerate() {
                if n > 0 {
                    s.push_str(", ");
                }
                write!(s, "({})", exprs(row)).unwrap();
            }
            s
        }
        Statement::Update(u) => {
            let mut s = format!("UPDATE {} SET ", u.table);
            for (n, (col, e)) in u.assignments.iter().enumerate() {
                if n > 0 {
                    s.push_str(", ");
                }
                write!(s, "{col} = {}", print_expr(e)).unwrap();
            }
            if let Some(f) = &u.filter {
                write!(s, " WHERE {}", print_expr(f)).unwrap();
            }
            s
        }
        Statement::Delete(d) => {
            let mut s = format!("DELETE FROM {}", d.table);
            if let Some(f) = &d.filter {
                write!(s, " WHERE {}", print_expr(f)).unwrap();
            }
            s
        }
        Statement::Grant(g) => {
            format!(
                "GRANT {} {} TO {}",
                g.kind,
                pid(&g.object),
                principal(&g.principal)
            )
        }
        Statement::AnalyzePolicy(a) => match &a.principal {
            Some(p) => format!("ANALYZE POLICY FOR {}", principal(p)),
            None => "ANALYZE POLICY".to_string(),
        },
        Statement::AnalyzeFlow(a) => match &a.principal {
            Some(p) => format!("ANALYZE FLOW FOR {}", principal(p)),
            None => "ANALYZE FLOW".to_string(),
        },
        Statement::ExplainAuthorization(e) => {
            format!("EXPLAIN AUTHORIZATION {}", print_query(&e.query))
        }
    }
}

/// Prints a principal as a string literal (principals are arbitrary
/// user ids — `'11'` — that would otherwise lex as integers).
fn principal(p: &str) -> String {
    format!("'{}'", p.replace('\'', "''"))
}

fn print_create_table(t: &CreateTable) -> String {
    let mut parts: Vec<String> = t
        .columns
        .iter()
        .map(|c| {
            format!(
                "{} {}{}",
                c.name,
                c.ty,
                if c.nullable { "" } else { " NOT NULL" }
            )
        })
        .collect();
    if let Some(pk) = &t.primary_key {
        parts.push(format!("PRIMARY KEY ({})", idents(pk)));
    }
    for fk in &t.foreign_keys {
        parts.push(format!(
            "FOREIGN KEY ({}) REFERENCES {} ({})",
            idents(&fk.columns),
            fk.parent_table,
            idents(&fk.parent_columns)
        ));
    }
    format!("CREATE TABLE {} ({})", t.name, parts.join(", "))
}

/// Renders a query as SQL.
pub fn print_query(q: &Query) -> String {
    let mut s = String::from("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    for (n, item) in q.projection.iter().enumerate() {
        if n > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => s.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                write!(s, "{}.*", pid(t)).unwrap();
            }
            SelectItem::Expr { expr, alias } => {
                s.push_str(&print_expr(expr));
                if let Some(a) = alias {
                    write!(s, " AS {}", pid(a)).unwrap();
                }
            }
        }
    }
    if !q.from.is_empty() {
        s.push_str(" FROM ");
        for (n, t) in q.from.iter().enumerate() {
            if n > 0 {
                s.push_str(", ");
            }
            s.push_str(&pid(&t.name));
            if let Some(a) = &t.alias {
                write!(s, " AS {}", pid(a)).unwrap();
            }
            for j in &t.joins {
                write!(s, " JOIN {}", pid(&j.table)).unwrap();
                if let Some(a) = &j.alias {
                    write!(s, " AS {}", pid(a)).unwrap();
                }
                write!(s, " ON {}", print_expr(&j.on)).unwrap();
            }
        }
    }
    if let Some(w) = &q.selection {
        write!(s, " WHERE {}", print_expr(w)).unwrap();
    }
    if !q.group_by.is_empty() {
        write!(s, " GROUP BY {}", exprs(&q.group_by)).unwrap();
    }
    if let Some(h) = &q.having {
        write!(s, " HAVING {}", print_expr(h)).unwrap();
    }
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        for (n, o) in q.order_by.iter().enumerate() {
            if n > 0 {
                s.push_str(", ");
            }
            s.push_str(&print_expr(&o.expr));
            if !o.asc {
                s.push_str(" DESC");
            }
        }
    }
    if let Some(l) = q.limit {
        write!(s, " LIMIT {l}").unwrap();
    }
    s
}

/// Renders an expression as SQL (fully parenthesized for binary ops so no
/// precedence reasoning is needed).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{}.{}", pid(q), pid(name)),
            None => pid(name),
        },
        Expr::Literal(v) => v.to_string(),
        Expr::Param(p) => format!("${p}"),
        Expr::AccessParam(p) => format!("$${p}"),
        // Self-delimiting so `NOT x = y` never reparses with a different
        // precedence.
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => format!("(NOT ({}))", print_expr(expr)),
            UnaryOp::Neg => format!("(-({}))", print_expr(expr)),
        },
        Expr::Binary { left, op, right } => {
            let op_str = match op {
                BinaryOp::And => "AND",
                BinaryOp::Or => "OR",
                BinaryOp::Eq => "=",
                BinaryOp::NotEq => "<>",
                BinaryOp::Lt => "<",
                BinaryOp::LtEq => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::GtEq => ">=",
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Mod => "%",
            };
            format!("({} {op_str} {})", print_expr(left), print_expr(right))
        }
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            print_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => {
            if *star {
                format!("{name}(*)")
            } else {
                format!(
                    "{name}({}{})",
                    if *distinct { "DISTINCT " } else { "" },
                    exprs(args)
                )
            }
        }
    }
}

fn idents(ids: &[fgac_types::Ident]) -> String {
    ids.iter().map(pid).collect::<Vec<_>>().join(", ")
}

fn exprs(es: &[Expr]) -> String {
    es.iter().map(print_expr).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_statement, parse_statements};

    /// Parse → print → parse must be a fixpoint.
    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let printed = print_statement(&stmt);
        let reparsed =
            parse_statement(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(stmt, reparsed, "round-trip of `{sql}` via `{printed}`");
    }

    #[test]
    fn roundtrips_paper_statements() {
        for sql in [
            "select avg(grade) from Grades",
            "select avg(grade) from Grades where student_id = '11'",
            "select course_id, avg(grade) from Grades group by course_id",
            "select distinct name, type from Students",
            "select * from Grades where course_id = 'CS101'",
            "select 1 from Registered where student_id = '11' and course_id = 'CS101'",
            "create authorization view MyGrades as select * from Grades where student_id = $user_id",
            "create authorization view SingleGrade as select * from Grades where student_id = $$1",
            "create table Students (student_id varchar not null, name varchar, type varchar, primary key (student_id))",
            "create inclusion dependency ft on Students (student_id) where type = 'FullTime' references Registered (student_id)",
            "authorize update on Students (address) where old(student_id) = $user_id",
            "insert into Grades values ('11', 'CS101', 90), ('12', 'CS101', 85)",
            "update Students set address = 'new' where student_id = $user_id",
            "delete from Registered where course_id = 'CS101'",
            "select s.name as n from Students s join Registered r on s.student_id = r.student_id where r.course_id = 'CS101' order by s.name desc limit 5",
            "select count(*), count(distinct grade) from Grades having count(*) > 2",
            "grant view MyGrades to '11'",
            "grant view MyGrades to 11",
            "grant constraint ft_registered to student",
            "grant role student to '11'",
            "analyze policy",
            "analyze policy for '11'",
            "analyze policy for student",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn script_roundtrip() {
        let stmts = parse_statements(
            "create table T (a int); insert into T values (1); select * from T",
        )
        .unwrap();
        for s in &stmts {
            let printed = print_statement(s);
            assert_eq!(&parse_statement(&printed).unwrap(), s);
        }
    }
}
