//! The paper's full university scenario: every worked example from
//! Sections 4 and 5, end to end.
//!
//! Run with `cargo run --example university`.

use fgac::prelude::*;
use fgac::workload::university::{build, UniversityConfig};

fn main() -> Result<()> {
    let mut uni = build(UniversityConfig::tiny())?;
    let student = uni.student(0);
    let session = Session::new(student.clone());

    // Pick a course the student registered for, and one she did not.
    let reg = uni
        .registrations
        .iter()
        .find(|(s, _)| s == &student)
        .map(|(_, c)| c.clone())
        .expect("every student registers");
    let unreg = (0..uni.config.courses)
        .map(|i| uni.course(i))
        .find(|c| !uni.is_registered(&student, c))
        .expect("some unregistered course");

    println!("student = {student}, registered course = {reg}, other course = {unreg}\n");

    banner("Example 4.1 — aggregates over MyGrades / AvgGrades");
    explain(&mut uni.engine, &session, &format!(
        "select avg(grade) from grades where student_id = '{student}'"
    ))?;
    explain(&mut uni.engine, &session, &format!(
        "select avg(grade) from grades where course_id = '{reg}'"
    ))?;

    banner("Example 4.4 — conditional validity via Co-studentGrades");
    // Registered course: conditionally valid (the engine proves the
    // registration through MyRegistrations and probes the state).
    explain(&mut uni.engine, &session, &format!(
        "select * from grades where course_id = '{reg}'"
    ))?;
    // Unregistered course: rejected — and, per Example 4.3, rejection is
    // safe: it does not reveal whether the student is registered.
    explain(&mut uni.engine, &session, &format!(
        "select * from grades where course_id = '{unreg}'"
    ))?;

    banner("Examples 5.1–5.3 — U3 inference from integrity constraints");
    let registrar = Session::new("registrar");
    explain(&mut uni.engine, &registrar, "select distinct name, type from students")?;
    explain(
        &mut uni.engine,
        &registrar,
        "select distinct name from students where type = 'FullTime'",
    )?;
    // Without DISTINCT the multiplicity is not reconstructible
    // (Example 5.1's n×m discussion): rejected.
    explain(&mut uni.engine, &registrar, "select name, type from students")?;

    banner("Section 2 / 6 — access-pattern view SingleGrade");
    let secretary = Session::new("secretary");
    let other = uni.student(1);
    explain(&mut uni.engine, &secretary, &format!(
        "select * from grades where student_id = '{other}'"
    ))?;
    explain(&mut uni.engine, &secretary, "select * from grades")?;

    banner("Section 4.4 — update authorization");
    match uni.engine.execute(
        &session,
        &format!("insert into registered values ('{student}', '{unreg}')"),
    ) {
        Ok(r) => println!(
            "registering self for {unreg}: OK ({} row)",
            r.affected().unwrap()
        ),
        Err(e) => println!("registering self: {e}"),
    }
    match uni.engine.execute(
        &session,
        &format!("insert into registered values ('{other}', '{unreg}')"),
    ) {
        Err(e) => println!("registering someone else: {e}"),
        Ok(_) => panic!("must be rejected"),
    }

    Ok(())
}

fn banner(title: &str) {
    println!("\n==== {title} ====\n");
}

/// Checks validity, prints the verdict and rule trace, and executes when
/// valid.
fn explain(engine: &mut Engine, session: &Session, sql: &str) -> Result<()> {
    let report = engine.check(session, sql)?;
    println!("{sql}");
    println!("  verdict: {:?}", report.verdict);
    for rule in report.rules.iter().take(3) {
        println!("  rule: {rule}");
    }
    if report.is_valid() {
        let rows = engine.execute(session, sql)?;
        let n = rows.rows().map(|r| r.rows.len()).unwrap_or(0);
        println!("  -> executed unmodified, {n} row(s)");
    } else {
        println!("  -> rejected");
    }
    println!();
    Ok(())
}
