//! Access-pattern authorization views (Sections 2 and 6): `$$`
//! parameters, point lookups, and dependent joins.
//!
//! Run with `cargo run --example access_patterns`.

use fgac::prelude::*;

fn main() -> Result<()> {
    let mut engine = Engine::new();
    engine.admin_script(
        "
        create table employees (
            emp_id varchar not null,
            name varchar not null,
            dept varchar not null,
            salary int not null,
            primary key (emp_id));
        create table badges (
            badge_id varchar not null,
            emp_id varchar not null,
            level int not null,
            primary key (badge_id));

        -- The guard can look up ONE employee at a time by id — think of
        -- a web form with a mandatory field (Section 2).
        create authorization view EmployeeLookup as
            select * from employees where emp_id = $$id;

        -- The guard can see the full badge registry.
        create authorization view BadgeRegistry as
            select * from badges;

        insert into employees values
            ('e1', 'ann',   'eng',   120), ('e2', 'bob',  'eng', 110),
            ('e3', 'carol', 'sales',  90), ('e4', 'dave', 'ops',  80);
        insert into badges values
            ('b1', 'e1', 3), ('b2', 'e2', 1), ('b3', 'e3', 2);
        ",
    )?;
    engine.grant_view("guard", "employeelookup").unwrap();
    engine.grant_view("guard", "badgeregistry").unwrap();
    let guard = Session::new("guard");

    println!("== point lookups through the $$ parameter ==\n");
    for sql in [
        "select name, dept from employees where emp_id = 'e2'",
        "select salary from employees where emp_id = 'e3'",
    ] {
        let r = engine.execute(&guard, sql)?;
        println!("OK       {sql} -> {:?}", r.rows().unwrap().rows[0]);
    }

    println!("\n== bulk access is rejected (that's the point of $$) ==\n");
    for sql in [
        "select * from employees",
        "select name from employees where dept = 'eng'",
        "select avg(salary) from employees",
    ] {
        match engine.execute(&guard, sql) {
            Err(e) => println!("REJECTED {sql}\n         ({e})"),
            Ok(_) => panic!("must be rejected"),
        }
    }

    println!("\n== dependent join (Section 6) ==\n");
    // badges ⋈ employees on emp_id: the guard can step through the badge
    // registry and fetch each employee by id — so the join is valid even
    // though employees as a whole is not visible.
    let sql = "select b.badge_id, e.name, b.level \
               from badges b, employees e where b.emp_id = e.emp_id";
    let report = engine.check(&guard, sql)?;
    println!("{sql}");
    println!("  verdict: {:?}", report.verdict);
    for rule in &report.rules {
        if rule.contains("dependent") {
            println!("  rule: {rule}");
        }
    }
    let r = engine.execute(&guard, sql)?;
    println!("{}", r.rows().unwrap().to_table());

    // But joining on a non-key column cannot be executed with lookups:
    let bad = "select e.name from badges b, employees e where b.level = e.salary";
    match engine.execute(&guard, bad) {
        Err(e) => println!("REJECTED {bad}\n         ({e})"),
        Ok(_) => panic!("must be rejected"),
    }
    Ok(())
}
