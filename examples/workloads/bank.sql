-- Certification workload for examples/policies/bank.sql, run as
-- customer 'c000000' (role customer: MyAccounts, MyCustomerRecord).
--
-- Every query here must be ACCEPTED with a checker-verified
-- certificate; CI runs `fgac-analyze --certify --for c000000`.

-- The customer's own accounts via MyAccounts.
select * from accounts where customer_id = 'c000000';

-- Cell-level slice: balances only.
select account_id, balance from accounts where customer_id = 'c000000';

-- The customer's own record via MyCustomerRecord.
select name, address from customers where customer_id = 'c000000';

-- Join of the two authorized slices.
select c.name, a.balance
  from customers c join accounts a on c.customer_id = a.customer_id
  where c.customer_id = 'c000000';
