-- Certification workload for examples/policies/university.sql, run as
-- student '11' (role student: MyGrades, MyRegistrations,
-- CoStudentGrades, constraint all_registered).
--
-- Every query here must be ACCEPTED, and CI
-- (`fgac-analyze --certify --for 11`) requires each accept to carry a
-- validity certificate that the independent checker verifies.

-- U1 + U2: the student's own grades, answerable from MyGrades.
select * from grades where student_id = '11';

-- U2 restriction: a strict sub-slice of MyGrades.
select course_id, grade from grades
  where student_id = '11' and grade >= 60;

-- Aggregation over an authorized slice (Section 1's avg example).
select avg(grade) from grades where student_id = '11';

-- The student's registrations via MyRegistrations.
select course_id from registered where student_id = '11';

-- A self-join inside the authorized slice.
select a.course_id, b.course_id
  from registered a join registered b on a.student_id = b.student_id
  where a.student_id = '11';
