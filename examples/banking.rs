//! The introduction's bank scenario: customers, tellers, cell-level
//! security via projections, and access-pattern lookups.
//!
//! Run with `cargo run --example banking`.

use fgac::prelude::*;
use fgac::workload::bank::{build, BankConfig};
use fgac::workload::datagen;

fn main() -> Result<()> {
    let mut engine = build(BankConfig {
        customers: 8,
        accounts_per_customer: 2,
        seed: 42,
    })?;

    let alice = datagen::customer_id(0);
    let bob = datagen::customer_id(1);

    println!("==== customer {alice} ====\n");
    let session = Session::new(alice.clone());
    for (sql, expect_ok) in [
        (
            format!("select account_id, balance from accounts where customer_id = '{alice}'"),
            true,
        ),
        (
            format!("select balance from accounts where customer_id = '{bob}'"),
            false,
        ),
        ("select avg(balance) from accounts".to_string(), false),
    ] {
        show(&mut engine, &session, &sql, expect_ok)?;
    }

    println!("\n==== teller ====\n");
    let teller = Session::new("teller-1");
    for (sql, expect_ok) in [
        // Balances of all accounts: granted via TellerBalances.
        ("select account_id, balance from accounts".to_string(), true),
        // Aggregates over balances too (U2 on top of the view).
        ("select branch, avg(balance) from accounts group by branch".to_string(), true),
        // Customer addresses: the teller's views never expose them.
        ("select address from customers".to_string(), false),
        // Single-customer lookup by id: the access-pattern authorization.
        (
            format!("select name from customers where customer_id = '{bob}'"),
            true,
        ),
        // Dumping the whole customer list: rejected.
        ("select name from customers".to_string(), false),
    ] {
        show(&mut engine, &teller, &sql, expect_ok)?;
    }

    println!("\n==== updates ====\n");
    let n = engine.execute(
        &session,
        &format!("update customers set address = '1 New Road' where customer_id = '{alice}'"),
    )?;
    println!("alice updates her own address: {} row(s)", n.affected().unwrap());
    match engine.execute(
        &session,
        &format!("update customers set address = 'hijacked' where customer_id = '{bob}'"),
    ) {
        Err(e) => println!("alice updates bob's address: {e}"),
        Ok(_) => panic!("must be rejected"),
    }
    Ok(())
}

fn show(engine: &mut Engine, session: &Session, sql: &str, expect_ok: bool) -> Result<()> {
    match engine.execute(session, sql) {
        Ok(r) => {
            assert!(expect_ok, "unexpected acceptance of `{sql}`");
            let rows = r.rows().unwrap();
            println!("OK       {sql}  -> {} row(s)", rows.rows.len());
        }
        Err(e) => {
            assert!(!expect_ok, "unexpected rejection of `{sql}`: {e}");
            println!("REJECTED {sql}");
        }
    }
    Ok(())
}
