-- A deliberately leaky variant of the healthcare policy set. Every
-- grant below is clean under the per-grant lints (P-codes) — the leaks
-- only appear when the *composition* of the granted set is analyzed.
-- CI runs `fgac-analyze --flow examples/policies/defective-healthcare.sql`
-- and requires it to FAIL (exit 1) with the seeded F-codes present.

create table patients (
  patient_id varchar not null,
  name varchar not null,
  diagnosis varchar not null,
  ward integer not null,
  primary key (patient_id));

create table treatments (
  patient_id varchar not null,
  treatment_code varchar not null,
  cost integer not null,
  primary key (patient_id, treatment_code));

-- F001 TransitiveDisclosureWidening: each view on its own is a
-- reasonable de-identified slice — ward rosters with names, and
-- per-patient diagnoses. But both project the primary key, so nurse
-- '41' can join them back together and read (name, diagnosis) pairs,
-- a column combination no single grant exposes.
create authorization view WardRoster as
  select patient_id, name, ward from patients;
create authorization view CaseLoad as
  select patient_id, diagnosis from patients;
grant view WardRoster to '41';
grant view CaseLoad to '41';

-- F002 ConstraintInferenceChannel: billing clerk '42' holds no view
-- over `patients` at all — but the visible inclusion dependency says
-- every billed treatment's patient_id appears in `patients`, so the
-- fully-disclosed billing feed lets admitted-patient identities be
-- inferred through the dependency.
create inclusion dependency billed_admitted
  on treatments (patient_id) references patients (patient_id);
create authorization view BillingFeed as
  select * from treatments;
grant view BillingFeed to '42';
grant constraint billed_admitted to '42';
