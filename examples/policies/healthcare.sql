-- A healthcare policy corpus (ROADMAP item 5c): patients, physicians,
-- treatments, and prescriptions, with attending-physician and
-- patient-self authorization views.
--
-- This policy set is clean on both analyses: the grant-time lints
-- (`fgac-analyze examples/policies/healthcare.sql`) and the
-- whole-policy flow pass (`fgac-analyze --flow ...`) report no
-- diagnostics, and CI keeps it that way. Note the constraint grant at
-- the bottom: it is safe *only because* the destination columns are
-- already disclosed to the role — the defective variant shows the same
-- grant opening an F002 inference channel when they are not.

create table patients (
  patient_id varchar not null,
  name varchar not null,
  ward integer not null,
  attending_id varchar not null,
  primary key (patient_id));

create table physicians (
  physician_id varchar not null,
  name varchar not null,
  specialty varchar not null,
  primary key (physician_id));

create table treatments (
  patient_id varchar not null,
  physician_id varchar not null,
  treatment_code varchar not null,
  outcome varchar,
  primary key (patient_id, treatment_code),
  foreign key (patient_id) references patients (patient_id),
  foreign key (physician_id) references physicians (physician_id));

create table prescriptions (
  patient_id varchar not null,
  drug varchar not null,
  dose integer not null,
  prescriber_id varchar not null,
  primary key (patient_id, drug),
  foreign key (patient_id) references patients (patient_id),
  foreign key (prescriber_id) references physicians (physician_id));

-- A physician sees the patients they attend...
create authorization view MyPatients as
  select * from patients where attending_id = $user_id;

-- ...the treatments they administered...
create authorization view MyTreatments as
  select * from treatments where physician_id = $user_id;

-- ...the prescriptions they wrote themselves...
create authorization view MyPrescribed as
  select * from prescriptions where prescriber_id = $user_id;

-- ...and the prescriptions of their own patients, whoever prescribed
-- them. The conditional-validity probes for this view touch both
-- relations, and the role covers each through MyPatients and
-- MyPrescribed — so the probe neither fails closed (P005) nor leaks
-- undisclosed cells (F003).
create authorization view MyPatientMeds as
  select prescriptions.* from prescriptions, patients
  where patients.attending_id = $user_id
    and prescriptions.patient_id = patients.patient_id;

-- Every treatment names an admitted patient. Visible to physicians for
-- U3a inference; flow-safe because MyPatients already discloses the
-- destination columns (no new lattice cells — no F002).
create inclusion dependency treated_admitted
  on treatments (patient_id) references patients (patient_id);

grant view MyPatients to physician;
grant view MyTreatments to physician;
grant view MyPrescribed to physician;
grant view MyPatientMeds to physician;
grant constraint treated_admitted to physician;
grant role physician to 'dr_adams';
grant role physician to 'dr_bell';

-- A patient sees their own record and their own prescriptions.
create authorization view MyRecord as
  select * from patients where patient_id = $user_id;

create authorization view MyMeds as
  select * from prescriptions where patient_id = $user_id;

grant view MyRecord to patient;
grant view MyMeds to patient;
grant role patient to 'p_garcia';
grant role patient to 'p_hassan';
