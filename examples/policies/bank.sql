-- The introduction's bank scenario: customers see their own accounts,
-- tellers see balances (cell-level security via projection) and can
-- look customers up one at a time via an access-pattern view.
--
-- Clean by construction; CI keeps `fgac-analyze` green on it.

create table customers (
  customer_id varchar not null,
  name varchar not null,
  address varchar not null,
  primary key (customer_id));

create table accounts (
  account_id varchar not null,
  customer_id varchar not null,
  branch varchar not null,
  balance double not null,
  primary key (account_id),
  foreign key (customer_id) references customers (customer_id));

-- A customer sees her own accounts and her own customer record.
create authorization view MyAccounts as
  select accounts.* from accounts
  where accounts.customer_id = $user_id;

create authorization view MyCustomerRecord as
  select * from customers where customer_id = $user_id;

-- A teller sees every balance, but no addresses.
create authorization view TellerBalances as
  select account_id, customer_id, branch, balance from accounts;

-- A teller can fetch one customer's record by id (access pattern: the
-- $$1 parameter must be supplied as a constant in the query).
create authorization view CustomerLookup as
  select * from customers where customer_id = $$1;

grant view MyAccounts to customer;
grant view MyCustomerRecord to customer;
grant view TellerBalances to teller;
grant view CustomerLookup to teller;
grant role customer to 'c000000';
grant role teller to 't-17';
