-- The paper's running example (Rizvi et al., SIGMOD 2004, Section 1):
-- students, courses, registrations, and grades, with the student-facing
-- authorization views of Sections 2 and 4.
--
-- This policy set is clean: `fgac-analyze examples/policies/university.sql`
-- reports no diagnostics, and CI keeps it that way.

create table students (
  student_id varchar not null,
  name varchar not null,
  type varchar not null,
  primary key (student_id));

create table courses (
  course_id varchar not null,
  name varchar not null,
  primary key (course_id));

create table registered (
  student_id varchar not null,
  course_id varchar not null,
  primary key (student_id, course_id),
  foreign key (student_id) references students (student_id),
  foreign key (course_id) references courses (course_id));

create table grades (
  student_id varchar not null,
  course_id varchar not null,
  grade int,
  primary key (student_id, course_id),
  foreign key (student_id) references students (student_id),
  foreign key (course_id) references courses (course_id));

-- Section 1: a student sees her own grades.
create authorization view MyGrades as
  select * from grades where student_id = $user_id;

-- A student's own registrations.
create authorization view MyRegistrations as
  select * from registered where student_id = $user_id;

-- Section 2: grades of every course the student registered for. The
-- conditional-validity probe for this view touches both relations, and
-- both are covered by the two single-relation views above — so it is
-- not a leaky conditional check (P005).
create authorization view CoStudentGrades as
  select grades.* from grades, registered
  where registered.student_id = $user_id
    and grades.course_id = registered.course_id;

-- Example 5.1's integrity constraint: every student registers for at
-- least one course.
create inclusion dependency all_registered
  on students (student_id) references registered (student_id);

-- The student role carries the three views plus constraint visibility
-- (U3a condition 2); students 11 and 12 hold the role.
grant view MyGrades to student;
grant view MyRegistrations to student;
grant view CoStudentGrades to student;
grant constraint all_registered to student;
grant role student to '11';
grant role student to '12';
