-- A deliberately broken variant of the university policy set. Every
-- grant below seeds one analyzer diagnostic; CI runs
-- `fgac-analyze examples/policies/defective-university.sql` and
-- requires it to FAIL (exit 1) with all the seeded codes present.
--
-- (P003 ShadowedByRevocation needs a REVOKE, which is an engine API
-- rather than a script statement; it is exercised in
-- tests/policy_analysis.rs instead.)

create table students (
  student_id varchar not null,
  name varchar not null,
  type varchar not null,
  primary key (student_id));

create table registered (
  student_id varchar not null,
  course_id varchar not null,
  primary key (student_id, course_id));

create table grades (
  student_id varchar not null,
  course_id varchar not null,
  grade int,
  primary key (student_id, course_id));

-- P001: the predicate can never hold — the grant is dead.
create authorization view Unsatisfiable as
  select * from grades where student_id = '11' and student_id = '12';
grant view Unsatisfiable to '31';

-- P002: MyGoodGrades is strictly contained in MyGrades; granting both
-- to the same principal makes the narrow one redundant.
create authorization view MyGrades as
  select * from grades where student_id = $user_id;
create authorization view MyGoodGrades as
  select * from grades where student_id = $user_id and grade >= 60;
grant view MyGrades to '32';
grant view MyGoodGrades to '32';

-- P004: a grant naming a view that was never created, and a view whose
-- body references a relation absent from the catalog.
grant view Ghost to '33';
create authorization view Orphan as
  select * from enrolments where student_id = $user_id;
grant view Orphan to '33';

-- P005: the conditional-validity probe for this two-relation view reads
-- `registered`, but principal 34 holds no other view over it — the
-- probe itself would leak (Section 5.4).
create authorization view Leaky as
  select grades.* from grades, registered
  where registered.student_id = $user_id
    and grades.course_id = registered.course_id;
grant view Leaky to '34';

-- P006: $semester is projected but never constrained, so no session
-- can ever pin it.
create authorization view Untethered as
  select student_id, $semester from students;
grant view Untethered to '35';

-- W001: individually satisfiable, jointly contradictory — principal 36
-- was probably meant to hold one or the other.
create authorization view FullTimers as
  select * from students where type = 'FullTime';
create authorization view PartTimers as
  select * from students where type = 'PartTime';
grant view FullTimers to '36';
grant view PartTimers to '36';

-- F001 TransitiveDisclosureWidening (flow analysis, `--flow`): each
-- view alone is an innocuous keyed slice, but principal 37 can join
-- them back on student_id and read (name, type) pairs no single grant
-- exposes. Clean under the per-grant lints — the leak is compositional.
create authorization view RosterNames as
  select student_id, name from students;
create authorization view RosterTypes as
  select student_id, type from students;
grant view RosterNames to '37';
grant view RosterTypes to '37';

-- F002 ConstraintInferenceChannel (flow analysis): principal 38 holds
-- no view over `registered`, but the visible Example 5.1 dependency
-- lets every disclosed student_id be inferred to appear there.
create inclusion dependency all_registered
  on students (student_id) references registered (student_id);
grant view RosterNames to '38';
grant constraint all_registered to '38';
