//! Quickstart: the paper's Section 1 scenario in a dozen lines.
//!
//! A student may see only her own grades. Under the Non-Truman model her
//! queries run untouched when they are answerable from her authorization
//! views and are rejected otherwise — never silently narrowed.
//!
//! Run with `cargo run --example quickstart`.

use fgac::prelude::*;

fn main() -> Result<()> {
    let mut engine = Engine::new();
    engine.admin_script(
        "
        create table grades (
            student_id varchar not null,
            course_id varchar not null,
            grade int,
            primary key (student_id, course_id));

        -- Section 1: 'lets the user see all tuples in the Grades
        -- relation where the student-id matches her user-id'.
        create authorization view MyGrades as
            select * from grades where student_id = $user_id;

        insert into grades values
            ('11', 'cs101', 90), ('11', 'cs202', 80),
            ('12', 'cs101', 70), ('13', 'cs202', 60);
        ",
    )?;
    engine.grant_view("11", "mygrades").unwrap();

    let session = Session::new("11");

    println!("== Valid queries (run exactly as written) ==\n");
    for sql in [
        "select * from grades where student_id = '11'",
        "select grade from grades where student_id = '11' and grade > 85",
        "select avg(grade) from grades where student_id = '11'",
    ] {
        let report = engine.check(&session, sql)?;
        let result = engine.execute(&session, sql)?;
        println!("{sql}\n  verdict: {:?}", report.verdict);
        println!("{}", indent(&result.rows().unwrap().to_table()));
    }

    println!("== Invalid queries (rejected, not modified) ==\n");
    for sql in [
        "select avg(grade) from grades",              // the Truman pitfall
        "select * from grades where student_id = '12'", // someone else
    ] {
        match engine.execute(&session, sql) {
            Err(Error::Unauthorized(reason)) => {
                println!("{sql}\n  rejected: {reason}\n");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    println!("A Truman-model system would instead silently answer the");
    println!("average query with avg of user 11's own grades — a");
    println!("misleading result (paper, Section 3.3):\n");
    let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");
    let misleading = engine.truman_execute(&policy, &session, "select avg(grade) from grades")?;
    println!("  Truman says avg(grade) = {}", misleading.rows[0].get(0));
    println!("  (true answer over all grades is 75.0)");
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
