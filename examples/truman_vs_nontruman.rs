//! Side-by-side comparison of the Truman and Non-Truman models on the
//! pitfall queries of Section 3.3.
//!
//! Run with `cargo run --example truman_vs_nontruman`.

use fgac::prelude::*;
use fgac::workload::university::{build, UniversityConfig};

fn main() -> Result<()> {
    let mut uni = build(UniversityConfig::default())?;
    let student = uni.student(0);
    let session = Session::new(student.clone());

    // The Truman policy the paper describes: every Grades access is
    // silently replaced by MyGrades.
    let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");

    println!("user: {student}\n");
    println!(
        "{:<58} {:>14} {:>16}",
        "query", "Truman", "Non-Truman"
    );
    println!("{}", "-".repeat(92));

    for sql in [
        "select avg(grade) from grades".to_string(),
        "select count(*) from grades".to_string(),
        format!("select avg(grade) from grades where student_id = '{student}'"),
        "select max(grade) from grades".to_string(),
    ] {
        // Truman: always answers — possibly misleadingly.
        let truman = uni.engine.truman_execute(&policy, &session, &sql)?;
        let truman_answer = truman.rows[0].get(0).to_string();

        // Non-Truman: answers correctly or rejects.
        let nt = match uni.engine.execute(&session, &sql) {
            Ok(r) => r.rows().unwrap().rows[0].get(0).to_string(),
            Err(_) => "REJECTED".to_string(),
        };

        // Ground truth, bypassing access control.
        let truth = fgac::exec::run_query_sql(
            uni.engine.database(),
            &sql,
            session.params(),
        )?;
        let truth_answer = truth.rows[0].get(0).to_string();

        let marker = if truman_answer != truth_answer { " (!)" } else { "" };
        println!(
            "{:<58} {:>14} {:>16}   [truth: {}{}]",
            sql, truman_answer, nt, truth_answer, marker
        );
    }

    println!();
    println!("(!) = the Truman model silently returned an answer different");
    println!("from the true result — the paper's Section 3.3 pitfall. The");
    println!("Non-Truman model never does this: it answers exactly or");
    println!("rejects.");

    // The redundant-join effect (Section 3.3, third bullet): policies
    // whose views contain joins make the rewritten query scan more
    // relations than the original.
    println!();
    let join_policy = TrumanPolicy::new().substitute_view("grades", "costudentgrades");
    let q = format!("select grade from grades where course_id = '{}'", uni.course(0));
    let (orig, rewritten) = fgac::core::truman::scan_count_delta(
        uni.engine.database(),
        &join_policy,
        &session,
        &q,
    )?;
    println!("redundant-join effect with the CoStudentGrades policy:");
    println!("  original query scans {orig} relation(s); Truman-rewritten scans {rewritten}");
    Ok(())
}
