//! # fgac — authorization-transparent fine-grained access control
//!
//! A from-scratch Rust implementation of
//! *"Extending Query Rewriting Techniques for Fine-Grained Access
//! Control"* (Rizvi, Mendelzon, Sudarshan, Roy — SIGMOD 2004): the
//! **Non-Truman** access-control model, in which users write queries
//! against base relations, the system infers whether each query can be
//! answered from the user's **authorization views** (parameterized
//! and access-pattern views), and valid queries execute **unmodified**
//! while invalid ones are rejected — no silent Truman-style rewriting.
//!
//! ```
//! use fgac::prelude::*;
//!
//! let mut engine = Engine::new();
//! engine.admin_script("
//!     create table grades (
//!         student_id varchar not null,
//!         course_id varchar not null,
//!         grade int,
//!         primary key (student_id, course_id));
//!     create authorization view MyGrades as
//!         select * from grades where student_id = $user_id;
//!     insert into grades values ('11', 'cs101', 90), ('12', 'cs101', 70);
//! ").unwrap();
//! engine.grant_view("11", "mygrades").unwrap();
//!
//! let session = Session::new("11");
//! // Valid: answerable from MyGrades — runs as written.
//! let rows = engine
//!     .execute(&session, "select avg(grade) from grades where student_id = '11'")
//!     .unwrap();
//! assert!(rows.rows().is_some());
//! // Invalid: would reveal other students' grades — rejected outright,
//! // never silently narrowed to "your average" (the Truman pitfall).
//! assert!(engine.execute(&session, "select avg(grade) from grades").is_err());
//! ```
//!
//! The workspace crates, re-exported here:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`types`] | values, schemas, rows, identifiers, errors |
//! | [`sql`] | lexer/parser/printer for the paper's SQL dialect |
//! | [`storage`] | in-memory tables, catalog, integrity constraints |
//! | [`algebra`] | bound relational algebra, binder, implication prover |
//! | [`exec`] | multiset-semantics executor |
//! | [`optimizer`] | Volcano AND-OR DAG, expansion rules, validity marking |
//! | [`core`] | authorization views, Truman & Non-Truman models, updates |
//! | [`analyze`] | grant-time policy lints (`ANALYZE POLICY`, `fgac-analyze`) |
//! | [`workload`] | university/bank scenarios and data generators |

pub use fgac_analyze as analyze;
pub use fgac_algebra as algebra;
pub use fgac_core as core;
pub use fgac_exec as exec;
pub use fgac_optimizer as optimizer;
pub use fgac_sql as sql;
pub use fgac_storage as storage;
pub use fgac_types as types;
pub use fgac_workload as workload;

/// The common imports for applications embedding the engine.
pub mod prelude {
    pub use fgac_core::{
        truman::TrumanPolicy, AuthorizationView, CertVerdict, Certificate, CheckOptions,
        Diagnostic, DiagnosticCode, DiagnosticSeverity, DurabilityOptions, Engine, EngineResponse,
        Grants, RecoveryReport, RuleId, Session, Validator, Verdict, ValidityReport,
    };
    pub use fgac_types::{Error, Ident, Result, Row, Value};
}
