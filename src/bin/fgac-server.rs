//! `fgac-server` — serve a durable fgac store over TCP.
//!
//! ```text
//! fgac-server --data DIR [--addr HOST:PORT] [--init SCRIPT.sql]
//!             [--workers N] [--queue N] [--max-conns N]
//!             [--idle-ms N] [--frame-ms N] [--deadline-ms N]
//!             [--drain-ms N] [--admin PRINCIPAL]
//! fgac-server --data DIR --check
//! ```
//!
//! The serving mode opens (recovering if needed) the WAL-backed store
//! in `--data`, optionally applies `--init` as an admin script on a
//! fresh store, prints `LISTENING <addr>` on stdout, and serves until
//! SIGTERM/SIGINT. Shutdown is graceful: stop accepting, drain
//! in-flight requests up to `--drain-ms`, answer the rest with
//! `UNAVAILABLE`, fsync and close the WAL, then print `DRAINED ...`.
//!
//! `--check` performs recovery only and reports what it found — the CI
//! smoke job uses it to prove a served-then-terminated store recovers
//! cleanly (no torn tail, same version counters).

use fgac_core::{Engine, SharedEngine};
use fgac_server::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers through the libc already linked by
/// std — no signal crate needed for a flag-setting handler.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

struct Args {
    data: String,
    addr: String,
    init: Option<String>,
    check: bool,
    workers: usize,
    queue: usize,
    max_conns: usize,
    idle_ms: u64,
    frame_ms: u64,
    deadline_ms: Option<u64>,
    drain_ms: u64,
    admin: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: String::new(),
        addr: "127.0.0.1:7421".into(),
        init: None,
        check: false,
        workers: 4,
        queue: 64,
        max_conns: 64,
        idle_ms: 10_000,
        frame_ms: 2_000,
        deadline_ms: None,
        drain_ms: 5_000,
        admin: "admin".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--data" => args.data = value("--data")?,
            "--addr" => args.addr = value("--addr")?,
            "--init" => args.init = Some(value("--init")?),
            "--check" => args.check = true,
            "--workers" => args.workers = parse_num(&value("--workers")?)? as usize,
            "--queue" => args.queue = parse_num(&value("--queue")?)? as usize,
            "--max-conns" => args.max_conns = parse_num(&value("--max-conns")?)? as usize,
            "--idle-ms" => args.idle_ms = parse_num(&value("--idle-ms")?)?,
            "--frame-ms" => args.frame_ms = parse_num(&value("--frame-ms")?)?,
            "--deadline-ms" => args.deadline_ms = Some(parse_num(&value("--deadline-ms")?)?),
            "--drain-ms" => args.drain_ms = parse_num(&value("--drain-ms")?)?,
            "--admin" => args.admin = value("--admin")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.data.is_empty() {
        return Err("--data DIR is required".into());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: {s}"))
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fgac-server: {e}");
            return 2;
        }
    };
    if args.check {
        return run_check(&args);
    }
    run_serve(&args)
}

/// Recovery-only mode: open the store, report, close.
fn run_check(args: &Args) -> i32 {
    match Engine::open_with(&args.data, Default::default()) {
        Ok((mut engine, report)) => {
            println!(
                "RECOVERED snapshot_lsn={:?} records_scanned={} records_replayed={} \
                 truncated_tail_bytes={} policy_epoch={} data_version={}",
                report.snapshot_lsn,
                report.records_scanned,
                report.records_replayed,
                report.truncated_tail_bytes,
                engine.policy_epoch(),
                engine.data_version(),
            );
            match engine.close() {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("fgac-server: close after check: {e}");
                    1
                }
            }
        }
        Err(e) => {
            eprintln!("fgac-server: recovery failed: {e}");
            1
        }
    }
}

fn run_serve(args: &Args) -> i32 {
    install_signal_handlers();
    let (mut engine, report) = match Engine::open_with(&args.data, Default::default()) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("fgac-server: open {}: {e}", args.data);
            return 1;
        }
    };
    // Bootstrap a fresh store (nothing recovered) from the init script.
    let fresh = report.snapshot_lsn.is_none() && report.records_replayed == 0;
    if let (true, Some(path)) = (fresh, &args.init) {
        let script = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgac-server: read {path}: {e}");
                return 1;
            }
        };
        if let Err(e) = engine.admin_script(&script) {
            eprintln!("fgac-server: init script {path}: {e}");
            return 1;
        }
        eprintln!("fgac-server: initialized fresh store from {path}");
    }
    let config = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        queue_capacity: args.queue,
        max_connections: args.max_conns,
        idle_timeout: Duration::from_millis(args.idle_ms),
        frame_timeout: Duration::from_millis(args.frame_ms),
        default_deadline: args.deadline_ms.map(Duration::from_millis),
        drain_deadline: Duration::from_millis(args.drain_ms),
        admin_principal: args.admin.clone(),
        ..ServerConfig::default()
    };
    let server = match Server::start(SharedEngine::new(engine), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fgac-server: start: {e}");
            return 1;
        }
    };
    // Scripts (and the CI smoke job) wait for this line before
    // connecting; ports may be OS-assigned via :0.
    println!("LISTENING {}", server.local_addr());
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("fgac-server: signal received, draining");
    match server.finish() {
        Ok(report) => {
            let served: u64 = report
                .metrics
                .iter()
                .filter(|(k, _)| k.starts_with("resp_"))
                .map(|(_, v)| *v)
                .sum();
            println!(
                "DRAINED clean={} refused_jobs={} responses={served}",
                report.drained_cleanly, report.refused_jobs
            );
            0
        }
        Err(e) => {
            eprintln!("fgac-server: drain/close failed: {e}");
            1
        }
    }
}
