//! Grant-time policy linter — the CI face of `crates/analyze`.
//!
//! ```text
//! fgac-analyze [--json] [--for <principal>] [--query <sql>] <script.sql>...
//! fgac-analyze --flow [--json] [--for <principal>] <script.sql>...
//! fgac-analyze --diff-grant "GRANT VIEW v TO 'p'" [--json] <script.sql>...
//! fgac-analyze --certify --for <principal> [--json] [--query <sql>]
//!              [--workload <queries.sql>]... <script.sql>...
//! ```
//!
//! Each script is an admin DDL/grant script (`CREATE TABLE`,
//! `CREATE AUTHORIZATION VIEW`, `CREATE INCLUSION DEPENDENCY`,
//! `GRANT VIEW|CONSTRAINT|ROLE ... TO ...`, seed `INSERT`s) loaded into
//! a fresh engine with no access checks, exactly as a DBA would install
//! it. The installed policy set is then analyzed and every diagnostic
//! printed — human-readable by default, a JSON array with `--json`.
//!
//! With `--flow`, the whole-policy information-flow analysis
//! (`fgac_analyze::flow`, codes `F001`–`F003`) runs instead of the
//! policy lints: per-principal disclosure lattices, join-recombination
//! widening, constraint-mediated inference channels, and the Section
//! 5.4 probe-channel bound. With `--diff-grant <grant-sql>`, the given
//! `GRANT` statement is *not* applied; the tool reports what it would
//! newly disclose (`F004`) and any flow finding it would introduce —
//! the grant-time gate.
//!
//! With `--certify`, the tool instead runs a certification workload:
//! every `SELECT` in the `--workload` files (plus `--query`, if given)
//! is admitted as `--for <principal>` and, when accepted, its validity
//! certificate is re-verified by the independent checker. An accepted
//! query whose certificate fails verification — or a validator accept
//! with no certificate at all — fails the run. `--json` prints one JSON
//! array with each query's certificate (`null` for denied queries).
//!
//! Exit status: `0` when no diagnostic has error severity (or, under
//! `--certify`, every accepted query carried a verified certificate),
//! `1` on error-severity diagnostics / unverifiable accepts, `2` when a
//! script cannot be read or does not load.

use fgac::analyze::{certificate_to_json, diagnostics_to_json, Severity};
use fgac::prelude::*;

struct Args {
    json: bool,
    certify: bool,
    flow: bool,
    diff_grant: Option<String>,
    principal: Option<String>,
    query: Option<String>,
    workloads: Vec<String>,
    scripts: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fgac-analyze [--json] [--certify] [--flow] [--diff-grant <grant-sql>] \
         [--for <principal>] [--query <sql>] [--workload <queries.sql>]... <script.sql>..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        json: false,
        certify: false,
        flow: false,
        diff_grant: None,
        principal: None,
        query: None,
        workloads: Vec::new(),
        scripts: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--certify" => args.certify = true,
            "--flow" => args.flow = true,
            "--diff-grant" => match it.next() {
                Some(g) => args.diff_grant = Some(g),
                None => usage(),
            },
            "--for" => match it.next() {
                Some(p) => args.principal = Some(p),
                None => usage(),
            },
            "--query" => match it.next() {
                Some(q) => args.query = Some(q),
                None => usage(),
            },
            "--workload" => match it.next() {
                Some(w) => args.workloads.push(w),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => args.scripts.push(a),
        }
    }
    if args.scripts.is_empty() {
        usage();
    }
    if args.certify && args.principal.is_none() {
        eprintln!("fgac-analyze: --certify requires --for <principal>");
        usage();
    }
    if args.certify && (args.flow || args.diff_grant.is_some()) {
        eprintln!("fgac-analyze: --certify cannot combine with --flow/--diff-grant");
        usage();
    }
    args
}

/// Reads the certification workload: every `SELECT` statement in the
/// `--workload` files plus the `--query` flag, in order.
fn workload_queries(args: &Args) -> Vec<String> {
    let mut queries = Vec::new();
    for path in &args.workloads {
        let sql = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgac-analyze: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let stmts = match fgac::sql::parse_statements(&sql) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgac-analyze: {path} does not parse: {e}");
                std::process::exit(2);
            }
        };
        for stmt in stmts {
            if let fgac::sql::Statement::Query(q) = stmt {
                queries.push(fgac::sql::print_query(&q));
            }
        }
    }
    if let Some(q) = &args.query {
        queries.push(q.clone());
    }
    if queries.is_empty() {
        eprintln!("fgac-analyze: --certify needs at least one --workload or --query");
        std::process::exit(2);
    }
    queries
}

/// The `--certify` mode: admit each workload query as the principal and
/// demand a checker-verified certificate for every accept.
fn run_certify(args: &Args) -> ! {
    let principal = args.principal.as_deref().unwrap_or_default();
    let queries = workload_queries(args);
    let mut failures = 0usize;
    let mut json_rows: Vec<String> = Vec::new();

    for path in &args.scripts {
        let sql = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgac-analyze: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut engine = Engine::new();
        if let Err(e) = engine.admin_script(&sql) {
            eprintln!("fgac-analyze: {path} does not load: {e}");
            std::process::exit(2);
        }
        let session = Session::new(principal);
        for q in &queries {
            match engine.certify(&session, q) {
                Ok(report) if report.is_valid() => {
                    // certify() only returns a valid report after the
                    // independent checker verified the certificate.
                    if let Some(cert) = &report.certificate {
                        if !args.json {
                            println!(
                                "CERTIFIED ({} step(s), {:?}): {q}",
                                cert.steps.len(),
                                cert.verdict
                            );
                        }
                        json_rows.push(certificate_to_json(cert));
                    }
                }
                Ok(report) => {
                    if !args.json {
                        let why = report.reason.as_deref().unwrap_or("not authorized");
                        println!("DENIED ({why}): {q}");
                    }
                    json_rows.push("null".to_string());
                }
                Err(e) => {
                    eprintln!("fgac-analyze: {path}: UNVERIFIED accept of `{q}`: {e}");
                    json_rows.push("null".to_string());
                    failures += 1;
                }
            }
        }
    }

    if args.json {
        println!("[{}]", json_rows.join(","));
    }
    if failures > 0 {
        eprintln!("fgac-analyze: {failures} query(ies) without a verifiable certificate");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Parses the `--diff-grant` operand: exactly one `GRANT` statement.
fn parse_proposed_grant(sql: &str) -> fgac::analyze::ProposedGrant {
    match fgac::sql::parse_statement(sql) {
        Ok(fgac::sql::Statement::Grant(g)) => fgac::analyze::ProposedGrant {
            kind: g.kind,
            object: g.object,
            principal: g.principal,
        },
        Ok(_) => {
            eprintln!("fgac-analyze: --diff-grant takes a GRANT statement, got `{sql}`");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("fgac-analyze: --diff-grant does not parse: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.certify {
        run_certify(&args);
    }
    let mut diags: Vec<Diagnostic> = Vec::new();

    for path in &args.scripts {
        let sql = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgac-analyze: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut engine = Engine::new();
        if let Err(e) = engine.admin_script(&sql) {
            eprintln!("fgac-analyze: {path} does not load: {e}");
            std::process::exit(2);
        }
        if let Some(grant_sql) = &args.diff_grant {
            diags.extend(engine.flow_diff_grant(&parse_proposed_grant(grant_sql)));
        } else if args.flow {
            diags.extend(engine.analyze_flow(args.principal.as_deref()));
        } else {
            diags.extend(engine.analyze_policy(args.principal.as_deref()));
        }
        if let Some(q) = &args.query {
            diags.extend(fgac::analyze::analyze_query(
                engine.database().catalog(),
                q,
                &fgac::analyze::AnalyzeOptions::default(),
            ));
        }
    }

    if args.json {
        println!("{}", diagnostics_to_json(&diags));
    } else if diags.is_empty() {
        println!("policy set is clean: no diagnostics");
    } else {
        for d in &diags {
            println!("{d}");
        }
    }

    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    if errors > 0 {
        eprintln!("fgac-analyze: {errors} error-severity diagnostic(s)");
        std::process::exit(1);
    }
}
