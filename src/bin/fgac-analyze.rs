//! Grant-time policy linter — the CI face of `crates/analyze`.
//!
//! ```text
//! fgac-analyze [--json] [--for <principal>] [--query <sql>] <script.sql>...
//! ```
//!
//! Each script is an admin DDL/grant script (`CREATE TABLE`,
//! `CREATE AUTHORIZATION VIEW`, `CREATE INCLUSION DEPENDENCY`,
//! `GRANT VIEW|CONSTRAINT|ROLE ... TO ...`, seed `INSERT`s) loaded into
//! a fresh engine with no access checks, exactly as a DBA would install
//! it. The installed policy set is then analyzed and every diagnostic
//! printed — human-readable by default, a JSON array with `--json`.
//!
//! Exit status: `0` when no diagnostic has error severity, `1` when at
//! least one does (warnings and unknowns alone do not fail the run),
//! `2` when a script cannot be read or does not load.

use fgac::analyze::{diagnostics_to_json, Severity};
use fgac::prelude::*;

struct Args {
    json: bool,
    principal: Option<String>,
    query: Option<String>,
    scripts: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fgac-analyze [--json] [--for <principal>] [--query <sql>] <script.sql>..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        json: false,
        principal: None,
        query: None,
        scripts: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--for" => match it.next() {
                Some(p) => args.principal = Some(p),
                None => usage(),
            },
            "--query" => match it.next() {
                Some(q) => args.query = Some(q),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => args.scripts.push(a),
        }
    }
    if args.scripts.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for path in &args.scripts {
        let sql = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgac-analyze: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut engine = Engine::new();
        if let Err(e) = engine.admin_script(&sql) {
            eprintln!("fgac-analyze: {path} does not load: {e}");
            std::process::exit(2);
        }
        diags.extend(engine.analyze_policy(args.principal.as_deref()));
        if let Some(q) = &args.query {
            diags.extend(fgac::analyze::analyze_query(
                engine.database().catalog(),
                q,
                &fgac::analyze::AnalyzeOptions::default(),
            ));
        }
    }

    if args.json {
        println!("{}", diagnostics_to_json(&diags));
    } else if diags.is_empty() {
        println!("policy set is clean: no diagnostics");
    } else {
        for d in &diags {
            println!("{d}");
        }
    }

    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    if errors > 0 {
        eprintln!("fgac-analyze: {errors} error-severity diagnostic(s)");
        std::process::exit(1);
    }
}
