//! fgac-lint CLI: runs the `crates/lint` multi-pass engine over the
//! workspace and reports findings.
//!
//! ```text
//! fgac-lint [--json] [--out FILE] [--root DIR] [--max-ms N]
//! ```
//!
//! - `--json` — emit the machine report (`lint-report.json` shape)
//!   to stdout instead of human-readable lines
//! - `--out FILE` — also write the JSON report to FILE
//! - `--root DIR` — workspace root (default: this package's manifest dir)
//! - `--max-ms N` — fail if the whole run took longer than N ms — CI's
//!   guarantee that the analyzer never becomes the slow step
//!
//! Exit codes: 0 clean, 1 findings / stale allowlist entries / runtime
//! gate exceeded, 2 usage or I/O error. Configuration (scope, per-pass
//! settings, allowlists, the Relaxed audit ledger) lives in `lint.toml`
//! at the workspace root.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    out: Option<PathBuf>,
    root: PathBuf,
    max_ms: Option<u128>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        out: None,
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")),
        max_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                args.out = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = PathBuf::from(v);
            }
            "--max-ms" => {
                let v = it.next().ok_or("--max-ms needs a number")?;
                let n: u128 = v
                    .parse()
                    .map_err(|_| format!("--max-ms: `{v}` is not a number"))?;
                args.max_ms = Some(n);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fgac-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let config_path = args.root.join("lint.toml");
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fgac-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match fgac_lint::config::Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fgac-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match fgac_lint::run(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fgac-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("fgac-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for a in &report.unused_allows {
            println!("lint.toml: unused allowlist entry: {a}");
        }
        println!(
            "fgac-lint: {} file(s), {} pass(es), {} finding(s), {} ms",
            report.files_scanned,
            report.passes.len(),
            report.findings.len(),
            report.elapsed_ms
        );
    }

    let mut failed = false;
    if !report.findings.is_empty() {
        eprintln!(
            "fgac-lint: {} finding(s) — fix them or add a justified [[allow]] to lint.toml",
            report.findings.len()
        );
        failed = true;
    }
    if !report.unused_allows.is_empty() {
        eprintln!(
            "fgac-lint: {} unused allowlist entr(ies) in lint.toml — remove the stale entries",
            report.unused_allows.len()
        );
        failed = true;
    }
    if let Some(max) = args.max_ms {
        if report.elapsed_ms > max {
            eprintln!(
                "fgac-lint: run took {} ms, over the {max} ms budget — the analyzer must \
                 not become the slow step",
                report.elapsed_ms
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
