//! Panic-freedom lint for the commit/recovery/prover paths.
//!
//! Scans the modules whose no-panic discipline is an invariant — the
//! WAL crate, the durability layer, the DML commit path, the
//! implication prover, the Non-Truman validator, and the certificate
//! checker — for `.unwrap(` / `.expect(` calls and `panic!` /
//! `unreachable!` / `todo!` macro invocations in non-test code, and
//! fails with exit status 1 if any are found. Runs in CI as a cheap,
//! toolchain-independent complement to the `clippy::disallowed_methods`
//! deny (clippy.toml).
//!
//! Unlike the grep it replaces, the scan is token-aware: occurrences
//! inside line/block comments (nested), string / raw-string / byte /
//! char literals, and `#[cfg(test)]`-gated items are not violations,
//! `.unwrap_or_default(` / `.expect_err(` do not match, and
//! `debug_assert!` / `assert!` (whose failure is a caught programming
//! error, not a data-dependent path) remain allowed.

use std::fmt;
use std::path::{Path, PathBuf};

/// One `.unwrap(`/`.expect(` call or `panic!`/`unreachable!`/`todo!`
/// invocation found in non-test code. `method` values ending in `!`
/// denote macros.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    line: usize,
    method: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.method.ends_with('!') {
            write!(f, "line {}: {}(..) is forbidden here", self.line, self.method)
        } else {
            write!(f, "line {}: .{}() is forbidden here", self.line, self.method)
        }
    }
}

/// The source text reduced to code: comments and literal *contents*
/// blanked out (replaced by spaces), line structure preserved so
/// reported line numbers match the original file.
fn strip_noncode(src: &str) -> Vec<(char, usize)> {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<(char, usize)> = Vec::with_capacity(chars.len());
    let mut line = 1usize;
    let mut i = 0usize;

    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(('\n', line));
            line += 1;
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment — Rust block comments nest.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    out.push(('\n', line));
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br##"..."##. Only when
        // the r/b starts an identifier-like token of its own.
        let prev_ident = i > 0 && is_ident(chars[i - 1]);
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if c == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if c == 'r' || j > i {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    // Scan for the closing quote + same number of '#'.
                    out.push((' ', line));
                    i = k + 1;
                    'raw: while i < chars.len() {
                        if chars[i] == '\n' {
                            out.push(('\n', line));
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if chars[i] == '"' {
                            let mut h = 0usize;
                            while chars.get(i + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h >= hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain (or byte) string literal with escapes.
        if c == '"' || (c == 'b' && !prev_ident && chars.get(i + 1) == Some(&'"')) {
            out.push((' ', line));
            i += if c == 'b' { 2 } else { 1 };
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '\n' => {
                        out.push(('\n', line));
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals; 'a in a
        // generic position has no closing quote within two chars.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: skip to closing quote.
                out.push((' ', line));
                i += 2;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                out.push((' ', line));
                i += 3;
                continue;
            }
            // Lifetime: keep the tick so tokens don't fuse.
            out.push(('\'', line));
            i += 1;
            continue;
        }
        out.push((c, line));
        i += 1;
    }
    out
}

/// Whether `code[i..]` starts the attribute `#[cfg(test)]` (whitespace
/// insensitive). Returns the index just past the closing `]`.
fn cfg_test_attr(code: &[(char, usize)], i: usize) -> Option<usize> {
    if code[i].0 != '#' {
        return None;
    }
    let mut j = i + 1;
    while j < code.len() && code[j].0.is_whitespace() {
        j += 1;
    }
    if j >= code.len() || code[j].0 != '[' {
        return None;
    }
    let mut body = String::new();
    let mut depth = 1usize;
    j += 1;
    while j < code.len() && depth > 0 {
        match code[j].0 {
            '[' => depth += 1,
            ']' => depth -= 1,
            ch if !ch.is_whitespace() && depth >= 1 => body.push(ch),
            _ => {}
        }
        j += 1;
    }
    // The final ']' was pushed before depth hit 0? No: the match arm
    // above only pushes when the char is not '[' / ']'.
    if body == "cfg(test)" {
        Some(j)
    } else {
        None
    }
}

/// Skips the item a `#[cfg(test)]` attribute gates: everything through
/// the matching close brace of the item's body, or through the first
/// `;` for body-less items (`#[cfg(test)] use ...;`).
fn skip_gated_item(code: &[(char, usize)], mut i: usize) -> usize {
    while i < code.len() {
        match code[i].0 {
            '{' => {
                let mut depth = 1usize;
                i += 1;
                while i < code.len() && depth > 0 {
                    match code[i].0 {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            ';' => return i + 1,
            // A stacked attribute (`#[cfg(test)] #[derive(..)] struct S;`)
            // — step over it without treating its `[]` as the body.
            '#' => {
                i += 1;
                while i < code.len() && code[i].0.is_whitespace() {
                    i += 1;
                }
                if i < code.len() && code[i].0 == '[' {
                    let mut depth = 1usize;
                    i += 1;
                    while i < code.len() && depth > 0 {
                        match code[i].0 {
                            '[' => depth += 1,
                            ']' => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans one file's source for forbidden calls in non-test code.
fn find_violations(src: &str) -> Vec<Violation> {
    let code = strip_noncode(src);
    let mut out = Vec::new();
    let mut i = 0usize;
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < code.len() {
        if let Some(after) = cfg_test_attr(&code, i) {
            i = skip_gated_item(&code, after);
            continue;
        }
        if code[i].0 == '.' {
            let mut j = i + 1;
            while j < code.len() && code[j].0.is_whitespace() {
                j += 1;
            }
            let start = j;
            while j < code.len() && is_ident(code[j].0) {
                j += 1;
            }
            let name: String = code[start..j].iter().map(|&(c, _)| c).collect();
            if name == "unwrap" || name == "expect" {
                let mut k = j;
                while k < code.len() && code[k].0.is_whitespace() {
                    k += 1;
                }
                if k < code.len() && code[k].0 == '(' {
                    out.push(Violation {
                        line: code[start].1,
                        method: if name == "unwrap" { "unwrap" } else { "expect" },
                    });
                }
            }
            i = j.max(i + 1);
            continue;
        }
        // A bare identifier: check for the forbidden panic macros. Only
        // a whole identifier counts (`my_panic!` does not), and only
        // when followed by `!` and an opening delimiter.
        if is_ident(code[i].0) && !code[i].0.is_ascii_digit() {
            let prev_is_ident = i > 0 && is_ident(code[i - 1].0);
            let prev_is_dot = i > 0 && code[i - 1].0 == '.';
            let start = i;
            let mut j = i;
            while j < code.len() && is_ident(code[j].0) {
                j += 1;
            }
            if !prev_is_ident && !prev_is_dot {
                let name: String = code[start..j].iter().map(|&(c, _)| c).collect();
                let mac: Option<&'static str> = match name.as_str() {
                    "panic" => Some("panic!"),
                    "unreachable" => Some("unreachable!"),
                    "todo" => Some("todo!"),
                    _ => None,
                };
                if let Some(mac) = mac {
                    let mut k = j;
                    while k < code.len() && code[k].0.is_whitespace() {
                        k += 1;
                    }
                    if k < code.len() && code[k].0 == '!' {
                        k += 1;
                        while k < code.len() && code[k].0.is_whitespace() {
                            k += 1;
                        }
                        if k < code.len() && matches!(code[k].0, '(' | '[' | '{') {
                            out.push(Violation {
                                line: code[start].1,
                                method: mac,
                            });
                        }
                    }
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Epoch-discipline check (PR-8 invalidation contract): every policy or
/// schema mutation funnels through `Engine::apply_change`, which bumps
/// `policy_epoch` and sweeps all the admission caches with the delta.
/// A direct `policy_epoch` assignment, or a `.clear()` /
/// `.invalidate()` / `.apply_policy_change()` on one of the swept
/// caches (`cache`, `plan_cache`, `compiled`, `flow`) anywhere else in
/// the engine, bypasses that contract — a future PR could leave one
/// cache stale while the others move. Scans `crates/core/src/engine.rs`
/// only: the caches' own modules legitimately mutate themselves, and
/// recovery (durability.rs) rebuilds from scratch.
fn find_epoch_violations(src: &str) -> Vec<(usize, String)> {
    let code = strip_noncode(src);
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::new();

    // Track the enclosing function: (name, brace depth of its body).
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut depth = 0usize;
    let mut i = 0usize;

    let next_nonws = |code: &[(char, usize)], mut j: usize| {
        while j < code.len() && code[j].0.is_whitespace() {
            j += 1;
        }
        j
    };

    while i < code.len() {
        let c = code[i].0;
        if c == '{' {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                fn_stack.push((name, depth));
            }
            i += 1;
            continue;
        }
        if c == '}' {
            if fn_stack.last().is_some_and(|(_, d)| *d == depth) {
                fn_stack.pop();
            }
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if c == ';' {
            // Body-less declaration cancels a pending fn.
            pending_fn = None;
            i += 1;
            continue;
        }
        if is_ident(c) && !c.is_ascii_digit() && !(i > 0 && is_ident(code[i - 1].0)) {
            let start = i;
            let mut j = i;
            while j < code.len() && is_ident(code[j].0) {
                j += 1;
            }
            let word: String = code[start..j].iter().map(|&(ch, _)| ch).collect();
            let in_sweep = fn_stack.first().is_some_and(|(n, _)| n == "apply_change");
            if word == "fn" {
                let k = next_nonws(&code, j);
                let mut m = k;
                while m < code.len() && is_ident(code[m].0) {
                    m += 1;
                }
                if m > k {
                    pending_fn = Some(code[k..m].iter().map(|&(ch, _)| ch).collect());
                }
                i = m.max(j);
                continue;
            }
            if word == "policy_epoch" && !in_sweep {
                // Only the engine's own field counts: the receiver must
                // be literally `self`. Certificates carry a
                // `policy_epoch` field too, and stamping one
                // (`cert.policy_epoch = ...`) is not an epoch mutation.
                let mut b = start;
                while b > 0 && code[b - 1].0.is_whitespace() {
                    b -= 1;
                }
                let self_recv = b > 0 && code[b - 1].0 == '.' && {
                    let mut r = b - 1;
                    while r > 0 && code[r - 1].0.is_whitespace() {
                        r -= 1;
                    }
                    let recv_end = r;
                    while r > 0 && is_ident(code[r - 1].0) {
                        r -= 1;
                    }
                    let recv: String = code[r..recv_end].iter().map(|&(ch, _)| ch).collect();
                    recv == "self"
                };
                // Assignment: `= x` (not `==`), `+=`, `-=`.
                let k = next_nonws(&code, j);
                let assigns = match code.get(k).map(|&(ch, _)| ch) {
                    Some('=') => code.get(k + 1).map(|&(ch, _)| ch) != Some('='),
                    Some('+') | Some('-') => code.get(k + 1).map(|&(ch, _)| ch) == Some('='),
                    _ => false,
                };
                if assigns && self_recv {
                    out.push((
                        code[start].1,
                        "policy_epoch mutated outside Engine::apply_change".to_string(),
                    ));
                }
                i = j;
                continue;
            }
            // Receiver chain ending in a swept cache, then `.clear(` /
            // `.invalidate(` / `.apply_policy_change(`.
            if matches!(word.as_str(), "cache" | "plan_cache" | "compiled" | "flow")
                && !in_sweep
                && code.get(j).map(|&(ch, _)| ch) == Some('.')
            {
                let k = next_nonws(&code, j + 1);
                let mut m = k;
                while m < code.len() && is_ident(code[m].0) {
                    m += 1;
                }
                let method: String = code[k..m].iter().map(|&(ch, _)| ch).collect();
                let p = next_nonws(&code, m);
                if matches!(method.as_str(), "clear" | "invalidate" | "apply_policy_change")
                    && code.get(p).map(|&(ch, _)| ch) == Some('(')
                {
                    out.push((
                        code[start].1,
                        format!(
                            "{word}.{method}() outside Engine::apply_change bypasses \
                             the invalidation sweep"
                        ),
                    ));
                }
                i = m.max(j);
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// The files whose non-test code must not panic. Directories are
/// scanned for every `.rs` file so new modules are covered by default.
fn lint_targets(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("crates/exec/src/dml.rs"),
        root.join("crates/core/src/durability.rs"),
        // The compiled fast path sits on the admission hot path: a panic
        // there takes down every connection's validity check.
        root.join("crates/core/src/compiled.rs"),
        // Churn survival (PR-8): the invalidation sweep and the caches
        // it restamps run inside the engine's writer critical section —
        // a panic there poisons the lock for every connection.
        root.join("crates/core/src/invalidation.rs"),
        root.join("crates/core/src/cache.rs"),
        root.join("crates/core/src/plancache.rs"),
        root.join("crates/algebra/src/implication.rs"),
        root.join("crates/analyze/src/cert.rs"),
        root.join("crates/analyze/src/certjson.rs"),
    ];
    for dir in [
        "crates/wal/src",
        "crates/core/src/nontruman",
        "crates/server/src",
        "src/bin",
    ] {
        if let Ok(entries) = std::fs::read_dir(root.join(dir)) {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.extension().is_some_and(|e| e == "rs") {
                    files.push(p);
                }
            }
        }
    }
    files.sort();
    files
}

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut total = 0usize;
    let mut scanned = 0usize;
    for path in lint_targets(&root) {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgac-lint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        scanned += 1;
        for v in find_violations(&src) {
            let rel = path.strip_prefix(&root).unwrap_or(&path);
            println!("{}:{}", rel.display(), v);
            total += 1;
        }
    }
    let engine_path = root.join("crates/core/src/engine.rs");
    match std::fs::read_to_string(&engine_path) {
        Ok(src) => {
            scanned += 1;
            for (line, msg) in find_epoch_violations(&src) {
                println!("crates/core/src/engine.rs:line {line}: {msg}");
                total += 1;
            }
        }
        Err(e) => {
            eprintln!("fgac-lint: cannot read {}: {e}", engine_path.display());
            std::process::exit(2);
        }
    }
    if total > 0 {
        eprintln!(
            "fgac-lint: {total} violation(s): forbidden panic sites in \
             commit/recovery/prover code (bubble a Result instead) or \
             epoch-discipline breaches (route policy mutations through \
             Engine::apply_change)"
        );
        std::process::exit(1);
    }
    println!("fgac-lint: {scanned} files clean");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<usize> {
        find_violations(src).into_iter().map(|v| v.line).collect()
    }

    #[test]
    fn plain_calls_are_found_with_correct_lines() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n}\n";
        let vs = find_violations(src);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0], Violation { line: 2, method: "unwrap" });
        assert_eq!(vs[1], Violation { line: 3, method: "expect" });
    }

    #[test]
    fn comments_and_strings_do_not_match() {
        let src = r#"
fn f() {
    // x.unwrap() in a line comment
    /* y.expect("..") in a block /* nested .unwrap() */ comment */
    let s = "call .unwrap() maybe";
    let r = r#who; // lifetime-free identifier noise
    let raw = r"\.unwrap()";
    let c = '"'; // a quote char literal must not open a string
    let after = x.ok(); // .expect("..") would be here
}
"#;
        assert!(lines(src).is_empty(), "got {:?}", find_violations(src));
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_strings_are_skipped() {
        let src = "fn f() { let a = r#\"x.unwrap()\"#; let b = b\"y.expect(\"; }\n";
        assert!(lines(src).is_empty());
    }

    #[test]
    fn lookalike_methods_do_not_match() {
        let src = "fn f() { a.unwrap_or_default(); b.unwrap_or(0); c.expect_err(\"e\"); d.expect_end(); }\n";
        assert!(lines(src).is_empty());
    }

    #[test]
    fn spaced_calls_still_match() {
        let src = "fn f() { a . unwrap (); b.\n    expect(\"m\"); }\n";
        assert_eq!(find_violations(src).len(), 2);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
fn prod() { x.ok(); }

#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); y.expect("fine in tests"); }
}

fn prod2() { z.unwrap(); }
"#;
        let vs = find_violations(src);
        assert_eq!(vs.len(), 1, "got {vs:?}");
        assert_eq!(vs[0].method, "unwrap");
        assert_eq!(vs[0].line, 9);
    }

    #[test]
    fn cfg_test_with_stacked_attributes_and_semicolon_items() {
        let src = "
#[cfg(test)]
#[derive(Debug)]
struct T { x: u8 }

#[cfg(test)]
use helpers::unwrap_all;

fn prod() {}
";
        assert!(lines(src).is_empty());
        // cfg(not(test)) and cfg_attr must NOT be treated as exempt.
        let src2 = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        assert_eq!(find_violations(src2).len(), 1);
    }

    #[test]
    fn panic_macros_are_found() {
        let src = "fn f() {\n    panic!(\"boom\");\n    unreachable!();\n    todo!()\n}\n";
        let vs = find_violations(src);
        assert_eq!(vs.len(), 3, "got {vs:?}");
        assert_eq!(vs[0], Violation { line: 2, method: "panic!" });
        assert_eq!(vs[1], Violation { line: 3, method: "unreachable!" });
        assert_eq!(vs[2], Violation { line: 4, method: "todo!" });
    }

    #[test]
    fn panic_macro_lookalikes_do_not_match() {
        let src = "fn f() {\n\
            debug_assert!(x);\n\
            assert!(y);\n\
            my_panic!(1);\n\
            let panic = 3; panic + 1;\n\
            s.panic!();\n\
            // panic!(\"in a comment\")\n\
            let t = \"panic!(in a string)\";\n\
        }\n";
        assert!(lines(src).is_empty(), "got {:?}", find_violations(src));
    }

    #[test]
    fn cfg_test_exempts_panic_macros_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"fine\"); }\n}\nfn prod() { unreachable!(); }\n";
        let vs = find_violations(src);
        assert_eq!(vs.len(), 1, "got {vs:?}");
        assert_eq!(vs[0].method, "unreachable!");
    }

    /// The acceptance check: the real durability module is clean today,
    /// and injecting an unwrap into it is caught.
    #[test]
    fn real_durability_module_is_clean_and_injection_is_caught() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let path = root.join("crates/core/src/durability.rs");
        let src = std::fs::read_to_string(&path).expect("durability.rs readable");
        assert!(
            find_violations(&src).is_empty(),
            "durability.rs has non-test panic sites"
        );
        let injected = format!("{src}\nfn _torn() {{ let o: Option<u8> = None; o.unwrap(); }}\n");
        let vs = find_violations(&injected);
        assert_eq!(vs.len(), 1, "injected unwrap must be caught");
        assert_eq!(vs[0].method, "unwrap");
    }

    #[test]
    fn epoch_mutations_outside_apply_change_are_flagged() {
        let src = "
impl Engine {
    fn grant_fast(&mut self) {
        self.policy_epoch += 1;
        self.cache.clear();
        self.compiled.invalidate();
    }
}
";
        let vs = find_epoch_violations(src);
        assert_eq!(vs.len(), 3, "got {vs:?}");
        assert!(vs[0].1.contains("policy_epoch"));
        assert!(vs[1].1.contains("cache.clear"));
        assert!(vs[2].1.contains("compiled.invalidate"));
    }

    #[test]
    fn epoch_mutations_inside_apply_change_are_allowed() {
        let src = "
impl Engine {
    pub(crate) fn apply_change(&mut self, delta: PolicyDelta) {
        self.policy_epoch += 1;
        self.cache.clear();
        self.plan_cache.clear();
        self.compiled.invalidate();
        self.flow.apply_policy_change(from, to, affects, changed);
    }
}
";
        assert!(find_epoch_violations(src).is_empty());
    }

    #[test]
    fn epoch_reads_and_comparisons_are_not_mutations() {
        let src = "
impl Engine {
    fn ok(&self) -> bool {
        let e = self.policy_epoch;
        self.policy_epoch == other && entry.policy_epoch <= e
    }
    fn init() -> Engine {
        Engine { policy_epoch: 0, cache: ValidityCache::new() }
    }
    fn sweep_helpers(&mut self) {
        // invalidate_deps is a targeted eviction, not the full sweep.
        self.plan_cache.invalidate_deps(&names);
        self.plan_cache.stats();
    }
    fn certify(&self, cert: &mut Certificate) {
        // Certificates carry their own policy_epoch stamp; writing it
        // is not an engine-epoch mutation.
        cert.policy_epoch = self.policy_epoch;
        report.certificate.policy_epoch += 1;
    }
}
";
        assert!(
            find_epoch_violations(src).is_empty(),
            "got {:?}",
            find_epoch_violations(src)
        );
    }

    /// The acceptance check: the real engine honors the invalidation
    /// contract today, and an injected bypass is caught.
    #[test]
    fn real_engine_honors_epoch_discipline_and_injection_is_caught() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(root.join("crates/core/src/engine.rs"))
            .expect("engine.rs readable");
        let vs = find_epoch_violations(&src);
        assert!(vs.is_empty(), "engine.rs epoch-discipline breaches: {vs:?}");
        let injected =
            format!("{src}\nimpl Engine {{ fn sneaky(&mut self) {{ self.policy_epoch = 0; }} }}\n");
        let vs = find_epoch_violations(&injected);
        assert_eq!(vs.len(), 1, "injected epoch bump must be caught: {vs:?}");
    }

    /// Every file the binary lints is clean in the working tree.
    #[test]
    fn whole_target_set_is_clean() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let targets = lint_targets(&root);
        assert!(targets.len() >= 8, "expected wal + nontruman modules, got {targets:?}");
        for path in targets {
            let src = std::fs::read_to_string(&path).expect("lint target readable");
            let vs = find_violations(&src);
            assert!(vs.is_empty(), "{}: {vs:?}", path.display());
        }
    }
}
