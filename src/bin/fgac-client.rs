//! `fgac-client` — drive a running `fgac-server` from the shell.
//!
//! ```text
//! fgac-client --addr HOST:PORT --user PRINCIPAL \
//!             [-e SQL]... [--file SCRIPT.sql] [--admin-script SQL] \
//!             [--deadline-ms N] [--timeout-ms N] [--metrics] [--lax]
//! ```
//!
//! Statements run in the order their flags appear. Each statement
//! prints one status line whose first token is machine-greppable
//! (`ROWS n`, `AFFECTED n`, `OK`, `DENIED`, `ERROR`, `SHED`,
//! `TIMEOUT`, `UNAVAILABLE`, `PROTOCOL`), with result rows indented
//! beneath. The CI smoke job drives a served store with this tool and
//! asserts on those tokens.
//!
//! Exit status: 2 on usage errors, 1 on transport errors, 3 if any
//! statement's response was not `ROWS`/`AFFECTED`/`OK` (suppress with
//! `--lax` when a rejection is the expected outcome), else 0.

use fgac_server::{AdminOp, Client, Request, Response};
use std::time::Duration;

enum Op {
    Sql(String),
    Admin(String),
}

struct Args {
    addr: String,
    user: String,
    ops: Vec<Op>,
    deadline_ms: Option<u64>,
    timeout_ms: u64,
    metrics: bool,
    lax: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        user: "anonymous".into(),
        ops: Vec::new(),
        deadline_ms: None,
        timeout_ms: 5_000,
        metrics: false,
        lax: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--user" => args.user = value("--user")?,
            "-e" => args.ops.push(Op::Sql(value("-e")?)),
            "--admin-script" => args.ops.push(Op::Admin(value("--admin-script")?)),
            "--file" => {
                let path = value("--file")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {path}: {e}"))?;
                for stmt in split_statements(&text) {
                    args.ops.push(Op::Sql(stmt));
                }
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(parse_num(&value("--deadline-ms")?)?);
            }
            "--timeout-ms" => args.timeout_ms = parse_num(&value("--timeout-ms")?)?,
            "--metrics" => args.metrics = true,
            "--lax" => args.lax = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: {s}"))
}

/// Strips `--` line comments and splits on `;`, dropping empties — the
/// same shape the repo's example workload files use.
fn split_statements(text: &str) -> Vec<String> {
    let stripped: Vec<&str> = text
        .lines()
        .map(|line| match line.find("--") {
            Some(i) => &line[..i],
            None => line,
        })
        .collect();
    stripped
        .join("\n")
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Prints the status line (and rows) for one response; returns whether
/// it counts as a success for the exit status.
fn report(response: &Response) -> bool {
    match response {
        Response::Rows { names, rows } => {
            println!("ROWS {}", rows.len());
            let header: Vec<String> = names.iter().map(|n| n.to_string()).collect();
            println!("  {}", header.join("\t"));
            for row in rows {
                let cells: Vec<String> = row.0.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join("\t"));
            }
            true
        }
        Response::Affected(n) => {
            println!("AFFECTED {n}");
            true
        }
        Response::Ok(m) => {
            println!("OK {m}");
            true
        }
        Response::Denied(m) => {
            println!("DENIED {m}");
            false
        }
        Response::Error(m) => {
            println!("ERROR {m}");
            false
        }
        Response::Shed(m) => {
            println!("SHED {m}");
            false
        }
        Response::Timeout(m) => {
            println!("TIMEOUT {m}");
            false
        }
        Response::Unavailable(m) => {
            println!("UNAVAILABLE {m}");
            false
        }
        Response::Protocol(m) => {
            println!("PROTOCOL {m}");
            false
        }
    }
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fgac-client: {e}");
            return 2;
        }
    };
    let timeout = Duration::from_millis(args.timeout_ms);
    let mut client = match Client::connect(args.addr.as_str(), timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fgac-client: {e}");
            return 1;
        }
    };
    match client.hello(&args.user) {
        Ok(Response::Ok(_)) => {}
        Ok(other) => {
            eprintln!("fgac-client: handshake rejected: {other:?}");
            return 1;
        }
        Err(e) => {
            eprintln!("fgac-client: handshake: {e}");
            return 1;
        }
    }

    let mut rejected = 0usize;
    for op in &args.ops {
        let outcome = match op {
            Op::Sql(sql) => client.call(&Request::Query {
                sql: sql.clone(),
                deadline_ms: args.deadline_ms,
            }),
            Op::Admin(script) => client.admin(AdminOp::Script(script.clone())),
        };
        match outcome {
            Ok(response) => {
                if !report(&response) {
                    rejected += 1;
                }
            }
            Err(e) => {
                eprintln!("fgac-client: {e}");
                return 1;
            }
        }
    }

    if args.metrics {
        match client.metrics() {
            Ok(counters) => {
                for (name, value) in counters {
                    println!("METRIC {name}={value}");
                }
            }
            Err(e) => {
                eprintln!("fgac-client: metrics: {e}");
                return 1;
            }
        }
    }
    if let Err(e) = client.bye() {
        eprintln!("fgac-client: bye: {e}");
        return 1;
    }
    if rejected > 0 && !args.lax {
        eprintln!("fgac-client: {rejected} statement(s) rejected");
        return 3;
    }
    0
}
