//! An interactive shell for the fgac engine — the "software layer that
//! can add fine-grained authorization to an existing database or
//! application" the paper's conclusion envisions.
//!
//! ```text
//! cargo run --bin fgac-repl              # start with an empty engine
//! cargo run --bin fgac-repl -- --demo    # preload the university demo
//! ```
//!
//! Meta-commands (see `\help` inside the shell):
//!
//! ```text
//! \admin <sql>;        run DDL/DML as the DBA (no checks)
//! \user <id>           switch the session user
//! \param <name> <val>  set a session parameter (e.g. \param hour 13)
//! \grant <user> <view> grant an authorization view
//! \constraint <user> <name>   make a constraint visible
//! \authorize <user> <authorize-stmt>;  grant an update authorization
//! \check <sql>;        explain validity without executing
//! \truman <table> <view>    set a Truman substitution policy
//! \truman-run <sql>;   run a query under the Truman policy
//! \plan <sql>;         show the optimizer's chosen plan
//! \views               list catalog views
//! \tables              list tables with row counts
//! ```
//!
//! Anything else is executed as the current user under the Non-Truman
//! model.

use fgac::prelude::*;
use fgac::workload::university::{build, UniversityConfig};
use std::io::{BufRead, Write};

fn main() {
    let demo = std::env::args().any(|a| a == "--demo");
    let mut engine = if demo {
        match build(UniversityConfig::tiny()) {
            Ok(uni) => {
                println!("loaded the university demo (tiny). try: \\user s000000");
                uni.engine
            }
            Err(e) => {
                eprintln!("fgac-repl: demo fixture failed to build: {e}");
                std::process::exit(1);
            }
        }
    } else {
        Engine::new()
    };
    let mut session = Session::new("admin");
    let mut params: Vec<(String, String)> = Vec::new();
    let mut truman = TrumanPolicy::new();

    println!("fgac repl — Non-Truman fine-grained access control");
    println!("type \\help for commands; SQL runs as user `{}`", session.user());

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("{}> ", session.user());
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }

        // Meta-commands act immediately; SQL accumulates to `;`.
        if buffer.is_empty() && line.starts_with('\\') {
            let mut parts = line.splitn(3, ' ');
            let cmd = parts.next().unwrap_or("");
            let a = parts.next().unwrap_or("").to_string();
            let b = parts.next().unwrap_or("").to_string();
            match cmd {
                "\\quit" | "\\q" => break,
                "\\help" => print_help(),
                "\\user" => {
                    session = Session::new(a.clone());
                    for (k, v) in &params {
                        session = session.with_param(k, v.as_str());
                    }
                    println!("now user `{a}`");
                }
                "\\param" => {
                    params.push((a.clone(), b.clone()));
                    session = Session::new(session.user().to_string());
                    for (k, v) in &params {
                        session = session.with_param(k, v.as_str());
                    }
                    println!("set ${a} = {b}");
                }
                "\\grant" => match engine.grant_view(&a, &b) {
                    Ok(()) => println!("granted view {b} to {a}"),
                    Err(e) => println!("error: {e}"),
                },
                "\\constraint" => match engine.grant_constraint(&a, &b) {
                    Ok(()) => println!("made constraint {b} visible to {a}"),
                    Err(e) => println!("error: {e}"),
                },
                "\\authorize" => match engine.grant_update_sql(&a, b.trim_end_matches(';')) {
                    Ok(()) => println!("granted update authorization to {a}"),
                    Err(e) => println!("error: {e}"),
                },
                "\\admin" => {
                    let sql = format!("{a} {b}");
                    match engine.admin_script(sql.trim_end_matches(';')) {
                        Ok(()) => println!("ok"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "\\check" => {
                    let sql = format!("{a} {b}");
                    match engine.check(&session, sql.trim_end_matches(';')) {
                        Ok(report) => {
                            println!("verdict: {:?}", report.verdict);
                            for rule in &report.rules {
                                println!("  rule: {rule}");
                            }
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                "\\truman" => {
                    truman = truman.clone().substitute_view(a.as_str(), b.as_str());
                    println!("truman policy: {a} -> {b}");
                }
                "\\truman-run" => {
                    let sql = format!("{a} {b}");
                    match engine.truman_execute(&truman, &session, sql.trim_end_matches(';')) {
                        Ok(r) => print!("{}", r.to_table()),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "\\views" => {
                    for v in engine.database().catalog().views() {
                        println!(
                            "  {}{}",
                            v.name,
                            if v.authorization { "  [authorization]" } else { "" }
                        );
                    }
                }
                "\\tables" => {
                    for t in engine.database().catalog().tables() {
                        let rows = engine
                            .database()
                            .table(&t.name)
                            .map(|tb| tb.len())
                            .unwrap_or(0);
                        println!("  {} {}  ({rows} rows)", t.name, t.schema);
                    }
                }
                "\\plan" => {
                    // Show the optimizer's chosen plan for a query.
                    let sql = format!("{a} {b}");
                    let out = (|| -> Result<String> {
                        let q = fgac::sql::parse_query(sql.trim_end_matches(';'))?;
                        let bound = fgac::algebra::bind_query(
                            engine.database().catalog(),
                            &q,
                            session.params(),
                        )?;
                        let mut dag = fgac::optimizer::Dag::new();
                        let root = dag.insert_plan(&bound.plan);
                        fgac::optimizer::expand(
                            &mut dag,
                            &fgac::optimizer::ExpandOptions::default(),
                        );
                        let model = fgac::optimizer::CostModel::new(
                            fgac::optimizer::TableStats::from_database(engine.database()),
                        );
                        let (best, cost) =
                            fgac::optimizer::extract_best(&dag, root, &model)
                                .ok_or_else(|| Error::Internal("no plan".into()))?;
                        Ok(format!("{best}(estimated cost {cost:.0})"))
                    })();
                    match out {
                        Ok(plan) => println!("{plan}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                other => println!("unknown command {other}; try \\help"),
            }
            continue;
        }

        buffer.push_str(line);
        buffer.push(' ');
        if !line.ends_with(';') {
            continue;
        }
        let sql = buffer.trim_end().trim_end_matches(';').to_string();
        buffer.clear();

        match engine.execute(&session, &sql) {
            Ok(EngineResponse::Rows(r)) => {
                print!("{}", r.to_table());
                println!("({} row(s))", r.rows.len());
            }
            Ok(EngineResponse::Affected(n)) => println!("ok, {n} row(s) affected"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}

fn print_help() {
    for line in [
        "\\admin <sql>;               DDL/DML as the DBA",
        "\\user <id>                  switch session user",
        "\\param <name> <value>       set a session parameter",
        "\\grant <user> <view>        grant an authorization view",
        "\\constraint <user> <name>   make an integrity constraint visible",
        "\\authorize <user> <stmt>;   grant an update authorization",
        "\\check <sql>;               explain validity without executing",
        "\\truman <table> <view>      add a Truman substitution",
        "\\truman-run <sql>;          execute under the Truman policy",
        "\\views                      list catalog views",
        "\\tables                     list tables with row counts",
        "\\plan <sql>;                show the optimizer's chosen plan",
        "\\quit                       exit",
        "",
        "anything else: SQL executed as the current user (Non-Truman).",
    ] {
        println!("{line}");
    }
}
