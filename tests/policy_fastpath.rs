//! Differential properties of the compiled authorization fast path.
//!
//! The fast path (`fgac_core::compiled`) may only ever *accelerate* the
//! Non-Truman validator, never change it. These tests drive a grid of
//! grant states × queries through both paths and require:
//!
//! 1. **Soundness**: every fast-path ACCEPT (a report whose first rule
//!    line starts with `FP`) is also accepted — unconditionally — by a
//!    pure prover run with no compiled snapshot installed.
//! 2. **Certification**: every fast-path accept mints a certificate the
//!    independent checker verifies (`Engine::certify` errors out
//!    otherwise, and debug builds additionally shadow-check every
//!    engine accept).
//! 3. **Transparency**: on a fast-path miss the verdict is exactly the
//!    pure prover's, for every verdict class.
//! 4. **No stale masks**: a revoke invalidates the principal's compiled
//!    snapshot immediately — the same query that fast-path-accepted
//!    before the revoke is denied right after it, across many
//!    grant/revoke epochs.
//!
//! Fast-path hits are detected through the `FP` rule-line marker, not
//! the process-wide counters: counters are shared across the whole test
//! process and race with other tests.

use fgac::prelude::*;

/// Schema + a mix of compilable and residual authorization views.
fn engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table students (
            student_id varchar not null, name varchar not null,
            type varchar not null, primary key (student_id));
        create table courses (
            course_id varchar not null, name varchar not null,
            primary key (course_id));
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));

        -- Compilable (unconditional, parameter-free) coverage:
        create authorization view allgrades as select * from grades;
        create authorization view gradecols as
            select student_id, grade from grades;
        create authorization view allstudents as select * from students;

        -- Residual views: the fast path must never compile these.
        create authorization view mygrades as
            select * from grades where student_id = $user_id;
        create authorization view passing as
            select * from grades where grade > 50;
        create authorization view onegrade as
            select * from grades where student_id = $$1;

        insert into students values
            ('11', 'ann', 'FullTime'), ('12', 'bob', 'PartTime');
        insert into courses values ('cs101', 'intro'), ('cs202', 'systems');
        insert into grades values
            ('11', 'cs101', 90), ('12', 'cs101', 70), ('12', 'cs202', 40);
        ",
    )
    .unwrap();
    e
}

const VIEWS: [&str; 6] = [
    "allgrades",
    "gradecols",
    "allstudents",
    "mygrades",
    "passing",
    "onegrade",
];

const QUERIES: [&str; 9] = [
    // Single-scan SPJ over grades, column-precise.
    "select grade from grades where student_id = '11'",
    "select grade from grades where course_id = 'cs101'",
    "select * from grades",
    // Aggregate (non-SPJ): needs full-width coverage on the fast path.
    "select course_id, avg(grade) from grades group by course_id",
    // DISTINCT projection.
    "select distinct student_id from grades",
    // Join across two relations.
    "select students.name, grades.grade from students, grades \
     where students.student_id = grades.student_id",
    // Self-join.
    "select a.grade from grades a, grades b \
     where a.student_id = b.student_id and b.course_id = 'cs202'",
    // Uncoverable relation unless allstudents is granted.
    "select name from students where type = 'FullTime'",
    // Touches a relation no view ever covers: always invalid.
    "select name from courses",
];

/// Is this report a fast-path acceptance?
fn fastpath(report: &ValidityReport) -> bool {
    report
        .rules
        .first()
        .is_some_and(|r| r.starts_with("FP"))
}

/// The pure prover's verdict: a fresh `Validator` with no compiled
/// snapshot installed, certificates on so accepts are derivation-backed.
fn prover_verdict(e: &Engine, s: &Session, sql: &str) -> Verdict {
    let options = CheckOptions {
        emit_certificates: true,
        ..Default::default()
    };
    Validator::new(e.database(), e.grants())
        .with_options(options)
        .check_sql(s, sql)
        .expect("prover run must not error")
        .verdict
}

/// Properties 1–3 over the full grant-subset × query grid. Every
/// `certify` call also exercises property 2: the engine re-verifies the
/// minted certificate with the independent checker and errors out on
/// any mismatch, so a fast-path accept with a bogus derivation cannot
/// pass this test.
#[test]
fn fastpath_agrees_with_prover_on_every_grant_state() {
    let mut e = engine();
    let s = Session::new("11");
    let mut hits = 0usize;
    let mut misses = 0usize;
    for granted in 0u32..(1 << VIEWS.len()) {
        for (i, v) in VIEWS.iter().enumerate() {
            if granted & (1 << i) != 0 {
                e.grant_view("11", v).unwrap();
            }
        }
        for sql in QUERIES {
            let report = e.certify(&s, sql).unwrap();
            let pure = prover_verdict(&e, &s, sql);
            if fastpath(&report) {
                hits += 1;
                assert_eq!(
                    report.verdict,
                    Verdict::Unconditional,
                    "fast path may only accept unconditionally: {sql} under {granted:#b}"
                );
                assert_eq!(
                    pure,
                    Verdict::Unconditional,
                    "fast-path accept the prover rejects: {sql} under {granted:#b}"
                );
            } else {
                misses += 1;
                assert_eq!(
                    report.verdict, pure,
                    "fast-path miss changed the verdict: {sql} under {granted:#b}"
                );
            }
        }
        for (i, v) in VIEWS.iter().enumerate() {
            if granted & (1 << i) != 0 {
                e.revoke_view("11", v).unwrap();
            }
        }
    }
    // The grid must actually exercise both paths.
    assert!(hits > 0, "no query ever took the fast path");
    assert!(misses > 0, "no query ever fell through to the prover");
}

/// Property 4: revocation-epoch stress. Alternate grant → accept →
/// revoke → deny across many epochs; a stale mask surviving any revoke
/// would accept the post-revoke probe.
#[test]
fn revoke_invalidates_compiled_masks_immediately() {
    let mut e = engine();
    let s = Session::new("11");
    let sql = "select grade from grades where course_id = 'cs101'";
    for epoch in 0..32 {
        e.grant_view("11", "allgrades").unwrap();
        let report = e.certify(&s, sql).unwrap();
        assert!(
            fastpath(&report),
            "round {epoch}: grant did not re-arm the fast path: {:?}",
            report.rules
        );
        assert_eq!(report.verdict, Verdict::Unconditional);

        e.revoke_view("11", "allgrades").unwrap();
        // The writer's critical section dropped every snapshot.
        assert_eq!(
            e.compiled_policies().compiled_principals(),
            0,
            "round {epoch}: compiled snapshot survived the revoke"
        );
        let report = e.certify(&s, sql).unwrap();
        assert!(
            !fastpath(&report),
            "round {epoch}: stale mask served a fast-path accept after revoke"
        );
        assert_eq!(
            report.verdict,
            Verdict::Invalid,
            "round {epoch}: query stayed valid after its only view was revoked"
        );
    }
}

/// The C3 conditional path is unchanged by the policy-index routing
/// (`ValidSet::c3_candidates`): the paper's Example 4.4 still reaches
/// its conditional verdict, and still through C3.
#[test]
fn c3_results_unchanged_by_candidate_index() {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table registered (
            student_id varchar not null, course_id varchar not null,
            primary key (student_id, course_id));
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));
        create authorization view costudentgrades as
            select grades.* from grades, registered
            where registered.student_id = $user_id
              and grades.course_id = registered.course_id;
        create authorization view myregistrations as
            select * from registered where student_id = $user_id;
        insert into registered values ('11', 'cs101'), ('12', 'cs101');
        insert into grades values ('11', 'cs101', 90), ('12', 'cs101', 70);
        ",
    )
    .unwrap();
    e.grant_view("11", "costudentgrades").unwrap();
    e.grant_view("11", "myregistrations").unwrap();
    let s = Session::new("11");

    let sql = "select * from grades where course_id = 'cs101'";
    let report = e.certify(&s, sql).unwrap();
    assert_eq!(report.verdict, Verdict::Conditional, "{:?}", report.rules);
    assert!(
        report.rules.iter().any(|r| r.contains("C3")),
        "conditional verdict must come from C3: {:?}",
        report.rules
    );
    assert!(!fastpath(&report), "a conditional query must not fast-path");
    assert_eq!(prover_verdict(&e, &s, sql), Verdict::Conditional);

    // Unregistered course: the remainder probe is empty, so C3 rejects —
    // exactly as before the index.
    let denied = e.certify(&s, "select * from grades where course_id = 'cs999'").unwrap();
    assert_eq!(denied.verdict, Verdict::Invalid);
}
