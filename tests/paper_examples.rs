//! End-to-end reproduction of every worked example in the paper,
//! through SQL and the public `Engine` API.
//!
//! Each test cites the example it reproduces. Together these form the
//! ground truth for experiment E8 (the acceptance matrix).

use fgac::prelude::*;
use fgac_types::Value;

/// The paper's schema (Section 2) with hand-picked data that realizes
/// the states the examples discuss.
fn engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table students (
            student_id varchar not null, name varchar not null,
            type varchar not null, primary key (student_id));
        create table courses (
            course_id varchar not null, name varchar not null,
            primary key (course_id));
        create table registered (
            student_id varchar not null, course_id varchar not null,
            primary key (student_id, course_id));
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));
        create table feespaid (
            student_id varchar not null, primary key (student_id));

        create authorization view MyGrades as
            select * from grades where student_id = $user_id;
        create authorization view CoStudentGrades as
            select grades.* from grades, registered
            where registered.student_id = $user_id
              and grades.course_id = registered.course_id;
        create authorization view AvgGrades as
            select course_id, avg(grade) from grades group by course_id;
        create authorization view RegStudents as
            select registered.course_id, students.name, students.type
            from registered, students
            where students.student_id = registered.student_id;
        -- Example 5.4 needs the view to expose student_id so the user
        -- can actually compute the join with FeesPaid (the paper's
        -- 'natural join of RegStudents and FeesPaid' presumes it; see
        -- DESIGN.md, deviations).
        create authorization view RegStudentsId as
            select students.student_id, registered.course_id,
                   students.name, students.type
            from registered, students
            where students.student_id = registered.student_id;
        create authorization view MyRegistrations as
            select * from registered where student_id = $user_id;
        create authorization view SingleGrade as
            select * from grades where student_id = $$1;
        create authorization view FeesPaidView as
            select * from feespaid;

        create inclusion dependency all_registered
            on students (student_id) references registered (student_id);
        create inclusion dependency ft_registered
            on students (student_id) where type = 'FullTime'
            references registered (student_id);
        create inclusion dependency fees_registered
            on feespaid (student_id) references registered (student_id);

        insert into students values
            ('11', 'ann', 'FullTime'), ('12', 'bob', 'PartTime'),
            ('13', 'carol', 'FullTime');
        insert into courses values ('cs101', 'intro'), ('cs202', 'systems');
        -- Every student registered somewhere (all_registered holds);
        -- user 11 registered for cs101 but NOT cs202.
        insert into registered values
            ('11', 'cs101'), ('12', 'cs101'), ('12', 'cs202'), ('13', 'cs202');
        insert into grades values
            ('11', 'cs101', 90), ('12', 'cs101', 70), ('12', 'cs202', 85),
            ('13', 'cs202', 60);
        insert into feespaid values ('11'), ('12');
        ",
    )
    .unwrap();
    e
}

fn grant_student(e: &mut Engine, user: &str) {
    {
        let v = "mygrades";
        e.grant_view(user, v).unwrap();
    }
}

#[test]
fn section_5_2_basic_u2_examples() {
    // "select grade from Grades where student-id = '11'" and
    // "select course-id from Grades where student-id='11' and grade='A'"
    // (our grades are ints; use a comparison).
    let mut e = engine();
    grant_student(&mut e, "11");
    let s = Session::new("11");

    let r = e
        .execute(&s, "select grade from grades where student_id = '11'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows, vec![fgac_types::Row(vec![Value::Int(90)])]);

    let r = e
        .execute(
            &s,
            "select course_id from grades where student_id = '11' and grade >= 90",
        )
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn example_4_1_avg_of_own_grades() {
    let mut e = engine();
    grant_student(&mut e, "11");
    let s = Session::new("11");
    let report = e
        .check(&s, "select avg(grade) from grades where student_id = '11'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional, "{:?}", report.rules);
}

#[test]
fn example_4_1_course_average_via_avggrades() {
    let mut e = engine();
    e.grant_view("11", "avggrades").unwrap();
    let s = Session::new("11");
    let report = e
        .check(&s, "select avg(grade) from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional, "{:?}", report.rules);
    // And the answer is the true course average.
    let r = e
        .execute(&s, "select avg(grade) from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows[0].get(0), &Value::Double(80.0));
}

#[test]
fn section_3_3_truman_answers_misleadingly_nontruman_rejects() {
    let mut e = engine();
    grant_student(&mut e, "11");
    let s = Session::new("11");
    let q = "select avg(grade) from grades";

    // Non-Truman: rejected.
    assert!(e.execute(&s, q).is_err());

    // Truman: silently returns avg of user 11's grades (90), not the
    // true overall average (76.25).
    let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");
    let r = e.truman_execute(&policy, &s, q).unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Double(90.0));
}

#[test]
fn example_4_3_rejection_without_registration_knowledge() {
    // Co-studentGrades alone (no MyRegistrations): accepting the CS101
    // query would reveal the registration status, so it must be
    // rejected even though user 11 IS registered for cs101.
    let mut e = engine();
    e.grant_view("11", "costudentgrades").unwrap();
    let s = Session::new("11");
    let report = e
        .check(&s, "select * from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Invalid, "{:?}", report.rules);
}

#[test]
fn example_4_4_conditional_validity() {
    let mut e = engine();
    e.grant_view("11", "costudentgrades").unwrap();
    e.grant_view("11", "myregistrations").unwrap();
    let s = Session::new("11");

    // Registered course: conditionally valid; runs unmodified and
    // returns ALL cs101 grades (not just user 11's).
    let report = e
        .check(&s, "select * from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Conditional, "{:?}", report.rules);
    let r = e
        .execute(&s, "select * from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 2, "both cs101 grades visible");

    // Unregistered course: invalid in this state.
    let report = e
        .check(&s, "select * from grades where course_id = 'cs202'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
}

#[test]
fn example_4_4_registration_query_itself() {
    // "select 1 from Registered where student-id='11' and
    //  course-id='CS101'" — valid via MyRegistrations.
    let mut e = engine();
    e.grant_view("11", "myregistrations").unwrap();
    let s = Session::new("11");
    let r = e
        .execute(
            &s,
            "select 1 from registered where student_id = '11' and course_id = 'cs101'",
        )
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn conditional_validity_tracks_state_changes() {
    // The same query flips from Invalid to Conditional when the user
    // registers — conditional validity is a function of the state
    // (Definition 4.3).
    let mut e = engine();
    e.grant_view("11", "costudentgrades").unwrap();
    e.grant_view("11", "myregistrations").unwrap();
    e.grant_update_sql("11", "authorize insert on registered where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    let q = "select * from grades where course_id = 'cs202'";

    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Invalid);
    e.execute(&s, "insert into registered values ('11', 'cs202')")
        .unwrap();
    assert_eq!(
        e.check(&s, q).unwrap().verdict,
        Verdict::Conditional,
        "after registering, the cs202 query becomes conditionally valid"
    );
}

#[test]
fn example_5_1_5_2_u3a_regstudents() {
    let mut e = engine();
    e.grant_view("u", "regstudents").unwrap();
    e.grant_constraint("u", "all_registered").unwrap();
    let s = Session::new("u");

    // q: select distinct name, type from Students — valid by U3a.
    let report = e.check(&s, "select distinct name, type from students").unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional, "{:?}", report.rules);
    let r = e
        .execute(&s, "select distinct name, type from students")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 3);

    // Without DISTINCT: invalid (multiplicities not reconstructible —
    // the n×m discussion in Example 5.1).
    let report = e.check(&s, "select name, type from students").unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
}

#[test]
fn example_5_3_full_time_restriction() {
    let mut e = engine();
    e.grant_view("u", "regstudents").unwrap();
    e.grant_constraint("u", "ft_registered").unwrap();
    let s = Session::new("u");
    let report = e
        .check(&s, "select distinct name from students where type = 'FullTime'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional, "{:?}", report.rules);

    // Unrestricted names are NOT valid under only ft_registered (there
    // may be unregistered part-time students).
    let report = e.check(&s, "select distinct name, type from students").unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
}

#[test]
fn example_5_4_fees_paid_join() {
    // q_j: select distinct name from Students, FeesPaid where
    //      Students.student-id = FeesPaid.student-id
    // valid given RegStudents + visible FeesPaid + fees_registered.
    let mut e = engine();
    e.grant_view("u", "regstudentsid").unwrap();
    e.grant_view("u", "feespaidview").unwrap();
    e.grant_constraint("u", "fees_registered").unwrap();
    e.grant_constraint("u", "all_registered").unwrap();
    let s = Session::new("u");
    let report = e
        .check(
            &s,
            "select distinct name from students, feespaid \
             where students.student_id = feespaid.student_id",
        )
        .unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional, "{:?}", report.rules);
}

#[test]
fn example_5_5_distinct_dropped_with_primary_key() {
    // The C3-accepted query without DISTINCT: grades has PK
    // (student_id, course_id), so `select * from grades where
    // course_id='cs101'` is duplicate-free and C3a applies directly.
    let mut e = engine();
    e.grant_view("11", "costudentgrades").unwrap();
    e.grant_view("11", "myregistrations").unwrap();
    let s = Session::new("11");
    let report = e
        .check(&s, "select * from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Conditional, "{:?}", report.rules);
}

#[test]
fn section_2_single_grade_access_pattern() {
    let mut e = engine();
    e.grant_view("sec", "singlegrade").unwrap();
    let s = Session::new("sec");

    // By id: valid.
    let r = e
        .execute(&s, "select * from grades where student_id = '13'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);

    // All students: invalid ("preventing her from getting a list of all
    // students").
    assert!(e.execute(&s, "select * from grades").is_err());
}

#[test]
fn section_6_dependent_join() {
    // (r ⋈_{r.B=s.A} s) with r valid and an access-pattern view on s.
    let mut e = engine();
    e.grant_view("u", "myregistrations").unwrap();
    e.grant_view("u", "singlegrade").unwrap();
    let s = Session::new("u");
    // user "u" has no registrations, so make one visible: use user 12.
    let s12 = Session::new("12");
    e.grant_view("12", "myregistrations").unwrap();
    e.grant_view("12", "singlegrade").unwrap();
    let report = e
        .check(
            &s12,
            "select g.grade from registered r, grades g \
             where r.student_id = '12' and r.student_id = g.student_id",
        )
        .unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional, "{:?}", report.rules);
    drop(s);
}

#[test]
fn section_4_4_update_authorizations() {
    let mut e = engine();
    e.grant_update_sql("11", "authorize insert on registered where student_id = $user_id")
        .unwrap();
    e.grant_update_sql(
        "11",
        "authorize update on students (name) where old(student_id) = $user_id",
    )
    .unwrap();
    let s = Session::new("11");

    // Own registration: allowed.
    assert_eq!(
        e.execute(&s, "insert into registered values ('11', 'cs202')")
            .unwrap()
            .affected(),
        Some(1)
    );
    // Someone else's: rejected.
    assert!(e
        .execute(&s, "insert into registered values ('13', 'cs101')")
        .is_err());
    // Own name: allowed; other columns: rejected.
    assert_eq!(
        e.execute(&s, "update students set name = 'anne' where student_id = '11'")
            .unwrap()
            .affected(),
        Some(1)
    );
    assert!(e
        .execute(&s, "update students set type = 'PartTime' where student_id = '11'")
        .is_err());
}

#[test]
fn rejected_queries_do_not_leak_partial_answers() {
    // The Non-Truman contract: rejection is an error, not a filtered
    // result set.
    let mut e = engine();
    grant_student(&mut e, "11");
    let s = Session::new("11");
    match e.execute(&s, "select * from grades") {
        Err(err) => assert!(err.is_unauthorized()),
        Ok(_) => panic!("must reject"),
    }
}
