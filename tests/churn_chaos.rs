//! Churn chaos harness: policy churn interleaved with concurrent
//! readers and crash/restart (WAL recovery).
//!
//! The invariant under test is the fail-closed one from DESIGN.md §4j:
//! once a revocation completes — dependency sweep done, write lock
//! released — the revoked principal is denied on the *very next*
//! request, whether that request rides a warm cache, a certificate
//! revalidation, or a recovered engine. No stale verdict, ever.

use fgac::prelude::*;
use fgac_core::SharedEngine;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "fgac-churn-chaos-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const SCHEMA: &str = "
    create table grades (student_id varchar not null, course_id varchar not null,
        grade int, primary key (student_id, course_id));
    create authorization view MyGrades as
        select * from grades where student_id = $user_id;
    insert into grades values
        ('11', 'cs101', 90), ('11', 'cs202', 80), ('12', 'cs101', 70);
";

fn populate(e: &mut Engine) {
    e.admin_script(SCHEMA).unwrap();
    e.grant_view("11", "mygrades").unwrap();
    e.grant_view("12", "mygrades").unwrap();
}

const Q11: &str = "select grade from grades where student_id = '11'";

/// Live churn against concurrent readers. The writer revokes and
/// re-grants principal 11 while six readers hammer 11's query and two
/// more keep principal 12 (never revoked) warm. After every revocation
/// the writer runs a sequenced-after probe that must deny; after every
/// grant, one that must allow. Pad churn on an unrelated principal and
/// unrelated DDL are mixed in so the dependency sweep — not a blanket
/// clear — is what keeps 12's entries serving.
#[test]
fn concurrent_readers_never_see_a_stale_verdict_under_churn() {
    let mut e = Engine::new();
    populate(&mut e);
    let shared = SharedEngine::new(e);
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..6 {
        let shared = shared.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let s = Session::new("11");
            while !stop.load(Ordering::Relaxed) {
                match shared.execute(&s, Q11) {
                    Ok(r) => assert_eq!(r.rows().unwrap().rows.len(), 2),
                    Err(Error::Unauthorized(_)) => {}
                    Err(other) => panic!("reader saw non-auth error: {other:?}"),
                }
            }
        }));
    }
    // Principal 12 is never touched by the churn: every one of its
    // checks after the first must be warm (restamped or revalidated).
    for _ in 0..2 {
        let shared = shared.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let s = Session::new("12");
            let q = "select grade from grades where student_id = '12'";
            while !stop.load(Ordering::Relaxed) {
                let r = shared.execute(&s, q).expect("12 is never revoked");
                assert_eq!(r.rows().unwrap().rows.len(), 1);
            }
        }));
    }

    let probe = Session::new("11");
    for round in 0..40 {
        shared.with_write(|e| e.revoke_view("11", "mygrades")).unwrap();
        match shared.execute(&probe, Q11) {
            Err(Error::Unauthorized(_)) => {}
            other => panic!("round {round}: stale ALLOW after revoke: {other:?}"),
        }
        // Unrelated churn: another principal's grant flips and a table
        // nobody queries appears. Neither may disturb 12's warm path.
        shared.with_write(|e| e.grant_view("99", "mygrades")).unwrap();
        shared.with_write(|e| e.revoke_view("99", "mygrades")).unwrap();
        if round % 8 == 0 {
            shared
                .with_write(|e| {
                    e.admin_script(&format!("create table pad_{round} (x int)"))
                })
                .unwrap();
        }
        shared.with_write(|e| e.grant_view("11", "mygrades")).unwrap();
        let r = shared.execute(&probe, Q11).unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2, "round {round}: stale DENY after grant");
    }

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // The churn exercised the warm paths it was built to protect: the
    // sweep restamped/revalidated rather than cold-starting everything.
    let stats = shared.with_read(|e| e.cache().snapshot());
    assert!(stats.hits > 0, "readers never rode the validity cache");
    let (plan_hits, _) = shared.with_read(|e| e.plan_cache().stats());
    assert!(plan_hits > 0, "readers never rode the plan cache");
}

/// Crash (drop without close) right after a revocation: recovery must
/// replay the revoke from the WAL and deny the principal on the first
/// request — a cached ALLOW from before the crash must not survive.
#[test]
fn revocation_survives_crash_and_recovery() {
    let dir = tmp_dir("revoke");
    {
        let mut e = Engine::open(&dir).unwrap();
        populate(&mut e);
        let s = Session::new("11");
        // Warm accept: plan + validity caches hold an ALLOW for 11.
        assert!(e.execute(&s, Q11).is_ok());
        assert!(e.execute(&s, Q11).is_ok());
        e.revoke_view("11", "mygrades").unwrap();
        e.sync().unwrap();
        // Crash: dropped without close(); the WAL tail has the revoke.
    }
    let (mut back, report) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert!(report.records_replayed > 0);
    let err = back.execute(&Session::new("11"), Q11).unwrap_err();
    assert!(
        matches!(err, Error::Unauthorized(_)),
        "recovered engine served a stale verdict: {err:?}"
    );
    // The never-revoked principal still works after recovery.
    let r = back
        .execute(&Session::new("12"), "select grade from grades where student_id = '12'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

/// Full chaos matrix: churn, crash mid-churn, recover, keep churning.
/// After every step — including across the crash — the allow/deny
/// answer must match the shadow grant state exactly.
#[test]
fn churn_crash_recover_churn_matches_shadow_state() {
    let dir = tmp_dir("matrix");
    let users = ["11", "12"];
    // Shadow state: who currently holds the grant.
    let mut granted = [true, true];

    let check_all = |e: &mut Engine, granted: &[bool; 2], ctx: &str| {
        for (i, u) in users.iter().enumerate() {
            let q = format!("select grade from grades where student_id = '{u}'");
            match e.execute(&Session::new(*u), &q) {
                Ok(r) => {
                    assert!(granted[i], "{ctx}: stale ALLOW for {u}");
                    assert_eq!(r.rows().unwrap().rows.len(), if i == 0 { 2 } else { 1 });
                }
                Err(Error::Unauthorized(_)) => {
                    assert!(!granted[i], "{ctx}: stale DENY for {u}")
                }
                Err(other) => panic!("{ctx}: non-auth error: {other:?}"),
            }
        }
    };

    {
        let mut e = Engine::open(&dir).unwrap();
        populate(&mut e);
        // Deterministic pseudo-random churn (xorshift).
        let mut x = 0x9E37_79B9u64;
        for step in 0..24 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x as usize) % 2;
            if granted[i] {
                e.revoke_view(users[i], "mygrades").unwrap();
            } else {
                e.grant_view(users[i], "mygrades").unwrap();
            }
            granted[i] = !granted[i];
            check_all(&mut e, &granted, &format!("pre-crash step {step}"));
        }
        e.sync().unwrap();
        // Crash mid-churn: no close(), caches full of mixed verdicts.
    }

    let (mut back, _) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    check_all(&mut back, &granted, "first requests after recovery");

    // Keep churning on the recovered engine: the replayed grant state
    // is the real one, so further flips behave identically.
    for step in 0..8 {
        let i = step % 2;
        if granted[i] {
            back.revoke_view(users[i], "mygrades").unwrap();
        } else {
            back.grant_view(users[i], "mygrades").unwrap();
        }
        granted[i] = !granted[i];
        check_all(&mut back, &granted, &format!("post-recovery step {step}"));
    }
}
