//! Additional inference-rule coverage beyond the paper's worked
//! examples: aggregate rollup, LCAvgGrades (Example 4.2), self-joins,
//! cell-level security via projections, and documented incompleteness.

use fgac::prelude::*;
use fgac_types::Value;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));
        create table students (
            student_id varchar not null, name varchar not null,
            address varchar, primary key (student_id));
        insert into students values
            ('11', 'ann', '1 elm st'), ('12', 'bob', '2 oak av');
        insert into grades values
            ('11', 'cs101', 90), ('12', 'cs101', 70),
            ('11', 'cs202', 80), ('12', 'cs202', 60);
        ",
    )
    .unwrap();
    e
}

#[test]
fn aggregate_rollup_from_finer_view() {
    // View: per-(student, course) counts; query: per-student counts.
    // The optimizer's aggregate-rollup subsumption derives the coarser
    // aggregation from the finer one (Section 5.6.1's "a coarse-grained
    // aggregation from a finer-grained one").
    let mut e = engine();
    e.admin_script(
        "create authorization view FineCounts as
            select student_id, course_id, count(*) from grades
            group by student_id, course_id;",
    )
    .unwrap();
    e.grant_view("u", "finecounts").unwrap();
    let s = Session::new("u");
    let report = e
        .check(&s, "select student_id, count(*) from grades group by student_id")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional, "{:?}", report.rules);
    // AVG does not re-aggregate: must reject.
    let mut e2 = engine();
    e2.admin_script(
        "create authorization view FineAvgs as
            select student_id, course_id, avg(grade) from grades
            group by student_id, course_id;",
    )
    .unwrap();
    e2.grant_view("u", "fineavgs").unwrap();
    let report = e2
        .check(&s, "select student_id, avg(grade) from grades group by student_id")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Invalid, "avg must not roll up");
}

#[test]
fn example_4_2_lc_avg_grades_documented_incompleteness() {
    // Example 4.2: LCAvgGrades shows averages only for courses with
    // enrollment >= 10. The paper argues the course-average query is
    // *conditionally* valid when the course is popular enough. Our C3
    // implementation covers SPJ queries only (aggregate conditional
    // validity needs reasoning about HAVING-filtered groups); the sound
    // behaviour — documented incompleteness, DESIGN.md §4b — is
    // rejection.
    let mut e = engine();
    e.admin_script(
        "create authorization view LCAvgGrades as
            select course_id, avg(grade) from grades
            group by course_id having count(*) >= 2;",
    )
    .unwrap();
    e.grant_view("u", "lcavggrades").unwrap();
    let s = Session::new("u");
    // The view itself is fine to query by name (trivially valid).
    let r = e
        .execute(&s, "select * from lcavggrades order by course_id")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 2);
    // The authorization-transparent form is (soundly) rejected today.
    let report = e
        .check(&s, "select avg(grade) from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
}

#[test]
fn cell_level_security_via_projection() {
    // "As views can project out specific columns ... this framework
    // allows fine-grained authorization at the cell-level" (Section 1).
    let mut e = engine();
    e.admin_script(
        "create authorization view Roster as
            select student_id, name from students;",
    )
    .unwrap();
    e.grant_view("u", "roster").unwrap();
    let s = Session::new("u");
    // Names: visible.
    let r = e.execute(&s, "select name from students").unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 2);
    // Addresses: the projected-out column is invisible.
    assert!(e.execute(&s, "select address from students").is_err());
    // Filtering on the hidden column is invisible too (it would leak).
    assert!(e
        .execute(&s, "select name from students where address = '1 elm st'")
        .is_err());
}

#[test]
fn self_join_on_visible_slice() {
    // Self-joins of the user's own slice compose under U2.
    let mut e = engine();
    e.admin_script(
        "create authorization view MyGrades as
            select * from grades where student_id = $user_id;",
    )
    .unwrap();
    e.grant_view("11", "mygrades").unwrap();
    let s = Session::new("11");
    let r = e
        .execute(
            &s,
            "select a.course_id, b.course_id from grades a, grades b \
             where a.student_id = '11' and b.student_id = '11' \
               and a.grade > b.grade",
        )
        .unwrap();
    // 90 > 80: exactly one ordered pair.
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn union_of_views_covers_disjoint_slices() {
    // Two views over disjoint row sets do NOT merge into "all rows":
    // σ-subsumption only goes from stronger to weaker predicates. The
    // full-table query must stay invalid.
    let mut e = engine();
    e.admin_script(
        "create authorization view Low as
            select * from grades where grade < 75;
         create authorization view High as
            select * from grades where grade >= 75;",
    )
    .unwrap();
    e.grant_view("u", "low").unwrap();
    e.grant_view("u", "high").unwrap();
    let s = Session::new("u");
    // Each slice is fine.
    assert!(e.execute(&s, "select * from grades where grade < 75").is_ok());
    assert!(e.execute(&s, "select * from grades where grade >= 75").is_ok());
    // Sub-slices through subsumption are fine too.
    assert!(e.execute(&s, "select * from grades where grade < 60").is_ok());
    // The union query: semantically answerable (low ∪ high = all), but
    // our rule set has no union-of-views rule — documented
    // incompleteness, sound rejection.
    let report = e.check(&s, "select * from grades").unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
}

#[test]
fn predicate_implication_accepts_range_within_view() {
    let mut e = engine();
    e.admin_script(
        "create authorization view Passing as
            select * from grades where grade >= 60;",
    )
    .unwrap();
    e.grant_view("u", "passing").unwrap();
    let s = Session::new("u");
    // 70..=80 ⊂ >=60.
    let r = e
        .execute(
            &s,
            "select student_id from grades where grade between 70 and 80",
        )
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 2);
    // <=50 is not contained in >=60.
    assert!(e
        .execute(&s, "select student_id from grades where grade <= 50")
        .is_err());
}

#[test]
fn distinct_projection_of_view_with_key_pinned() {
    // Example 5.5 flavor: pinning part of the key by predicate keeps
    // the projection duplicate-free, so non-DISTINCT is acceptable.
    let mut e = engine();
    e.admin_script(
        "create authorization view Cs101 as
            select * from grades where course_id = 'cs101';",
    )
    .unwrap();
    e.grant_view("u", "cs101").unwrap();
    let s = Session::new("u");
    let r = e
        .execute(
            &s,
            "select student_id, grade from grades where course_id = 'cs101'",
        )
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 2);
}

#[test]
fn view_over_view_definitions_expand() {
    // A view defined over another view binds through to base tables.
    let mut e = engine();
    e.admin_script(
        "create authorization view MyGrades as
            select * from grades where student_id = $user_id;
         create authorization view MyGoodGrades as
            select * from mygrades where grade >= 85;",
    )
    .unwrap();
    e.grant_view("11", "mygoodgrades").unwrap();
    let s = Session::new("11");
    let r = e
        .execute(
            &s,
            "select course_id from grades where student_id = '11' and grade >= 85",
        )
        .unwrap();
    assert_eq!(
        r.rows().unwrap().rows,
        vec![fgac_types::Row(vec![Value::Str("cs101".into())])]
    );
    // The weaker slice (all own grades) is NOT derivable from the
    // stronger view.
    assert!(e
        .execute(&s, "select course_id from grades where student_id = '11'")
        .is_err());
}

#[test]
fn certificates_carry_structured_rule_ids() {
    // The coverage fixtures double as a certification corpus: every
    // accepted query must come back from `certify` with a typed
    // derivation — U1 axioms naming the granted views, a U2 goal step —
    // not just a prose rule trace.
    let mut e = engine();
    e.admin_script(
        "create authorization view Passing as
            select * from grades where grade >= 60;",
    )
    .unwrap();
    e.grant_view("u", "passing").unwrap();
    let s = Session::new("u");
    let report = e
        .certify(&s, "select student_id from grades where grade between 70 and 80")
        .unwrap();
    let cert = report.certificate.expect("accepted query must carry a certificate");
    assert_eq!(cert.verdict, CertVerdict::Unconditional);
    assert_eq!(cert.principal, "u");
    let (axioms, goals): (Vec<_>, Vec<_>) =
        cert.steps.iter().partition(|st| st.rule == RuleId::U1);
    assert_eq!(
        axioms
            .iter()
            .map(|st| st.view.as_ref().expect("U1 names its view").as_str())
            .collect::<Vec<_>>(),
        vec!["passing"],
        "exactly the granted view is instantiated"
    );
    assert_eq!(goals.len(), 1, "one goal step closes the derivation");
    assert_eq!(goals[0].rule, RuleId::U2Dag);
}

#[test]
fn certificate_premises_identify_the_supporting_view() {
    // With several grants in scope, the goal step's premise edges must
    // point at the view that actually covers the query — the derivation
    // is evidence, not a bag of everything granted.
    let mut e = engine();
    e.admin_script(
        "create authorization view MyGrades as
            select * from grades where student_id = $user_id;
         create authorization view Passing as
            select * from grades where grade >= 60;",
    )
    .unwrap();
    e.grant_view("11", "mygrades").unwrap();
    e.grant_view("11", "passing").unwrap();
    let s = Session::new("11");
    let supporting_view = |sql: &str| -> Vec<String> {
        let report = e.certify(&s, sql).unwrap();
        let cert = report.certificate.expect("certificate");
        let goal = cert.steps.last().expect("non-empty derivation");
        goal.premises
            .iter()
            .map(|&p| cert.steps[p].view.as_ref().expect("premise is a U1 axiom").to_string())
            .collect()
    };
    assert_eq!(
        supporting_view("select student_id from grades where grade between 70 and 80"),
        vec!["passing".to_string()],
        "the range query rides on the grade slice"
    );
    assert_eq!(
        supporting_view(
            "select a.course_id, b.course_id from grades a, grades b \
             where a.student_id = '11' and b.student_id = '11' and a.grade > b.grade"
        ),
        vec!["mygrades".to_string()],
        "the self-join rides on the per-student slice"
    );
}

#[test]
fn count_star_through_view_multiplicity() {
    // COUNT(*) needs exact multiplicities: only duplicate-preserving
    // views support it.
    let mut e = engine();
    e.admin_script(
        "create authorization view MyGrades as
            select * from grades where student_id = $user_id;",
    )
    .unwrap();
    e.grant_view("11", "mygrades").unwrap();
    let s = Session::new("11");
    let r = e
        .execute(&s, "select count(*) from grades where student_id = '11'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows[0].get(0), &Value::Int(2));
}
