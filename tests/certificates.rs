//! Validity certificates end to end: honest accepts re-verify, every
//! seeded defect is rejected with its stable Q-code, EXPLAIN
//! AUTHORIZATION renders the derivation, and the wire format
//! round-trips.
//!
//! The checker shares no code with the validator beyond the algebra
//! substrate, so these tests are the trust story: a tampered
//! certificate must never verify, no matter which field was forged.

use fgac::analyze::{check_certificate, CheckerOptions};
use fgac::prelude::*;
use fgac_types::{Ident, Value};

/// The paper's schema with the student-facing views; user 11 holds
/// MyGrades, MyRegistrations and CoStudentGrades.
fn engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table students (
            student_id varchar not null, name varchar not null,
            type varchar not null, primary key (student_id));
        create table registered (
            student_id varchar not null, course_id varchar not null,
            primary key (student_id, course_id));
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));

        create authorization view MyGrades as
            select * from grades where student_id = $user_id;
        create authorization view MyRegistrations as
            select * from registered where student_id = $user_id;
        create authorization view CoStudentGrades as
            select grades.* from grades, registered
            where registered.student_id = $user_id
              and grades.course_id = registered.course_id;

        insert into students values
            ('11', 'ann', 'FullTime'), ('12', 'bob', 'PartTime');
        insert into registered values ('11', 'cs101'), ('12', 'cs101');
        insert into grades values
            ('11', 'cs101', 90), ('12', 'cs101', 70);
        ",
    )
    .unwrap();
    for v in ["mygrades", "myregistrations", "costudentgrades"] {
        e.grant_view("11", v).unwrap();
    }
    e
}

/// An honest unconditional accept: engine.certify() already ran the
/// independent checker, and the derivation names the rules that fired.
#[test]
fn honest_unconditional_certificate_verifies() {
    let e = engine();
    let s = Session::new("11");
    let report = e
        .certify(&s, "select grade from grades where student_id = '11'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional);
    let cert = report.certificate.expect("accept carries a certificate");
    assert_eq!(cert.principal, "11");
    assert!(
        cert.steps.iter().any(|st| st.rule == RuleId::U1),
        "derivation instantiates at least one view: {:?}",
        cert.steps.iter().map(|st| st.rule).collect::<Vec<_>>()
    );
    // The goal step is last and derives exactly the admitted query.
    let goal = cert.steps.last().expect("non-empty derivation");
    assert!(
        matches!(goal.rule, RuleId::U2Dag | RuleId::U2Match),
        "goal rule: {:?}",
        goal.rule
    );
    // Re-verification is idempotent.
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert!(diags.is_empty(), "honest certificate rejected: {diags:?}");
}

/// An honest conditional accept (Example 4.4): C3 appears in the
/// derivation with a recorded non-empty probe.
#[test]
fn honest_conditional_certificate_verifies() {
    let e = engine();
    let s = Session::new("11");
    let report = e
        .certify(&s, "select * from grades where course_id = 'cs101'")
        .unwrap();
    assert_eq!(report.verdict, Verdict::Conditional);
    let cert = report.certificate.expect("accept carries a certificate");
    let c3 = cert
        .steps
        .iter()
        .find(|st| matches!(st.rule, RuleId::C3a | RuleId::C3b))
        .expect("conditional accept derives through C3");
    assert!(matches!(c3.probe_rows, Some(n) if n >= 1), "{:?}", c3.probe_rows);
}

/// Q003: a certificate minted at a different policy epoch is refused
/// before any step is examined.
#[test]
fn forged_epoch_is_rejected_with_q003() {
    let e = engine();
    let s = Session::new("11");
    let mut cert = e
        .certify(&s, "select grade from grades where student_id = '11'")
        .unwrap()
        .certificate
        .unwrap();
    cert.policy_epoch += 1;
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code.as_str(), "Q003");
}

/// Q003: a derivation step claiming a view the principal does not hold
/// — the revoked-grant shape — fails the grant re-check.
#[test]
fn ungranted_view_claim_is_rejected_with_q003() {
    let e = engine();
    let s = Session::new("11");
    let mut cert = e
        .certify(&s, "select grade from grades where student_id = '11'")
        .unwrap()
        .certificate
        .unwrap();
    let u1 = cert
        .steps
        .iter()
        .position(|st| st.rule == RuleId::U1)
        .expect("derivation has a U1 step");
    // 'singlegrade' was never created, let alone granted; any ungranted
    // name takes the same path.
    cert.steps[u1].view = Some(Ident::new("notmyview"));
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert!(
        diags.iter().any(|d| d.code.as_str() == "Q003"),
        "expected Q003 for an ungranted view claim: {diags:?}"
    );
}

/// Q003 through the live engine: revoking the grant (which moves the
/// policy epoch) invalidates certificates minted before it.
#[test]
fn revocation_stales_previously_minted_certificates() {
    let mut e = engine();
    let s = Session::new("11");
    let cert = e
        .certify(&s, "select grade from grades where student_id = '11'")
        .unwrap()
        .certificate
        .unwrap();
    e.revoke_view("11", "mygrades").unwrap();
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert!(
        diags.iter().any(|d| d.code.as_str() == "Q003"),
        "stale certificate must not verify after revocation: {diags:?}"
    );
}

/// Q004: tampering with a recorded view body (widening the claimed
/// slice by dropping its filter) fails re-instantiation.
#[test]
fn tampered_view_body_is_rejected_with_q004() {
    let e = engine();
    let s = Session::new("11");
    let mut cert = e
        .certify(&s, "select grade from grades where student_id = '11'")
        .unwrap()
        .certificate
        .unwrap();
    let u1 = cert
        .steps
        .iter()
        .position(|st| st.rule == RuleId::U1 && st.block.is_some())
        .expect("derivation has a U1 step with a recorded body");
    cert.steps[u1]
        .block
        .as_mut()
        .unwrap()
        .conjuncts
        .clear();
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert!(
        diags.iter().any(|d| d.code.as_str() == "Q004"),
        "widened view body must not verify: {diags:?}"
    );
}

/// Q004: a wrong pin substitution — rebinding an access-pattern view's
/// parameter to a different constant than the derivation used.
#[test]
fn wrong_pin_substitution_is_rejected_with_q004() {
    let mut e = engine();
    e.admin_script(
        "create authorization view SingleGrade as
            select * from grades where student_id = $$1;",
    )
    .unwrap();
    e.grant_view("12", "singlegrade").unwrap();
    let s = Session::new("12");
    let mut cert = e
        .certify(&s, "select grade from grades where student_id = '12'")
        .unwrap()
        .certificate
        .unwrap();
    let pinned = cert
        .steps
        .iter()
        .position(|st| !st.pins.is_empty())
        .expect("access-pattern derivation records a pin");
    cert.steps[pinned].pins[0].1 = Value::Str("11".into());
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert!(
        diags.iter().any(|d| d.code.as_str() == "Q004"),
        "forged pin must not verify: {diags:?}"
    );
}

/// Q002: a conditional acceptance whose remainder probe does not rest
/// on a certified-valid premise — the per-query P005 leak.
#[test]
fn uncertified_probe_premise_is_rejected_with_q002() {
    let e = engine();
    let s = Session::new("11");
    let mut cert = e
        .certify(&s, "select * from grades where course_id = 'cs101'")
        .unwrap()
        .certificate
        .unwrap();
    let c3 = cert
        .steps
        .iter()
        .position(|st| matches!(st.rule, RuleId::C3a | RuleId::C3b))
        .expect("conditional accept derives through C3");
    // Point the probe premise at the C3 step itself: no longer a
    // previously-verified derivation.
    let last = cert.steps[c3].premises.len() - 1;
    cert.steps[c3].premises[last] = c3;
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert!(
        diags.iter().any(|d| d.code.as_str() == "Q002"),
        "uncertified probe must trip Q002: {diags:?}"
    );
}

/// Q001 at admission: a query over a relation no granted view covers is
/// rejected cheaply, before DAG expansion, and says so.
#[test]
fn uncovered_relation_rejects_with_q001() {
    let e = engine();
    let s = Session::new("11");
    let report = e.check(&s, "select name from students").unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
    assert!(
        report.rules.iter().any(|r| r.starts_with("Q001")),
        "rejection names Q001: {:?}",
        report.rules
    );
    assert_eq!(
        report.dag_stats.eq_nodes, 0,
        "Q001 fires before any DAG is built"
    );
}

/// Q001 at the checker: forging extra coverage into query_tables fails
/// the goal coverage check.
#[test]
fn forged_query_table_coverage_is_rejected_with_q001() {
    let e = engine();
    let s = Session::new("11");
    let mut cert = e
        .certify(&s, "select grade from grades where student_id = '11'")
        .unwrap()
        .certificate
        .unwrap();
    cert.query_tables.push(Ident::new("students"));
    let diags = check_certificate(&cert, &e.certificate_policy(), &CheckerOptions::default());
    assert!(
        diags.iter().any(|d| d.code.as_str() == "Q001"),
        "uncovered query table must trip Q001: {diags:?}"
    );
}

/// EXPLAIN AUTHORIZATION renders the verdict row plus one row per
/// derivation step, through the ordinary session execute path.
#[test]
fn explain_authorization_renders_the_derivation() {
    let mut e = engine();
    let s = Session::new("11");
    let resp = e
        .execute(
            &s,
            "explain authorization select grade from grades where student_id = '11'",
        )
        .unwrap();
    let result = resp.rows().expect("EXPLAIN AUTHORIZATION returns rows");
    let names: Vec<String> = result.names.iter().map(|n| n.to_string()).collect();
    assert_eq!(names, ["step", "rule", "object", "premises", "detail"]);
    let cell = |r: usize, c: usize| match &result.rows[r].0[c] {
        Value::Str(s) => s.clone(),
        other => panic!("expected string cell, got {other:?}"),
    };
    assert_eq!(cell(0, 1), "VERDICT");
    assert_eq!(cell(0, 2), "unconditional");
    assert!(result.rows.len() > 1, "derivation rows follow the verdict");
    assert_eq!(cell(1, 1), "U1", "first step instantiates a view");

    // A rejected query still explains itself instead of erroring.
    let resp = e
        .execute(&s, "explain authorization select name from students")
        .unwrap();
    let result = resp.rows().unwrap();
    let verdict = match &result.rows[0].0[2] {
        Value::Str(s) => s.clone(),
        other => panic!("expected string cell, got {other:?}"),
    };
    assert_eq!(verdict, "invalid");
}

/// EXPLAIN AUTHORIZATION is session-scoped: the admin path refuses it
/// so a derivation is always relative to some principal's grants.
#[test]
fn explain_authorization_is_rejected_on_the_admin_path() {
    let mut e = engine();
    let err = e
        .admin_script("explain authorization select * from grades")
        .unwrap_err();
    assert!(
        err.to_string().contains("session-scoped"),
        "unexpected error: {err}"
    );
}

/// Real certificates survive the wire: JSON round-trip is lossless for
/// both unconditional and conditional derivations.
#[test]
fn certificates_round_trip_through_json() {
    let e = engine();
    let s = Session::new("11");
    for sql in [
        "select grade from grades where student_id = '11'",
        "select * from grades where course_id = 'cs101'",
        "select course_id from registered where student_id = '11'",
    ] {
        let cert = e.certify(&s, sql).unwrap().certificate.unwrap();
        let json = fgac::analyze::certificate_to_json(&cert);
        let back = fgac::analyze::certificate_from_json(&json)
            .unwrap_or_else(|err| panic!("round-trip of `{sql}`: {err}\n{json}"));
        assert_eq!(cert, back, "round-trip of `{sql}`");
    }
}

/// Shadow mode (debug builds): the engine's execute path re-checks
/// every accept, so a valid query still executes and returns rows.
#[test]
fn execute_still_accepts_under_shadow_checking() {
    let mut e = engine();
    let s = Session::new("11");
    let resp = e
        .execute(&s, "select grade from grades where student_id = '11'")
        .unwrap();
    assert_eq!(resp.rows().unwrap().rows.len(), 1);
}
