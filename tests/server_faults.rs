//! Crash-matrix-style wire-fault tests for the network front end.
//!
//! The wire layer has three injection sites (`fault-injection` builds):
//! `server::read_frame` (read aborted), `server::write_frame` (response
//! dropped whole), and `server::write_frame_torn` (response cut in half
//! mid-write). This file sweeps faults across a live insert workload
//! and checks the durability contract from the client's point of view:
//!
//! > **Every acknowledged commit survives.** An ack the client never
//! > saw may or may not have committed (the torn frame carried it),
//! > but an `Affected` response that *arrived* is durable across drain
//! > and recovery — and the WAL recovers with no torn tail.
//!
//! These tests arm the **process-global** fault registry (the faulting
//! site fires on server connection threads, which cannot see a test
//! thread's thread-local arming), so they live in their own test binary
//! and serialize on a file-local mutex: a globally armed wire fault
//! hitting some other test's server would be cross-test sabotage.
#![cfg(feature = "fault-injection")]

use fgac::types::faults::{self, Fault};
use fgac_core::{DurabilityOptions, Engine, SharedEngine};
use fgac_server::{Client, Response, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Global-registry users must not overlap, even across test threads in
/// this binary.
static GLOBAL_FAULTS: Mutex<()> = Mutex::new(());

/// Disarms all faults when dropped, so a failed assertion cannot leave
/// a fault armed for whatever runs next.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "fgac-server-faults-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const FIXTURE: &str = "
    create table grades (student_id varchar not null, course_id varchar not null,
        grade int, primary key (student_id, course_id));
    create authorization view MyGrades as
        select * from grades where student_id = $user_id;
    grant view MyGrades to '11';
";

fn durable_engine(dir: &PathBuf) -> SharedEngine {
    let (mut e, _) = Engine::open_with(dir, DurabilityOptions::default()).unwrap();
    e.admin_script(FIXTURE).unwrap();
    e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
    SharedEngine::new(e)
}

/// Runs `total` inserts against a fresh server over `dir`, with `fault`
/// armed globally at `site` before the workload starts. The client
/// reconnects on any transport error (the injected fault may hit its
/// own write, the server's response, or tear the frame in half — all
/// look like a broken connection from here). Returns the set of course
/// ids whose insert was **acknowledged** on the wire.
fn faulted_insert_run(dir: &PathBuf, site: &'static str, nth: u64, total: u32) -> Vec<String> {
    let server = Server::start(
        durable_engine(dir),
        ServerConfig {
            drain_deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    faults::arm_global(site, Fault::ErrorOnNth(nth));
    let mut acked = Vec::new();
    let mut client: Option<Client> = None;
    for i in 0..total {
        if client.is_none() {
            let mut c = match Client::connect(addr, Duration::from_secs(5)) {
                Ok(c) => c,
                Err(_) => continue,
            };
            match c.hello("11") {
                Ok(Response::Ok(_)) => client = Some(c),
                _ => continue,
            }
        }
        let course = format!("c{i}");
        let sql = format!("insert into grades values ('11', '{course}', 50)");
        let Some(c) = client.as_mut() else { continue };
        match c.query(&sql) {
            Ok(Response::Affected(1)) => acked.push(course),
            // Duplicate key: an earlier attempt committed but its ack
            // was torn — the commit exists, we just never counted it.
            // Either way this course id is settled; move on.
            Ok(Response::Error(m)) if m.contains("duplicate") || m.contains("primary key") => {}
            Ok(_) => {}
            Err(_) => {
                // Transport fault: this connection is done. The insert
                // is in an unknown state (committed-but-unacked is
                // legal); reconnect and continue with the next one.
                client = None;
            }
        }
    }
    faults::disarm_all();
    let report = server.finish().unwrap();
    assert!(
        report.drained_cleanly,
        "drain left work behind after wire faults at {site}"
    );
    acked
}

/// Recovers `dir` and asserts every acked course id is present, with a
/// clean (untruncated) log.
fn assert_acked_survive(dir: &PathBuf, acked: &[String], context: &str) {
    let (mut e, report) = Engine::open_with(dir, DurabilityOptions::default()).unwrap();
    assert_eq!(
        report.truncated_tail_bytes, 0,
        "{context}: graceful close left a torn WAL tail"
    );
    let r = e
        .execute(
            &fgac_core::Session::new("11"),
            "select course_id from grades where student_id = '11'",
        )
        .unwrap();
    let present: std::collections::HashSet<String> = r
        .rows()
        .unwrap()
        .rows
        .iter()
        .map(|row| match row.get(0) {
            fgac_types::Value::Str(s) => s.clone(),
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    for course in acked {
        assert!(
            present.contains(course),
            "{context}: acknowledged insert '{course}' lost ({} acked, {} present)",
            acked.len(),
            present.len()
        );
    }
    e.close().unwrap();
}

#[test]
fn wire_fault_matrix_never_loses_an_acked_commit() {
    let _serial = GLOBAL_FAULTS.lock().unwrap_or_else(|p| p.into_inner());
    let _guard = Disarm;

    // The matrix: each wire site, faulting at an early and a mid-stream
    // hit. (`write_frame` counts every frame either side sends after
    // arming, so the hit numbers land at different workload positions —
    // the point is coverage of "before", "during", and "between".)
    let matrix: &[(&'static str, u64)] = &[
        ("server::write_frame", 3),
        ("server::write_frame", 17),
        ("server::write_frame_torn", 3),
        ("server::write_frame_torn", 17),
        ("server::read_frame", 2),
        ("server::read_frame", 9),
    ];
    for (site, nth) in matrix {
        faults::disarm_all();
        let dir = tmp_dir(&format!("matrix-{}-{nth}", site.replace("::", "-")));
        let acked = faulted_insert_run(&dir, site, *nth, 30);
        assert!(
            !acked.is_empty(),
            "{site} hit {nth}: workload never got an ack — fault swallowed everything"
        );
        assert_acked_survive(&dir, &acked, &format!("{site} hit {nth}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_response_loses_the_ack_but_never_the_commit() {
    // Focused version of the matrix with the interesting asymmetry made
    // explicit: tear exactly the response to the 2nd query frame the
    // server writes after arming. The client sees a broken connection;
    // the table still gains the row, because the WAL commit point is
    // upstream of the response write.
    let _serial = GLOBAL_FAULTS.lock().unwrap_or_else(|p| p.into_inner());
    let _guard = Disarm;
    let dir = tmp_dir("torn-ack");
    let server = Server::start(
        durable_engine(&dir),
        ServerConfig {
            drain_deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    c.hello("11").unwrap();
    // Arm *after* the handshake: the client's own query frame is hit 1
    // (write_frame is shared), the server's response to it is hit 2.
    faults::arm_global("server::write_frame_torn", Fault::ErrorOnNth(2));
    let outcome = c.query("insert into grades values ('11', 'torn1', 50)");
    assert!(
        outcome.is_err(),
        "the torn response reached the client whole: {outcome:?}"
    );
    assert!(faults::hits("server::write_frame_torn") >= 2, "fault never fired");
    faults::disarm_all();

    // Unacked ≠ aborted: the commit happened before the response.
    let mut c2 = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    c2.hello("11").unwrap();
    match c2.query("select course_id from grades where student_id = '11'").unwrap() {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1, "committed row missing"),
        other => panic!("expected rows, got {other:?}"),
    }
    server.finish().unwrap();
    assert_acked_survive(&dir, &["torn1".into()], "torn ack");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_fault_closes_the_connection_but_not_the_server() {
    let _serial = GLOBAL_FAULTS.lock().unwrap_or_else(|p| p.into_inner());
    let _guard = Disarm;
    let dir = tmp_dir("read-fault");
    let server = Server::start(
        durable_engine(&dir),
        ServerConfig {
            drain_deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // The read-site check runs at read entry, and the connection thread
    // enters its post-handshake read immediately after answering HELLO —
    // so arm before connecting: hit 1 is the handshake read (passes),
    // hit 2 is the next read, which aborts. The connection dies without
    // a response, and *only* the connection.
    faults::arm_global("server::read_frame", Fault::ErrorOnNth(2));
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    c.hello("11").unwrap();
    let outcome = c.query("select course_id from grades where student_id = '11'");
    assert!(outcome.is_err(), "read fault produced a response: {outcome:?}");
    faults::disarm_all();

    let mut c2 = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    c2.hello("11").unwrap();
    assert!(matches!(c2.ping().unwrap(), Response::Ok(_)));
    let report = server.finish().unwrap();
    assert!(report.drained_cleanly);
    let _ = std::fs::remove_dir_all(&dir);
}
