//! Crash-matrix property test: kill the engine at every WAL fault site,
//! recover, and require the recovered engine to equal the committed
//! prefix exactly.
//!
//! A randomized workload (DDL, grants, revocations, role changes,
//! delegation, constraint visibility, admin and user DML) is applied in
//! lockstep to a durable engine and an in-memory *shadow* engine. The
//! shadow only applies an op after the durable engine committed it, so
//! at every moment the shadow IS the committed prefix. Each matrix cell
//! arms one fault site (`wal::append`, `wal::append_torn`, `wal::flush`,
//! `wal::snapshot`, `wal::recover`) at its Nth hit; when the injected
//! crash fires, the engine is dropped mid-flight and reopened, and the
//! recovered state fingerprint — tables, catalog, grants, and the data
//! version that conditions cached verdicts — must be byte-identical to
//! the shadow's. Probe queries then confirm the validator reaches the
//! same verdicts on both.
//!
//! The cell outcomes are appended to `target/crash-matrix-report.txt`
//! so CI can publish the matrix.
#![cfg(feature = "fault-injection")]

use fgac::prelude::*;
use fgac::types::faults::{self, Fault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "fgac-crash-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Disarms all faults when dropped, so a failed assertion cannot leave a
/// fault armed for other tests on this thread.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

/// One workload operation. Every op either commits fully (WAL record
/// durable, state applied) or fails as a crash — none can fail for a
/// "legitimate" reason, so any `Err` marks the crash point.
#[derive(Debug, Clone)]
enum Op {
    Admin(String),
    UserDml { user: String, sql: String },
    GrantView { principal: String, view: String },
    RevokeView { principal: String, view: String },
    GrantConstraint { principal: String, name: String },
    GrantUpdate { principal: String, sql: String },
    AddRole { user: String, role: String },
    DelegateView { from: String, to: String, view: String },
}

fn apply(e: &mut Engine, op: &Op) -> fgac::types::Result<()> {
    match op {
        Op::Admin(sql) => e.admin_script(sql),
        Op::UserDml { user, sql } => {
            e.execute(&Session::new(user.clone()), sql).map(|_| ())
        }
        Op::GrantView { principal, view } => e.grant_view(principal, view),
        Op::RevokeView { principal, view } => e.revoke_view(principal, view),
        Op::GrantConstraint { principal, name } => e.grant_constraint(principal, name),
        Op::GrantUpdate { principal, sql } => e.grant_update_sql(principal, sql),
        Op::AddRole { user, role } => e.add_role(user, role),
        Op::DelegateView { from, to, view } => e.delegate_view(from, to, view),
    }
}

const USERS: [&str; 3] = ["11", "12", "13"];
const VIEWS: [&str; 2] = ["mygrades", "myregistrations"];

/// Fixed prefix: schema, authorization views, an inclusion dependency,
/// update authorizations, seed rows. One statement per op so each op
/// commits exactly one WAL record.
fn setup_ops() -> Vec<Op> {
    let mut ops: Vec<Op> = [
        "create table students (student_id varchar not null, name varchar not null, \
         primary key (student_id))",
        "create table grades (student_id varchar not null, course_id varchar not null, \
         grade int, primary key (student_id, course_id))",
        "create table registered (student_id varchar not null, course_id varchar not null, \
         primary key (student_id, course_id))",
        "create authorization view MyGrades as \
         select * from grades where student_id = $user_id",
        "create authorization view MyRegistrations as \
         select * from registered where student_id = $user_id",
        "create inclusion dependency all_registered on \
         grades (student_id, course_id) references registered (student_id, course_id)",
        "insert into students values ('11', 'ann'), ('12', 'bob'), ('13', 'cam')",
    ]
    .into_iter()
    .map(|s| Op::Admin(s.to_string()))
    .collect();
    for user in USERS {
        ops.push(Op::GrantUpdate {
            principal: user.into(),
            sql: "authorize insert on registered where student_id = $user_id".into(),
        });
        ops.push(Op::GrantUpdate {
            principal: user.into(),
            sql: "authorize insert on grades where student_id = $user_id".into(),
        });
    }
    ops
}

/// Randomized tail: `n` ops drawn from every record-producing category.
/// `holds` mirrors the view-grant table so delegation ops are only
/// generated when they will succeed (a legitimate delegation failure
/// would be indistinguishable from a crash).
fn random_ops(rng: &mut StdRng, n: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(n);
    let mut holds: Vec<(String, String)> = Vec::new();
    for i in 0..n {
        let user = USERS[rng.gen_range(0..USERS.len())].to_string();
        let view = VIEWS[rng.gen_range(0..VIEWS.len())].to_string();
        match rng.gen_range(0..10u32) {
            0..=2 => {
                // Unique keys per op index: inserts never collide.
                let table = if rng.gen_bool(0.5) { "registered" } else { "grades" };
                let tail = if table == "grades" { ", 80" } else { "" };
                ops.push(Op::UserDml {
                    user: user.clone(),
                    sql: format!(
                        "insert into {table} values ('{user}', 'c{i}'{tail})"
                    ),
                });
            }
            3 => ops.push(Op::Admin(format!(
                "delete from registered where course_id = 'c{}'",
                rng.gen_range(0..(i + 1))
            ))),
            4..=5 => {
                holds.push((user.clone(), view.clone()));
                ops.push(Op::GrantView { principal: user, view });
            }
            6 => {
                holds.retain(|(u, v)| !(u == &user && v == &view));
                ops.push(Op::RevokeView { principal: user, view });
            }
            7 => ops.push(Op::GrantConstraint {
                principal: user,
                name: "all_registered".into(),
            }),
            8 => ops.push(Op::AddRole {
                user,
                role: "student".into(),
            }),
            _ => {
                if let Some((from, view)) = holds.last().cloned() {
                    holds.push((user.clone(), view.clone()));
                    ops.push(Op::DelegateView { from, to: user, view });
                } else {
                    holds.push((user.clone(), view.clone()));
                    ops.push(Op::GrantView { principal: user, view });
                }
            }
        }
    }
    ops
}

/// Compares the recovered engine against the shadow: state fingerprint
/// (tables, catalog, grants, data version) plus validator verdicts and
/// result rows for probe queries.
fn assert_equivalent(recovered: &mut Engine, shadow: &mut Engine, cell: &str) {
    assert_eq!(
        recovered.state_fingerprint(),
        shadow.state_fingerprint(),
        "[{cell}] recovered state != committed prefix"
    );
    let probes = [
        "select grade from grades where student_id = $user_id",
        "select * from registered where student_id = $user_id",
        "select grade from grades",
        "select count(*) from registered",
    ];
    for user in USERS {
        let s = Session::new(user);
        for q in probes {
            let a = recovered.execute(&s, q);
            let b = shadow.execute(&s, q);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "[{cell}] rows differ for {user}: {q}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "[{cell}] verdicts differ for {user} on {q}: {a:?} vs {b:?}"
                ),
            }
        }
    }
}

fn report(line: &str) {
    let _ = std::fs::create_dir_all("target");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/crash-matrix-report.txt")
    {
        let _ = writeln!(f, "{line}");
    }
}

/// Runs one matrix cell: arm `site` at its `nth` hit, run the workload
/// until the crash fires (or it doesn't), recover, verify.
/// Returns whether the fault actually fired.
fn run_cell(seed: u64, site: &'static str, nth: u64) -> bool {
    let _guard = Disarm;
    let dir = tmp_dir(&format!("{}-{nth}", site.replace("::", "-")));
    let opts = DurabilityOptions {
        sync_on_commit: false,
        snapshot_every: 16, // small: the workload crosses rotation
    };
    let (mut durable, _) = Engine::open_with(&dir, opts.clone()).unwrap();
    let mut shadow = Engine::new();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = setup_ops();
    ops.extend(random_ops(&mut rng, 40));

    faults::arm(site, Fault::ErrorOnNth(nth));
    let mut crashed = false;
    for op in &ops {
        match apply(&mut durable, op) {
            Ok(()) => {
                // Committed: the shadow follows. It cannot fail — the
                // durable engine just did the same thing successfully.
                apply(&mut shadow, op).unwrap();
            }
            Err(_) => {
                crashed = true;
                break;
            }
        }
    }
    faults::disarm_all();

    // The failed op must have been rolled back in memory too: before the
    // "machine dies", the live engine already equals the committed state.
    assert_eq!(
        durable.state_fingerprint(),
        shadow.state_fingerprint(),
        "[{site}@{nth}] live engine ran ahead of the log after a WAL failure"
    );
    drop(durable); // the crash: no close, no sync

    let (mut recovered, _) = Engine::open_with(&dir, opts).unwrap();
    let cell = format!("seed={seed} {site}@{nth}");
    assert_equivalent(&mut recovered, &mut shadow, &cell);

    // The recovered engine must accept new work — a fresh table, so this
    // holds no matter how early in the workload the crash fired.
    for op in [
        Op::Admin("create table postcrash (k varchar not null, primary key (k))".into()),
        Op::Admin("insert into postcrash values ('x')".into()),
        Op::GrantView {
            principal: "11".into(),
            view: "mygrades".into(),
        },
    ] {
        apply(&mut recovered, &op).unwrap();
        apply(&mut shadow, &op).unwrap();
    }
    assert_eq!(recovered.state_fingerprint(), shadow.state_fingerprint());

    let _ = std::fs::remove_dir_all(&dir);
    report(&format!(
        "cell seed={seed} site={site} nth={nth} fired={crashed} ok"
    ));
    crashed
}

/// Every append-path fault site, at every hit from the first record to
/// past the end of the workload. `fired` goes false once `nth` exceeds
/// the workload's record count — those cells double as clean-run checks.
#[test]
fn crash_matrix_append_sites() {
    for seed in [7, 42] {
        for site in ["wal::append", "wal::append_torn", "wal::flush"] {
            let mut fired = true;
            let mut nth = 1;
            while fired {
                fired = run_cell(seed, site, nth);
                nth += match nth {
                    // Exhaustive through the setup prefix, then stride —
                    // every record kind is hit; runtime stays bounded.
                    0..=16 => 1,
                    _ => 7,
                };
            }
            assert!(nth > 17, "workload too short to exercise {site}");
        }
    }
}

/// A failed automatic snapshot must not fail the committed statement:
/// the log already holds every record, so recovery just replays more.
#[test]
fn crash_matrix_snapshot_site() {
    for seed in [7, 42] {
        let fired = run_cell(seed, "wal::snapshot", 1);
        assert!(!fired, "a swallowed snapshot failure is not a crash");
    }
}

/// A failure *after* the log-rotation rename (inside snapshot install)
/// must poison the store: the next op fails instead of being
/// acknowledged into the old log's unlinked inode, and recovery picks
/// up the already-durable snapshot + rotated log.
#[test]
fn crash_matrix_rotate_site() {
    for seed in [7, 42] {
        let fired = run_cell(seed, "wal::rotate", 1);
        assert!(fired, "a poisoned store must stop accepting work");
    }
}

/// Crash during an *explicit* snapshot, after a workload has run.
#[test]
fn crash_during_explicit_snapshot() {
    let _guard = Disarm;
    let dir = tmp_dir("explicit-snapshot");
    let mut e = Engine::open(&dir).unwrap();
    let mut shadow = Engine::new();
    for op in setup_ops() {
        apply(&mut e, &op).unwrap();
        apply(&mut shadow, &op).unwrap();
    }
    faults::arm("wal::snapshot", Fault::ErrorOnNth(1));
    assert!(e.snapshot_now().is_err());
    faults::disarm_all();
    drop(e);

    let (mut recovered, report) =
        Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert_eq!(report.snapshot_lsn, None, "failed snapshot left no file");
    assert_equivalent(&mut recovered, &mut shadow, "explicit-snapshot");
}

/// Crash *during recovery itself*, at every frame of the scan: an
/// aborted recovery mutates nothing, and the retry succeeds with the
/// full committed state.
#[test]
fn crash_matrix_recovery_site() {
    let _guard = Disarm;
    let dir = tmp_dir("recover");
    let mut e = Engine::open(&dir).unwrap();
    let mut shadow = Engine::new();
    let mut rng = StdRng::seed_from_u64(99);
    let mut ops = setup_ops();
    ops.extend(random_ops(&mut rng, 20));
    for op in &ops {
        apply(&mut e, op).unwrap();
        apply(&mut shadow, op).unwrap();
    }
    drop(e); // dirty
    let wal = dir.join("wal.log");
    let len_before = std::fs::metadata(&wal).unwrap().len();

    let mut nth = 1;
    loop {
        faults::arm("wal::recover", Fault::ErrorOnNth(nth));
        let outcome = Engine::open(&dir);
        let fired = outcome.is_err();
        faults::disarm_all();
        match outcome {
            Err(_) => {
                // Aborted mid-scan: nothing on disk may have changed.
                assert_eq!(
                    std::fs::metadata(&wal).unwrap().len(),
                    len_before,
                    "aborted recovery (frame {nth}) mutated the log"
                );
            }
            Ok(mut recovered) => {
                // nth exceeded the frame count: a clean recovery.
                assert_equivalent(&mut recovered, &mut shadow, &format!("recover@{nth}"));
            }
        }
        report(&format!("cell seed=99 site=wal::recover nth={nth} fired={fired} ok"));
        if !fired {
            break;
        }
        // Every aborted attempt must leave a retry fully functional.
        let mut recovered = Engine::open(&dir).unwrap();
        assert_equivalent(&mut recovered, &mut shadow, &format!("recover-retry@{nth}"));
        nth += 1;
    }
    assert!(nth > 10, "recovery scan too short for the matrix");
}
