//! Property tests for the certificate wire format: arbitrary
//! certificates — including adversarial strings, nested expressions,
//! and every rule — must survive `certificate_to_json` →
//! `certificate_from_json` losslessly. The diagnostic JSON round-trip
//! is pinned under the same string generator so both hand-rolled
//! serializers face identical escaping pressure.

use fgac::analyze::{
    certificate_from_json, certificate_to_json, diagnostics_from_json, diagnostics_to_json,
    CertVerdict, Certificate, Code, Diagnostic, Obligation, RuleId, Severity, Step,
};
use fgac_algebra::{ArithOp, CmpOp, ScalarExpr, SpjBlock};
use fgac_types::{Column, DataType, Ident, Schema, Value};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------

/// Escaper-hostile suffixes: quotes, backslashes, control characters,
/// JSON structure characters, multi-byte unicode, keyword lookalikes.
const SPECIALS: &[&str] = &[
    "",
    "\"quoted\"",
    "back\\slash",
    "new\nline",
    "tab\there",
    "car\rriage",
    "\u{1}\u{7f}",
    "π—𝄞",
    "{}[]:,",
    "null",
    "-3.5e2",
];

/// Strings that stress the JSON escaper.
fn wire_string() -> impl Strategy<Value = String> {
    (0..SPECIALS.len(), "[a-z]{0,6}").prop_map(|(i, base)| format!("{base}{}", SPECIALS[i]))
}

fn ident() -> impl Strategy<Value = Ident> {
    "[a-z][a-z0-9_]{0,8}".prop_map(Ident::new)
}

/// Every value the wire format carries. No NaN: `Value` equality (and
/// hence the round-trip assertion) is not reflexive on NaN, and no
/// catalog value can be NaN either.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1_000_000_000i64..1_000_000_000).prop_map(|n| Value::Double(n as f64 / 128.0)),
        wire_string().prop_map(Value::Str),
    ]
}

fn data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Int),
        Just(DataType::Double),
        Just(DataType::Str),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::NotEq),
        Just(CmpOp::Lt),
        Just(CmpOp::LtEq),
        Just(CmpOp::Gt),
        Just(CmpOp::GtEq),
    ]
}

fn arith_op() -> impl Strategy<Value = ArithOp> {
    prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
        Just(ArithOp::Mod),
    ]
}

/// Expressions over every wire-format constructor, nested a few levels.
fn expr() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        (0..8usize).prop_map(ScalarExpr::Col),
        value().prop_map(ScalarExpr::Lit),
        wire_string().prop_map(ScalarExpr::AccessParam),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (cmp_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| ScalarExpr::Cmp {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            vec(inner.clone(), 0..3).prop_map(ScalarExpr::And),
            vec(inner.clone(), 0..3).prop_map(ScalarExpr::Or),
            inner.clone().prop_map(|e| ScalarExpr::Not(Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| ScalarExpr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (arith_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                ScalarExpr::Arith {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }),
            inner.prop_map(|e| ScalarExpr::Neg(Box::new(e))),
        ]
    })
}

fn column() -> impl Strategy<Value = Column> {
    (ident(), data_type(), any::<bool>()).prop_map(|(name, ty, nullable)| {
        let mut c = Column::new(name, ty);
        c.nullable = nullable;
        c
    })
}

fn spj_block() -> impl Strategy<Value = SpjBlock> {
    (
        vec((ident(), vec(column(), 1..4)), 1..3),
        vec(expr(), 0..3),
        vec(expr(), 0..4),
        any::<bool>(),
    )
        .prop_map(|(scans, conjuncts, projection, distinct)| SpjBlock {
            scans: scans
                .into_iter()
                .map(|(t, cols)| (t, Schema::new(cols)))
                .collect(),
            conjuncts,
            projection,
            distinct,
        })
}

fn obligation() -> impl Strategy<Value = Obligation> {
    (vec(expr(), 0..3), vec(expr(), 0..3), 0..16usize).prop_map(
        |(premise, conclusion, arity)| Obligation {
            premise,
            conclusion,
            arity,
        },
    )
}

fn rule_id() -> impl Strategy<Value = RuleId> {
    prop_oneof![
        Just(RuleId::U1),
        Just(RuleId::U2Dag),
        Just(RuleId::U2Match),
        Just(RuleId::U2Restrict),
        Just(RuleId::U2Compose),
        Just(RuleId::U3a),
        Just(RuleId::U3c),
        Just(RuleId::C3a),
        Just(RuleId::C3b),
        Just(RuleId::DependentJoin),
    ]
}

fn step() -> impl Strategy<Value = Step> {
    (
        (
            rule_id(),
            option::of(spj_block()),
            vec(0..32usize, 0..4),
            option::of(ident()),
            option::of(ident()),
        ),
        (
            vec(0..32usize, 0..6),
            vec((wire_string(), value()), 0..2),
            vec(obligation(), 0..2),
            option::of(any::<u64>()),
            wire_string(),
        ),
    )
        .prop_map(
            |(
                (rule, block, premises, view, constraint),
                (substitution, pins, obligations, probe_rows, note),
            )| Step {
                rule,
                block,
                premises,
                view,
                constraint,
                substitution,
                pins,
                obligations,
                probe_rows,
                note,
            },
        )
}

fn certificate() -> impl Strategy<Value = Certificate> {
    (
        (
            wire_string(),
            any::<u64>(),
            prop_oneof![
                Just(CertVerdict::Unconditional),
                Just(CertVerdict::Conditional)
            ],
            vec((wire_string(), value()), 0..3),
        ),
        (
            vec(ident(), 0..3),
            option::of(spj_block()),
            vec(step(), 0..4),
        ),
    )
        .prop_map(
            |(
                (principal, policy_epoch, verdict, params),
                (query_tables, query, steps),
            )| Certificate {
                principal,
                policy_epoch,
                verdict,
                params,
                query_tables,
                query,
                steps,
            },
        )
}

fn code() -> impl Strategy<Value = Code> {
    prop_oneof![
        Just(Code::UnsatisfiableViewPredicate),
        Just(Code::RedundantGrant),
        Just(Code::ShadowedByRevocation),
        Just(Code::UnusableView),
        Just(Code::LeakyConditionalCheck),
        Just(Code::UnboundParameter),
        Just(Code::CrossViewContradiction),
        Just(Code::UncoveredRelation),
        Just(Code::UnauthorizedProbe),
        Just(Code::StaleGrantEpoch),
        Just(Code::CertificateStepUnverified),
        Just(Code::TransitiveDisclosureWidening),
        Just(Code::ConstraintInferenceChannel),
        Just(Code::ProbeChannelExposure),
        Just(Code::GrantFlowDiff),
        // Code::UnrecognizedFinding is deliberately absent: it is the
        // parser's forward-compat placeholder, never emitted, and its
        // wire form does not round-trip (severity is forced to
        // `unknown` on parse — see the pins below).
    ]
}

fn diagnostic() -> impl Strategy<Value = Diagnostic> {
    (
        code(),
        prop_oneof![
            Just(Severity::Error),
            Just(Severity::Warning),
            Just(Severity::Unknown),
        ],
        wire_string(),
        wire_string(),
        wire_string(),
    )
        .prop_map(|(code, severity, principal, object, message)| Diagnostic {
            code,
            severity,
            principal,
            object,
            message,
        })
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lossless round-trip for arbitrary certificates.
    #[test]
    fn certificate_json_round_trips(cert in certificate()) {
        let json = certificate_to_json(&cert);
        let back = certificate_from_json(&json)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{json}"));
        prop_assert_eq!(cert, back);
    }

    /// The printer's output is strict-parser stable: print(parse(print))
    /// == print — no drift between the two sides of the wire.
    #[test]
    fn certificate_json_printing_is_a_fixpoint(cert in certificate()) {
        let json = certificate_to_json(&cert);
        let back = certificate_from_json(&json)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{json}"));
        prop_assert_eq!(json, certificate_to_json(&back));
    }

    /// Regression pin: the diagnostic JSON round-trip holds under the
    /// same adversarial string generator the certificates use.
    #[test]
    fn diagnostic_json_round_trips(diags in vec(diagnostic(), 0..4)) {
        let json = diagnostics_to_json(&diags);
        let back = diagnostics_from_json(&json)
            .unwrap_or_else(|| panic!("round-trip parse failed:\n{json}"));
        prop_assert_eq!(diags, back);
    }

    /// Forward compatibility under fuzzing: a wire document carrying a
    /// finding code this build has never heard of still loads, and the
    /// unknown finding degrades to `Severity::Unknown` — never to an
    /// error, never to a rejected document.
    #[test]
    fn unknown_wire_codes_degrade_to_unknown_severity(
        tag in "[A-Z][0-9]{3}",
        msg in wire_string(),
    ) {
        prop_assume!(Code::from_str_code(&tag).is_none());
        let known = Diagnostic::new(Code::GrantFlowDiff, "p", "o", msg.clone());
        let json = diagnostics_to_json(&[known])
            .replace("\"code\":\"F004\"", &format!("\"code\":\"{tag}\""));
        let back = diagnostics_from_json(&json)
            .unwrap_or_else(|| panic!("forward-compat parse failed:\n{json}"));
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(back[0].code, Code::UnrecognizedFinding);
        prop_assert_eq!(back[0].severity, Severity::Unknown);
        prop_assert_eq!(&back[0].message, &msg);
    }
}

/// Corrupting any single byte of a valid certificate document must
/// never be silently accepted as the original certificate: the strict
/// parser either rejects it or parses a *different* certificate.
#[test]
fn single_byte_corruption_never_parses_to_the_same_certificate() {
    let cert = Certificate {
        principal: "11".into(),
        policy_epoch: 7,
        verdict: CertVerdict::Unconditional,
        params: vec![("user_id".into(), Value::Str("11".into()))],
        query_tables: vec![Ident::new("grades")],
        query: None,
        steps: vec![Step::new(RuleId::U1)],
    };
    let json = certificate_to_json(&cert);
    let bytes = json.as_bytes();
    let mut silently_equal = 0usize;
    for i in 0..bytes.len() {
        let mut corrupted = bytes.to_vec();
        corrupted[i] = corrupted[i].wrapping_add(1);
        let Ok(s) = String::from_utf8(corrupted) else {
            continue;
        };
        if let Ok(back) = certificate_from_json(&s) {
            if back == cert {
                silently_equal += 1;
            }
        }
    }
    assert_eq!(
        silently_equal, 0,
        "corrupted documents parsed back to the original"
    );
}

/// The diagnostics wire form under the same single-byte-corruption
/// sweep: a flipped byte is either rejected, parses to a *different*
/// finding list, or hit one of the format's two non-semantic regions —
/// inter-token whitespace, or the derived `name` value, which the
/// parser deliberately ignores (the name re-derives from the code).
/// Nothing semantic — code, severity, principal, object, message — can
/// be corrupted silently.
#[test]
fn single_byte_corruption_of_diagnostics_is_never_semantically_silent() {
    let diags = vec![
        Diagnostic::new(
            Code::TransitiveDisclosureWidening,
            "11",
            "students",
            "join recombination widens disclosure",
        ),
        Diagnostic::new(Code::GrantFlowDiff, "12", "types", "newly discloses type"),
    ];
    let json = diagnostics_to_json(&diags);
    let bytes = json.as_bytes();

    let mut nonsemantic = vec![false; bytes.len()];
    for (i, &b) in bytes.iter().enumerate() {
        nonsemantic[i] = (b as char).is_whitespace();
    }
    // The whole pair is ignorable, key text included: corrupting `name`
    // into an unknown key makes the parser skip the pair, which is
    // exactly what it does with the intact derived pair.
    let needle = "\"name\":\"";
    let mut from = 0;
    while let Some(pos) = json[from..].find(needle) {
        let start = from + pos;
        let value = start + needle.len();
        let end = value + json[value..].find('"').expect("name value closes");
        nonsemantic[start..end].fill(true);
        from = end;
    }

    for i in 0..bytes.len() {
        let mut corrupted = bytes.to_vec();
        corrupted[i] = corrupted[i].wrapping_add(1);
        let Ok(s) = String::from_utf8(corrupted) else {
            continue;
        };
        if let Some(back) = diagnostics_from_json(&s) {
            if back == diags {
                assert!(
                    nonsemantic[i],
                    "semantic byte {i} ({:?}) corrupted silently",
                    bytes[i] as char
                );
            }
        }
    }
}
