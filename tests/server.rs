//! Integration tests for the network front end: protocol semantics,
//! backpressure, deadlines, robustness against misbehaving clients,
//! and graceful drain with zero acknowledged-commit loss.
//!
//! Wire-level fault injection (torn/dropped response frames) lives in
//! `tests/server_faults.rs` — those tests arm the process-global fault
//! registry, which must not race the servers started here.

use fgac_core::{DurabilityOptions, Engine, SharedEngine};
use fgac_server::{AdminOp, Client, Response, Server, ServerConfig};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "fgac-server-test-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const FIXTURE: &str = "
    create table grades (student_id varchar not null, course_id varchar not null,
        grade int, primary key (student_id, course_id));
    create authorization view MyGrades as
        select * from grades where student_id = $user_id;
    insert into grades values ('11', 'cs101', 90), ('12', 'cs101', 70);
    grant view MyGrades to '11';
";

fn fixture_engine() -> SharedEngine {
    let mut e = Engine::new();
    e.admin_script(FIXTURE).unwrap();
    e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
    SharedEngine::new(e)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        drain_deadline: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn connect(server: &Server, principal: &str) -> Client {
    let mut c = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    let hello = c.hello(principal).unwrap();
    assert!(matches!(hello, Response::Ok(_)), "handshake failed: {hello:?}");
    c
}

#[test]
fn queries_dml_and_denials_round_trip() {
    let server = Server::start(fixture_engine(), quick_config()).unwrap();
    let mut alice = connect(&server, "11");

    // Covered query: rows come back, query ran unmodified.
    match alice.query("select grade from grades where student_id = '11'").unwrap() {
        Response::Rows { names, rows } => {
            assert_eq!(names.len(), 1);
            assert_eq!(rows.len(), 1);
        }
        other => panic!("expected rows, got {other:?}"),
    }
    // Authorized DML.
    match alice.query("insert into grades values ('11', 'cs900', 75)").unwrap() {
        Response::Affected(1) => {}
        other => panic!("expected Affected(1), got {other:?}"),
    }
    // Uncovered query: DENIED, with the engine's fail-closed reason.
    match alice.query("select grade from grades where student_id = '12'").unwrap() {
        Response::Denied(_) => {}
        other => panic!("expected Denied, got {other:?}"),
    }
    // A principal with no grants at all is denied, not errored.
    let mut mallory = connect(&server, "99");
    match mallory.query("select grade from grades where student_id = '11'").unwrap() {
        Response::Denied(_) => {}
        other => panic!("expected Denied for ungranted principal, got {other:?}"),
    }

    let report = server.finish().unwrap();
    assert!(report.drained_cleanly);
}

#[test]
fn admin_plane_is_gated_to_the_admin_principal() {
    let server = Server::start(fixture_engine(), quick_config()).unwrap();

    // Non-admin principals get DENIED (this *is* an authorization
    // decision, unlike shedding).
    let mut alice = connect(&server, "11");
    match alice
        .admin(AdminOp::GrantView {
            principal: "12".into(),
            view: "mygrades".into(),
        })
        .unwrap()
    {
        Response::Denied(_) => {}
        other => panic!("expected Denied for non-admin, got {other:?}"),
    }

    // The admin can grant; the new grant is live for fresh checks.
    let mut admin = connect(&server, "admin");
    match admin
        .admin(AdminOp::GrantView {
            principal: "12".into(),
            view: "mygrades".into(),
        })
        .unwrap()
    {
        Response::Ok(_) => {}
        other => panic!("expected Ok from admin grant, got {other:?}"),
    }
    let mut bob = connect(&server, "12");
    match bob.query("select grade from grades where student_id = '12'").unwrap() {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("granted principal still refused: {other:?}"),
    }
    // And revocation propagates the same way.
    match admin
        .admin(AdminOp::RevokeView {
            principal: "12".into(),
            view: "mygrades".into(),
        })
        .unwrap()
    {
        Response::Ok(_) => {}
        other => panic!("expected Ok from revoke, got {other:?}"),
    }
    match bob.query("select grade from grades where student_id = '12'").unwrap() {
        Response::Denied(_) => {}
        other => panic!("revoked principal still allowed: {other:?}"),
    }
    server.finish().unwrap();
}

#[test]
fn shed_under_backpressure_is_never_denied() {
    // workers=1 and a one-slot queue; the test thread stalls the single
    // worker by holding the engine's write lock, so: request A occupies
    // the worker, request B occupies the queue slot, request C must be
    // shed — deterministically, and with the SHED status, never DENIED.
    let engine = fixture_engine();
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..quick_config()
        },
    )
    .unwrap();
    let q = "select grade from grades where student_id = '11'";

    let barrier = Arc::new(std::sync::Barrier::new(2));
    let stall = {
        let engine = engine.clone();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            engine.with_write(|_| {
                barrier.wait(); // lock held: let the test proceed
                std::thread::sleep(Duration::from_millis(3000));
            });
        })
    };
    barrier.wait();

    // A and B: sent while the worker is stalled; both will eventually
    // succeed (in-flight + queued), so run them on their own threads.
    // Sequence the admissions on the server's lock-free gauges so the
    // scenario is deterministic even on a loaded machine: A inside the
    // worker first, then B parked in the queue slot.
    let addr = server.local_addr();
    let spawn_query = || {
        std::thread::spawn(move || {
            let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
            c.hello("11").unwrap();
            c.query(q).unwrap()
        })
    };
    let wait_for = |what: &str, cond: &dyn Fn() -> bool| {
        let t = std::time::Instant::now();
        while !cond() {
            assert!(
                t.elapsed() < Duration::from_secs(1),
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    let a = spawn_query();
    wait_for("A to occupy the stalled worker", &|| server.inflight() == 1);
    let b = spawn_query();
    wait_for("B to occupy the queue slot", &|| server.queue_depth() == 1);
    let in_flight = vec![a, b];

    // C: must be shed immediately — admission control refuses without
    // blocking, and the refusal is SHED (retryable), not DENIED.
    let mut c = connect(&server, "11");
    let t = std::time::Instant::now();
    match c.query(q).unwrap() {
        Response::Shed(_) => {}
        Response::Denied(m) => panic!("backpressure surfaced as DENIED: {m}"),
        other => panic!("expected Shed, got {other:?}"),
    }
    assert!(
        t.elapsed() < Duration::from_millis(300),
        "shed answer must be immediate, took {:?}",
        t.elapsed()
    );

    // Once the stall clears, A and B complete with real answers, and a
    // retry of C's query now succeeds: shed was transient, not a verdict.
    stall.join().unwrap();
    for h in in_flight {
        match h.join().unwrap() {
            Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
            other => panic!("stalled request did not complete: {other:?}"),
        }
    }
    match c.query(q).unwrap() {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("retry after shed failed: {other:?}"),
    }

    let report = server.finish().unwrap();
    let shed = report.metrics.iter().find(|(k, _)| *k == "resp_shed").unwrap().1;
    assert!(shed >= 1, "server never recorded the shed");
}

#[test]
fn deadline_expiry_is_timeout_status_not_denied() {
    let server = Server::start(fixture_engine(), quick_config()).unwrap();
    let mut c = connect(&server, "11");
    let q = "select grade from grades where student_id = '11'";

    // Warm the caches so the deadline gate is tested on the hot path too.
    assert!(matches!(c.query(q).unwrap(), Response::Rows { .. }));

    // A zero-millisecond deadline has expired by the time a worker picks
    // the job up: TIMEOUT on the wire, distinguishable from both DENIED
    // (authorization) and SHED (admission).
    match c.query_deadline(q, 0).unwrap() {
        Response::Timeout(m) => assert!(m.contains("deadline"), "{m}"),
        Response::Denied(m) => panic!("deadline expiry surfaced as DENIED: {m}"),
        other => panic!("expected Timeout, got {other:?}"),
    }

    // The same query with a generous deadline still succeeds: the
    // expired request left no trace in any cache.
    match c.query_deadline(q, 5_000).unwrap() {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("expected rows after timeout, got {other:?}"),
    }
    server.finish().unwrap();
}

#[test]
fn connection_cap_refuses_with_shed_status() {
    let server = Server::start(
        fixture_engine(),
        ServerConfig {
            max_connections: 1,
            ..quick_config()
        },
    )
    .unwrap();
    let mut first = connect(&server, "11");

    // Second connection: refused at accept time with a SHED frame.
    let mut second = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    match second.hello("11") {
        Ok(Response::Shed(_)) => {}
        Ok(other) => panic!("expected Shed at the connection cap, got {other:?}"),
        // The refusal frame may race the HELLO write; a closed pipe is
        // also acceptable, but a DENIED never is (asserted by the Ok arm).
        Err(_) => {}
    }

    // The first connection is unaffected.
    match first.query("select grade from grades where student_id = '11'").unwrap() {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("existing connection broken by cap refusal: {other:?}"),
    }

    // Closing the first frees the slot for a new client.
    first.bye().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let mut third = connect(&server, "11");
    assert!(matches!(third.ping().unwrap(), Response::Ok(_)));
    server.finish().unwrap();
}

#[test]
fn slowloris_and_idle_connections_are_cut_loose() {
    let server = Server::start(
        fixture_engine(),
        ServerConfig {
            idle_timeout: Duration::from_millis(250),
            frame_timeout: Duration::from_millis(250),
            ..quick_config()
        },
    )
    .unwrap();

    // Idle client: connected, handshaken, then silent past the idle
    // timeout. The server closes the connection.
    let mut idle = connect(&server, "11");
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        idle.ping().is_err(),
        "idle connection should have been closed by the server"
    );

    // Slowloris: starts a frame, then drips nothing. The per-frame
    // deadline cuts it off even though bytes arrived recently.
    let mut slow = connect(&server, "11");
    slow.stream().write_all(&[0x07, 0x00]).unwrap(); // 2 bytes of a 13-byte header
    slow.stream().flush().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    let followup = slow.ping();
    assert!(
        followup.is_err(),
        "stalled mid-frame connection should have been closed, got {followup:?}"
    );

    // The server itself is healthy and serving new clients.
    let mut fresh = connect(&server, "11");
    assert!(matches!(fresh.ping().unwrap(), Response::Ok(_)));

    let report = server.finish().unwrap();
    let idle_cut = report.metrics.iter().find(|(k, _)| *k == "conns_idle_timeout").unwrap().1;
    let stalled = report.metrics.iter().find(|(k, _)| *k == "conns_stalled").unwrap().1;
    assert!(idle_cut >= 1, "idle timeout not recorded");
    assert!(stalled >= 1, "stall not recorded");
}

#[test]
fn corrupt_frames_and_protocol_violations_are_isolated_per_connection() {
    let server = Server::start(fixture_engine(), quick_config()).unwrap();
    let mut honest = connect(&server, "11");

    // Garbage bytes (a plausible length, then noise): the server answers
    // PROTOCOL and closes that connection only.
    let mut vandal = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    vandal.hello("11").unwrap();
    let mut garbage = vec![5u8, 0, 0, 0]; // len = 5
    garbage.extend_from_slice(&[0xAB; 14]); // bogus kind/CRCs/payload
    vandal.stream().write_all(&garbage).unwrap();
    vandal.stream().flush().unwrap();
    // The server answers PROTOCOL (the vandal may read it as the reply
    // to its next call) and then closes; within two calls the
    // connection is observably dead, and nothing ever looks like a
    // successful result.
    match vandal.ping() {
        Ok(Response::Protocol(_)) | Err(_) => {}
        Ok(other) => panic!("expected Protocol or closed connection, got {other:?}"),
    }
    let after = vandal.ping();
    assert!(after.is_err(), "corrupt frame did not close the connection: {after:?}");

    // Skipping the handshake is a protocol violation, answered as such.
    let mut rude = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    match rude.query("select 1") {
        Ok(Response::Protocol(_)) | Err(_) => {}
        Ok(other) => panic!("expected Protocol for missing HELLO, got {other:?}"),
    }

    // The honest connection never noticed.
    match honest.query("select grade from grades where student_id = '11'").unwrap() {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("honest connection disturbed: {other:?}"),
    }

    let report = server.finish().unwrap();
    let corrupt = report.metrics.iter().find(|(k, _)| *k == "frames_corrupt").unwrap().1;
    assert!(corrupt >= 1, "corrupt frame not counted");
}

#[test]
fn metrics_expose_server_and_engine_counters() {
    let server = Server::start(fixture_engine(), quick_config()).unwrap();
    let mut c = connect(&server, "11");
    let q = "select grade from grades where student_id = '11'";
    for _ in 0..3 {
        c.query(q).unwrap();
    }
    let metrics: std::collections::HashMap<String, u64> =
        c.metrics().unwrap().into_iter().collect();
    assert!(metrics["requests"] >= 3, "{metrics:?}");
    assert!(metrics["resp_rows"] >= 3);
    assert_eq!(metrics["resp_denied"], 0);
    // Engine-side counters ride along: repeats hit the plan cache.
    assert!(metrics["plan_cache_hits"] >= 1, "{metrics:?}");
    assert!(metrics.contains_key("validity_cache_hits"));
    assert!(metrics.contains_key("policy_epoch"));
    assert!(metrics.contains_key("c3_probes"));
    // Churn-survival counters (PR-8): change totals and how the sweep
    // resolved cached entries.
    assert!(metrics.contains_key("policy_changes"));
    assert!(metrics.contains_key("full_invalidations"));
    assert!(metrics.contains_key("validity_cache_invalidated"));
    assert!(metrics.contains_key("validity_cache_revalidation_hits"));
    assert!(metrics.contains_key("validity_cache_revalidation_misses"));
    assert!(metrics.contains_key("plan_cache_invalidated"));
    server.finish().unwrap();
}

#[test]
fn graceful_drain_under_load_loses_no_acknowledged_commit() {
    // Clients hammer authorized inserts against a durable engine while
    // the main thread drains the server mid-load. Contract: every
    // insert a client saw acknowledged (Affected(1) on the wire) must
    // be present after recovery — acknowledgment happens only after the
    // WAL commit point, and finish() syncs before closing.
    let dir = tmp_dir("drain");
    let (mut engine, _) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    engine.admin_script(FIXTURE).unwrap();
    engine
        .grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
    let server = Server::start(
        SharedEngine::new(engine),
        ServerConfig {
            workers: 3,
            drain_deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let writers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut acked = Vec::new();
                let mut c = match Client::connect(addr, Duration::from_secs(5)) {
                    Ok(c) => c,
                    Err(_) => return acked,
                };
                if c.hello("11").is_err() {
                    return acked;
                }
                for i in 0..200u32 {
                    let course = format!("w{w}c{i}");
                    let sql = format!("insert into grades values ('11', '{course}', 50)");
                    match c.query(&sql) {
                        Ok(Response::Affected(1)) => acked.push(course),
                        // Drain reached us: unavailable/shed or a closed
                        // socket. Nothing further will be acknowledged.
                        Ok(_) | Err(_) => break,
                    }
                }
                acked
            })
        })
        .collect();

    // Let the load build, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.finish().unwrap();
    let acked: Vec<String> = writers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert!(!acked.is_empty(), "no insert was acknowledged before drain");

    // The WAL on disk is final: recovery must replay every acked commit
    // without touching a byte of the log (clean close = no torn tail,
    // no truncation rewrite).
    let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
    let (mut recovered, rec) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert_eq!(rec.truncated_tail_bytes, 0, "graceful close left a torn tail");
    let after = std::fs::read(dir.join("wal.log")).unwrap();
    assert_eq!(wal_bytes, after, "recovery rewrote a cleanly closed WAL");

    let r = recovered
        .execute(
            &fgac_core::Session::new("11"),
            "select course_id from grades where student_id = '11'",
        )
        .unwrap();
    let present: std::collections::HashSet<String> = r
        .rows()
        .unwrap()
        .rows
        .iter()
        .map(|row| match row.get(0) {
            fgac_types::Value::Str(s) => s.clone(),
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    for course in &acked {
        assert!(
            present.contains(course),
            "acknowledged insert '{course}' lost across drain ({} acked, report {:?})",
            acked.len(),
            report
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn requests_after_drain_are_unavailable_not_denied() {
    let engine = fixture_engine();
    let server = Server::start(engine.clone(), quick_config()).unwrap();
    let addr = server.local_addr();
    let mut c = connect(&server, "11");
    assert!(matches!(
        c.query("select grade from grades where student_id = '11'").unwrap(),
        Response::Rows { .. }
    ));
    server.finish().unwrap();

    // The engine behind the server is closed and every clone knows it.
    assert!(engine.is_closed());
    let err = engine
        .execute(
            &fgac_core::Session::new("11"),
            "select grade from grades where student_id = '11'",
        )
        .unwrap_err();
    assert!(
        matches!(err, fgac_types::Error::Unsupported(_)),
        "post-drain execute must be a clean closed-engine error: {err:?}"
    );
    // And the port no longer accepts work.
    assert!(
        Client::connect(addr, Duration::from_millis(500))
            .and_then(|mut c| c.hello("11"))
            .is_err(),
        "drained server still serving"
    );
}
