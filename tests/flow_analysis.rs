//! Whole-policy information-flow analysis (`fgac_analyze::flow`) end to
//! end: disclosure-lattice findings F001–F003 through the engine, the
//! F004 grant diff, the `ANALYZE FLOW` statement surface and its
//! session scoping, the incremental cache sweep, and the shipped policy
//! corpora (clean sets stay clean, defective sets report exactly their
//! seeded channels).

use fgac::analyze::{Code, Diagnostic, ProposedGrant, Severity};
use fgac::prelude::*;
use fgac::sql::GrantKind;
use std::path::PathBuf;

const SCHEMA: &str = "
create table students (
  student_id varchar not null,
  name varchar not null,
  type varchar not null,
  primary key (student_id));
create table registered (
  student_id varchar not null,
  course_id varchar not null,
  primary key (student_id, course_id));
create table grades (
  student_id varchar not null,
  course_id varchar not null,
  grade int,
  primary key (student_id, course_id));
";

fn engine_with(extra: &str) -> Engine {
    let mut e = Engine::new();
    e.admin_script(SCHEMA).expect("schema loads");
    e.admin_script(extra).expect("policy loads");
    e
}

fn codes(diags: &[Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn clean_policy_set_has_no_flow_findings() {
    // The paper's running example: row-scoped slices plus the
    // co-student join view. Every grant is keyed to $user_id, so no
    // recombination widens any principal's lattice.
    let e = engine_with(
        "
        create authorization view MyGrades as
          select * from grades where student_id = $user_id;
        create authorization view MyRegistrations as
          select * from registered where student_id = $user_id;
        create authorization view CoStudentGrades as
          select grades.* from grades, registered
          where registered.student_id = $user_id
            and grades.course_id = registered.course_id;
        grant view MyGrades to student;
        grant view MyRegistrations to student;
        grant view CoStudentGrades to student;
        grant role student to '11';
        ",
    );
    assert_eq!(e.analyze_flow(None), vec![]);
    assert_eq!(e.analyze_flow(Some("11")), vec![]);
}

#[test]
fn f001_key_joinable_slices_widen_disclosure() {
    // Each grant alone is a defensible vertical slice — and each is
    // P-clean (distinct projections, so neither subsumes the other).
    // But both project the key, so '11' joins them back together.
    let e = engine_with(
        "
        create authorization view Names as
          select student_id, name from students;
        create authorization view Types as
          select student_id, type from students;
        grant view Names to '11';
        grant view Types to '11';
        ",
    );
    assert_eq!(e.analyze_policy(Some("11")), vec![], "slices are P-clean");
    let d = e.analyze_flow(Some("11"));
    assert_eq!(codes(&d), vec![Code::TransitiveDisclosureWidening]);
    assert_eq!(d[0].principal, "11");
    assert_eq!(d[0].object, "students");
    assert!(
        d[0].message.contains("name") && d[0].message.contains("type"),
        "message names the recombined columns: {}",
        d[0].message
    );
}

#[test]
fn f002_visible_constraint_opens_inference_channel() {
    // '12' holds no view over `students` — but the granted inclusion
    // dependency says every registration's student_id appears there,
    // so the fully-disclosed feed leaks membership through it.
    let e = engine_with(
        "
        create inclusion dependency all_registered
          on registered (student_id) references students (student_id);
        create authorization view Feed as
          select * from registered;
        grant view Feed to '12';
        grant constraint all_registered to '12';
        ",
    );
    assert_eq!(e.analyze_policy(Some("12")), vec![], "grants are P-clean");
    let d = e.analyze_flow(Some("12"));
    assert_eq!(codes(&d), vec![Code::ConstraintInferenceChannel]);
    assert_eq!(d[0].severity, Severity::Error);
    assert_eq!(d[0].object, "all_registered");
}

#[test]
fn f003_probe_over_undisclosed_columns_is_flagged() {
    // CoStudentGrades probes `registered` on (student_id, course_id),
    // but the principal's only direct view of `registered` projects
    // just student_id — the probe answers questions about course_id
    // cells outside the lattice (the Section 5.4 channel), without
    // tripping the per-grant P005 fail-closed lint.
    let e = engine_with(
        "
        create authorization view CoStudentGrades as
          select grades.* from grades, registered
          where registered.student_id = $user_id
            and grades.course_id = registered.course_id;
        create authorization view MyGrades as
          select * from grades where student_id = $user_id;
        create authorization view WhoRegistered as
          select student_id from registered;
        grant view CoStudentGrades to '13';
        grant view MyGrades to '13';
        grant view WhoRegistered to '13';
        ",
    );
    let d = e.analyze_flow(Some("13"));
    assert_eq!(codes(&d), vec![Code::ProbeChannelExposure]);
    assert_eq!(d[0].severity, Severity::Warning);
    assert_eq!(d[0].object, "costudentgrades");
    assert!(d[0].message.contains("registered"), "{}", d[0].message);
}

#[test]
fn f004_diff_reports_the_grant_without_applying_it() {
    let e = engine_with(
        "
        create authorization view Names as
          select student_id, name from students;
        create authorization view Types as
          select student_id, type from students;
        grant view Names to '11';
        ",
    );
    assert_eq!(e.analyze_flow(None), vec![], "installed set is clean");

    let d = e.flow_diff_grant(&ProposedGrant {
        kind: GrantKind::View,
        object: Ident::new("types"),
        principal: "11".to_string(),
    });
    // Everything in a diff carries the F004 code; an introduced finding
    // keeps its own severity and names its code in the message, so the
    // gate (`fgac-analyze --diff-grant`) exits non-zero on it.
    assert_eq!(codes(&d), vec![Code::GrantFlowDiff, Code::GrantFlowDiff]);
    assert_eq!(d[0].severity, Severity::Error);
    assert!(
        d[0].message.contains("introduces F001"),
        "diff surfaces the finding the grant would introduce: {}",
        d[0].message
    );
    assert_eq!(d[1].severity, Severity::Warning);
    assert!(
        d[1].message.contains("newly discloses"),
        "diff reports the new cells: {}",
        d[1].message
    );
    // The diff is hypothetical: nothing was installed.
    assert_eq!(e.analyze_flow(None), vec![]);

    // A grant that only re-discloses already-reachable cells diffs to
    // nothing.
    let d = e.flow_diff_grant(&ProposedGrant {
        kind: GrantKind::View,
        object: Ident::new("names"),
        principal: "11".to_string(),
    });
    assert_eq!(d, vec![]);
}

#[test]
fn analyze_flow_statement_returns_rows() {
    let mut e = engine_with(
        "
        create authorization view Names as
          select student_id, name from students;
        create authorization view Types as
          select student_id, type from students;
        grant view Names to '11';
        grant view Types to '11';
        ",
    );
    let session = Session::new("11");
    let resp = e
        .execute(&session, "analyze flow for '11'")
        .expect("statement executes");
    let rows = resp.rows().expect("ANALYZE FLOW returns rows");
    assert_eq!(
        rows.names,
        vec![
            Ident::new("code"),
            Ident::new("severity"),
            Ident::new("principal"),
            Ident::new("object"),
            Ident::new("message"),
        ]
    );
    assert_eq!(rows.rows.len(), 1);
    assert_eq!(rows.rows[0].0[0], Value::from("F001"));
}

#[test]
fn analyze_flow_statement_is_scoped_to_the_session_principal() {
    let mut e = engine_with(
        "
        create authorization view Names as
          select student_id, name from students;
        create authorization view Types as
          select student_id, type from students;
        grant view Names to '21';
        grant view Types to '21';
        grant view Names to '22';
        ",
    );

    // FOR another principal: denied — a lattice is policy metadata
    // about someone else's reachable cells.
    let session = Session::new("22");
    let err = e
        .execute(&session, "analyze flow for '21'")
        .expect_err("cross-principal flow analysis is admin-only");
    assert!(
        matches!(err, Error::Unauthorized(_)),
        "expected Unauthorized, got {err:?}"
    );

    // The bare form means "my own lattice": 21's F001 must not leak
    // into 22's clean report.
    let resp = e.execute(&session, "analyze flow").expect("executes");
    assert_eq!(resp.rows().expect("rows").rows.len(), 0);

    let session = Session::new("21");
    let resp = e.execute(&session, "analyze flow").expect("executes");
    let rows = resp.rows().expect("rows");
    assert_eq!(rows.rows.len(), 1);
    assert_eq!(rows.rows[0].0[2], Value::from("21"));

    // The admin API still sees the whole set.
    assert_eq!(
        codes(&e.analyze_flow(None)),
        vec![Code::TransitiveDisclosureWidening]
    );
}

#[test]
fn whole_set_analysis_is_cached_and_swept_per_principal() {
    let mut e = engine_with(
        "
        create authorization view Names as
          select student_id, name from students;
        create authorization view MyGrades as
          select * from grades where student_id = $user_id;
        grant view Names to 'a';
        grant view MyGrades to 'b';
        ",
    );
    assert_eq!(e.analyze_flow(None), vec![]);
    assert_eq!(e.flow_cache_stats(), (2, 2), "both principals cached");

    // A grant to 'a' sweeps only 'a': 'b' stays cached at the new
    // epoch, and re-analysis recomputes the single affected lattice.
    e.admin_script(
        "
        create authorization view Types as
          select student_id, type from students;
        ",
    )
    .expect("view loads");
    e.grant_view("a", "types").expect("grant");
    assert_eq!(e.flow_cache_stats(), (1, 1), "only 'b' survives the sweep");

    let d = e.analyze_flow(None);
    assert_eq!(codes(&d), vec![Code::TransitiveDisclosureWidening]);
    assert_eq!(d[0].principal, "a");
    assert_eq!(e.flow_cache_stats(), (2, 2), "both cached again");

    // Re-running without any policy change is a pure cache hit.
    let again = e.analyze_flow(None);
    assert_eq!(d, again);
}

/// The shipped corpora behave as documented: clean sets are flow-clean,
/// defective sets report exactly their seeded channels — findings the
/// per-grant lints cannot see.
#[test]
fn policy_corpora_match_their_seeded_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/policies");
    let load = |name: &str| {
        let sql = std::fs::read_to_string(root.join(name)).expect("corpus readable");
        let mut e = Engine::new();
        e.admin_script(&sql).expect("corpus loads");
        e
    };

    for clean in ["university.sql", "bank.sql", "healthcare.sql"] {
        let e = load(clean);
        assert_eq!(e.analyze_flow(None), vec![], "{clean} must be flow-clean");
    }

    let d = load("defective-university.sql").analyze_flow(None);
    let flow: Vec<&Diagnostic> = d
        .iter()
        .filter(|d| {
            matches!(
                d.code,
                Code::TransitiveDisclosureWidening | Code::ConstraintInferenceChannel
            )
        })
        .collect();
    assert_eq!(flow.len(), 2, "seeded F001 + F002: {d:?}");
    assert!(flow.iter().any(|d| d.principal == "37"));
    assert!(flow.iter().any(|d| d.principal == "38"));

    let d = load("defective-healthcare.sql").analyze_flow(None);
    assert_eq!(
        codes(&d),
        vec![
            Code::TransitiveDisclosureWidening,
            Code::ConstraintInferenceChannel
        ],
        "every grant is P-clean, the leaks are compositional: {d:?}"
    );
    assert_eq!(
        load("defective-healthcare.sql").analyze_policy(None),
        vec![],
        "the healthcare leaks must be invisible to the per-grant lints"
    );
}
