//! Property-based soundness tests.
//!
//! * the implication prover never affirms a false implication (checked
//!   against brute-force evaluation over small domains);
//! * DAG expansion + extraction preserves query semantics on random
//!   plans and data;
//! * **validity soundness** (the paper's Theorems 5.1/5.2, empirically):
//!   a query accepted for a user must return identical results on any
//!   two database states that are PA-equivalent for that user's
//!   instantiated views (Definition 4.2) — i.e. accepted queries reveal
//!   nothing beyond the views.

use fgac::prelude::*;
use fgac_algebra::{implication::implies, CmpOp, Plan, ScalarExpr};
use fgac_exec::execute_plan;
use fgac_types::{multiset_eq, Column, DataType, Row, Schema};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// 1. Implication prover soundness.
// ---------------------------------------------------------------------

/// Atoms over 3 integer columns with constants in -2..=4.
fn atom() -> impl Strategy<Value = ScalarExpr> {
    let col = 0..3usize;
    let k = -2i64..=4;
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::NotEq),
        Just(CmpOp::Lt),
        Just(CmpOp::LtEq),
        Just(CmpOp::Gt),
        Just(CmpOp::GtEq),
    ];
    prop_oneof![
        (col.clone(), op.clone(), k).prop_map(|(c, o, v)| ScalarExpr::cmp(
            o,
            ScalarExpr::col(c),
            ScalarExpr::lit(v)
        )),
        (col.clone(), op, 0..3usize).prop_map(|(a, o, b)| ScalarExpr::cmp(
            o,
            ScalarExpr::col(a),
            ScalarExpr::col(b)
        )),
        col.prop_map(|c| ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::col(c)),
            negated: false,
        }),
    ]
}

fn conjunction() -> impl Strategy<Value = Vec<ScalarExpr>> {
    proptest::collection::vec(atom(), 1..4)
}

/// Evaluates the conjunction on a row under SQL semantics: true iff all
/// conjuncts evaluate to TRUE.
fn holds(conjuncts: &[ScalarExpr], row: &Row) -> bool {
    conjuncts
        .iter()
        .all(|c| fgac_exec::eval_predicate(c, row).unwrap_or(false))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// If `implies(P, Q)` then on every valuation where P holds, Q holds.
    #[test]
    fn implication_prover_is_sound(p in conjunction(), q in conjunction()) {
        if implies(&p, &q, 3) {
            // Domain: -3..=5 plus NULL for each of the 3 columns.
            let domain: Vec<fgac_types::Value> = (-3i64..=5)
                .map(fgac_types::Value::Int)
                .chain(std::iter::once(fgac_types::Value::Null))
                .collect();
            for a in &domain {
                for b in &domain {
                    for c in &domain {
                        let row = Row(vec![a.clone(), b.clone(), c.clone()]);
                        if holds(&p, &row) {
                            prop_assert!(
                                holds(&q, &row),
                                "P={p:?} holds but Q={q:?} fails on {row}"
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. DAG expansion preserves semantics.
// ---------------------------------------------------------------------

fn small_db(rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> fgac::storage::Database {
    let mut db = fgac::storage::Database::new();
    let schema = || {
        Schema::new(vec![
            Column::new("x", DataType::Int).nullable(),
            Column::new("y", DataType::Int).nullable(),
        ])
    };
    db.create_table("ta", schema(), None).unwrap();
    db.create_table("tb", schema(), None).unwrap();
    for &(x, y) in rows_a {
        db.insert(&"ta".into(), Row(vec![x.into(), y.into()])).unwrap();
    }
    for &(x, y) in rows_b {
        db.insert(&"tb".into(), Row(vec![x.into(), y.into()])).unwrap();
    }
    db
}

/// Random SPJ plans over ta ⋈ tb.
fn random_plan() -> impl Strategy<Value = Plan> {
    let schema = Schema::new(vec![
        Column::new("x", DataType::Int).nullable(),
        Column::new("y", DataType::Int).nullable(),
    ]);
    (
        proptest::collection::vec((0..4usize, -2i64..=2), 0..3),
        proptest::option::of((0..2usize, 2..4usize)),
        proptest::collection::vec(0..4usize, 1..4),
        proptest::bool::ANY,
    )
        .prop_map(move |(filters, join_on, proj, distinct)| {
            let a = Plan::scan("ta", schema.clone());
            let b = Plan::scan("tb", schema.clone());
            let join_conj = join_on
                .map(|(l, r)| {
                    vec![ScalarExpr::eq(ScalarExpr::col(l), ScalarExpr::col(r))]
                })
                .unwrap_or_default();
            let mut plan = a.join(b, join_conj);
            let selection: Vec<ScalarExpr> = filters
                .into_iter()
                .map(|(c, k)| {
                    ScalarExpr::cmp(CmpOp::GtEq, ScalarExpr::col(c), ScalarExpr::lit(k))
                })
                .collect();
            if !selection.is_empty() {
                plan = plan.select(selection);
            }
            plan = plan.project(proj.into_iter().map(ScalarExpr::Col).collect());
            if distinct {
                plan = plan.distinct();
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every plan the optimizer picks computes the same multiset as the
    /// original plan.
    #[test]
    fn expansion_preserves_semantics(
        plan in random_plan(),
        rows_a in proptest::collection::vec((-2i64..=2, -2i64..=2), 0..6),
        rows_b in proptest::collection::vec((-2i64..=2, -2i64..=2), 0..6),
    ) {
        let db = small_db(&rows_a, &rows_b);
        let expected = execute_plan(&db, &plan).unwrap();

        let mut dag = fgac::optimizer::Dag::new();
        let root = dag.insert_plan(&plan);
        fgac::optimizer::expand(&mut dag, &fgac::optimizer::ExpandOptions::default());

        // Cheapest plan.
        let model = fgac::optimizer::CostModel::new(
            fgac::optimizer::TableStats::from_database(&db),
        );
        let (best, _) = fgac::optimizer::extract_best(&dag, root, &model).unwrap();
        let got = execute_plan(&db, &best).unwrap();
        prop_assert!(
            multiset_eq(&expected, &got),
            "best plan diverges\noriginal:\n{plan}\nbest:\n{best}"
        );

        // Smallest plan.
        let any = fgac::optimizer::extract_any(&dag, root).unwrap();
        let got = execute_plan(&db, &any).unwrap();
        prop_assert!(multiset_eq(&expected, &got), "min plan diverges");
    }
}

// ---------------------------------------------------------------------
// 3. Validity soundness via PA-equivalence.
// ---------------------------------------------------------------------

/// Schema: grades(student_id, course_id, grade). View granted to user
/// "11": MyGrades. A mutation of rows outside the view keeps the states
/// PA-equivalent for that user, so any accepted query must answer
/// identically on both states.
fn grades_engine(rows: &[(String, String, i64)]) -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "create table grades (student_id varchar not null, \
         course_id varchar not null, grade int);
         create authorization view MyGrades as \
           select * from grades where student_id = $user_id;
         create authorization view AvgGrades as \
           select course_id, avg(grade) from grades group by course_id;",
    )
    .unwrap();
    let rows: Vec<Row> = rows
        .iter()
        .map(|(s, c, g)| Row(vec![s.clone().into(), c.clone().into(), (*g).into()]))
        .collect();
    e.admin_load(&"grades".into(), rows).unwrap();
    e.grant_view("11", "mygrades").unwrap();
    e
}

/// A small grammar of candidate queries, some valid some not.
fn candidate_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("select * from grades where student_id = '11'".to_string()),
        Just("select grade from grades where student_id = '11'".to_string()),
        Just("select avg(grade) from grades where student_id = '11'".to_string()),
        Just("select * from grades".to_string()),
        Just("select avg(grade) from grades".to_string()),
        Just("select * from grades where student_id = '12'".to_string()),
        Just("select count(*) from grades where student_id = '11' and grade > 50".to_string()),
        Just("select distinct course_id from grades where student_id = '11'".to_string()),
        Just("select grade from grades where student_id = '11' and course_id = 'c1'".to_string()),
        Just("select max(grade) from grades where student_id = '12'".to_string()),
    ]
}

fn grade_rows() -> impl Strategy<Value = Vec<(String, String, i64)>> {
    proptest::collection::vec(
        (
            prop_oneof![Just("11".to_string()), Just("12".to_string()), Just("13".to_string())],
            prop_oneof![Just("c1".to_string()), Just("c2".to_string())],
            0i64..100,
        ),
        0..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accepted (unconditionally valid) queries are invariant across
    /// PA-equivalent states: mutating invisible rows must not change the
    /// answer. A leaky checker (e.g. one accepting `select * from
    /// grades`) fails this property immediately.
    #[test]
    fn accepted_queries_reveal_only_view_contents(
        rows in grade_rows(),
        sql in candidate_query(),
        mutation_grade in 0i64..100,
    ) {
        let mut e1 = grades_engine(&rows);
        let session = Session::new("11");
        let report = e1.check(&session, &sql).unwrap();
        prop_assume!(report.verdict == Verdict::Unconditional);

        let out1 = e1.execute(&session, &sql).unwrap();

        // Mutate every row NOT visible through MyGrades(user=11): change
        // other students' grades. The instantiated view results are
        // untouched -> states are PA-equivalent for user 11.
        let mut mutated = rows.clone();
        let mut any_mutation = false;
        for r in &mut mutated {
            if r.0 != "11" {
                r.2 = mutation_grade;
                any_mutation = true;
            }
        }
        // Also add an entirely new invisible row.
        mutated.push(("99".to_string(), "c1".to_string(), mutation_grade));
        let _ = any_mutation;

        let mut e2 = grades_engine(&mutated);
        let out2 = e2.execute(&session, &sql).unwrap();
        prop_assert_eq!(
            out1.rows().unwrap().rows.clone(),
            out2.rows().unwrap().rows.clone(),
            "query `{}` leaked information about invisible rows", sql
        );
    }

    /// The Truman baseline (predicate append) always returns a subset of
    /// the unrestricted answer for monotone (non-aggregate) queries.
    #[test]
    fn truman_filtered_answers_are_subsets(rows in grade_rows()) {
        let e = grades_engine(&rows);
        let session = Session::new("11");
        let policy = TrumanPolicy::new()
            .append_predicate("grades", "student_id = $user_id")
            .unwrap();
        let q = "select student_id, grade from grades";
        let truman = e.truman_execute(&policy, &session, q).unwrap();
        let full = fgac::exec::run_query_sql(e.database(), q, session.params()).unwrap();
        for row in &truman.rows {
            prop_assert!(full.rows.contains(row));
        }
    }
}
