//! Fault-injection harness for the engine boundary.
//!
//! Exercises the robustness contract end to end: injected errors and
//! panics mid-DML must leave tables byte-identical to their
//! pre-statement state and the engine usable afterwards, and a starved
//! validity-check budget must produce a `ResourceExhausted`-backed DENY
//! — never an ALLOW.
//!
//! The whole file is gated on the `fault-injection` feature, which the
//! root crate's self dev-dependency enables for test builds only.
#![cfg(feature = "fault-injection")]

use fgac::prelude::*;
use fgac::types::faults::{self, Fault};
use fgac::types::Budget;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));
        create authorization view MyGrades as
            select * from grades where student_id = $user_id;
        insert into grades values
            ('11', 'cs101', 90), ('12', 'cs101', 70), ('13', 'cs202', 60);
        ",
    )
    .unwrap();
    e.grant_view("11", "mygrades").unwrap();
    e
}

fn grades(e: &Engine) -> Vec<Row> {
    e.database().table(&"grades".into()).unwrap().rows().to_vec()
}

/// Disarms all faults when dropped, so a failed assertion in one test
/// cannot leave a fault armed for code that runs during unwinding.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

/// Runs `f` with the default panic hook replaced by a silent one, so
/// intentionally injected panics don't spray backtraces over the test
/// output.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn injected_error_mid_update_leaves_table_unchanged() {
    let _guard = Disarm;
    let mut e = engine();
    e.grant_update_sql("11", "authorize update on grades where grade >= 0")
        .unwrap();
    let s = Session::new("11");
    let before = grades(&e);
    let v0 = e.data_version();

    // The UPDATE matches all three rows; the injected fault fires while
    // processing the second.
    faults::arm("exec::update_row", Fault::ErrorOnNth(2));
    let err = e
        .execute(&s, "update grades set grade = grade + 1")
        .unwrap_err();
    assert!(matches!(err, Error::Internal(_)), "got {err:?}");
    faults::disarm_all();

    assert_eq!(grades(&e), before, "table must be byte-identical");
    assert_eq!(e.data_version(), v0, "failed DML must not bump the version");

    // The engine remains fully usable.
    let r = e
        .execute(&s, "select grade from grades where student_id = '11'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows[0].get(0), &Value::Int(90));
}

#[test]
fn injected_panic_mid_insert_rolls_back_and_engine_survives() {
    let _guard = Disarm;
    let mut e = engine();
    e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    let before = grades(&e);
    let v0 = e.data_version();

    // Three authorized rows; the storage layer panics inserting the
    // second, after the first has already landed. The engine's
    // pre-statement snapshot must undo the stranded first row.
    faults::arm("storage::insert", Fault::PanicOnNth(2));
    let err = with_quiet_panics(|| {
        e.execute(
            &s,
            "insert into grades values ('11', 'cs404', 50), ('11', 'cs405', 51), ('11', 'cs406', 52)",
        )
    })
    .unwrap_err();
    assert!(matches!(err, Error::Internal(_)), "got {err:?}");
    faults::disarm_all();

    assert_eq!(grades(&e), before, "partial insert must be rolled back");
    assert_eq!(e.data_version(), v0);

    // Engine still answers queries and accepts the same DML afterwards.
    let n = e
        .execute(&s, "insert into grades values ('11', 'cs404', 50)")
        .unwrap();
    assert_eq!(n.affected(), Some(1));
}

#[test]
fn injected_panic_during_query_eval_is_isolated() {
    let _guard = Disarm;
    let mut e = engine();
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";

    faults::arm("exec::eval", Fault::PanicOnNth(1));
    let err = with_quiet_panics(|| e.execute(&s, q)).unwrap_err();
    assert!(matches!(err, Error::Internal(_)), "got {err:?}");
    faults::disarm_all();

    // The panic did not poison the engine: the same query now runs.
    let r = e.execute(&s, q).unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn starved_budget_denies_and_never_allows() {
    // The query is accepted under the default budget...
    let mut accepting = engine();
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";
    assert!(accepting.execute(&s, q).is_ok());

    // ...and under starvation it must deny with ResourceExhausted; an
    // Ok here would be a wrong ALLOW, the one outcome the fail-closed
    // contract forbids.
    let mut starved = engine().with_check_options(CheckOptions {
        budget: Budget::with_max_steps(2),
        ..CheckOptions::default()
    });
    let report = starved.check(&s, q).unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
    assert!(report.exhausted.is_some());
    match starved.execute(&s, q) {
        Err(Error::ResourceExhausted(_)) => {}
        other => panic!("expected ResourceExhausted deny, got {other:?}"),
    }
}

#[test]
fn every_budget_level_accepts_correctly_or_denies_exhausted() {
    // Sweep the step budget across the exhaustion boundary. At every
    // level the outcome must be either the correct answer or a
    // ResourceExhausted deny — a partial check may never surface as an
    // ALLOW, and it may never misreport plain "unauthorized" either.
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";
    let mut denied = 0;
    let mut accepted = 0;
    for n in 1..=32 {
        let mut e = engine().with_check_options(CheckOptions {
            budget: Budget::with_max_steps(n),
            ..CheckOptions::default()
        });
        match e.execute(&s, q) {
            Ok(r) => {
                accepted += 1;
                assert_eq!(r.rows().unwrap().rows.len(), 1);
            }
            Err(Error::ResourceExhausted(_)) => denied += 1,
            Err(other) => panic!("budget {n}: unexpected error {other:?}"),
        }
    }
    assert!(denied > 0, "sweep never crossed the exhaustion boundary");
    assert!(accepted > 0, "sweep never reached an accepting budget");
}

#[test]
fn disarmed_faults_are_invisible() {
    // With nothing armed, instrumented builds behave exactly like
    // normal ones: the full authorized DML round-trip succeeds.
    let _guard = Disarm;
    faults::disarm_all();
    let mut e = engine();
    e.grant_update_sql("11", "authorize update on grades where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    let n = e
        .execute(&s, "update grades set grade = 95 where student_id = '11'")
        .unwrap();
    assert_eq!(n.affected(), Some(1));
    let r = e
        .execute(&s, "select grade from grades where student_id = '11'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows[0].get(0), &Value::Int(95));
}

// ---------------------------------------------------------------------------
// Per-request wall-clock deadlines (threaded into the same Budget meter
// as the step fuel; see Engine::execute_at).
// ---------------------------------------------------------------------------

#[test]
fn expired_deadline_denies_before_touching_any_cache() {
    use std::time::{Duration, Instant};
    let mut e = engine();
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";

    let validity_before = e.cache().stats();
    let plan_before = e.plan_cache().stats();
    let past = Instant::now() - Duration::from_millis(10);
    match e.execute_at(&s, q, Some(past)) {
        Err(Error::ResourceExhausted(m)) => {
            assert!(m.starts_with("deadline"), "deadline deny must be marked: {m}");
        }
        other => panic!("expected deadline ResourceExhausted, got {other:?}"),
    }
    assert_eq!(
        e.cache().stats(),
        validity_before,
        "an expired deadline must not read or write the validity cache"
    );
    assert_eq!(
        e.plan_cache().stats(),
        plan_before,
        "an expired deadline must not read or write the plan cache"
    );

    // Nothing was poisoned: the identical query with a generous deadline
    // is admitted and answers correctly.
    let r = e
        .execute_at(&s, q, Some(Instant::now() + Duration::from_secs(5)))
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn expired_deadline_denies_even_a_cache_hot_query() {
    use std::time::{Duration, Instant};
    let mut e = engine();
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";

    // Warm every layer: the verdict and plan are now cached.
    e.execute(&s, q).unwrap();
    e.execute(&s, q).unwrap();

    // The deadline gate sits in front of the caches, so a hot verdict
    // cannot leak past an exhausted allowance (fail-closed even on the
    // fast path).
    let past = Instant::now() - Duration::from_millis(1);
    match e.execute_at(&s, q, Some(past)) {
        Err(Error::ResourceExhausted(m)) => assert!(m.starts_with("deadline"), "{m}"),
        other => panic!("expected deadline deny on the hot path, got {other:?}"),
    }
    // And the cache still serves the next in-budget request.
    assert!(e.execute(&s, q).is_ok());
}

#[test]
fn deadline_and_fuel_exhaustion_are_distinguishable() {
    use std::time::{Duration, Instant};
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";

    // Fuel exhaustion: same error variant, no deadline marker — a
    // client (or the network front end) can tell "retry later" from
    // "this query is too expensive at this budget".
    let mut starved = engine().with_check_options(CheckOptions {
        budget: Budget::with_max_steps(2),
        ..CheckOptions::default()
    });
    let fuel_msg = match starved.execute(&s, q) {
        Err(Error::ResourceExhausted(m)) => m,
        other => panic!("expected fuel ResourceExhausted, got {other:?}"),
    };
    assert!(
        !fuel_msg.starts_with("deadline"),
        "fuel exhaustion must not carry the deadline marker: {fuel_msg}"
    );

    let mut e = engine();
    let deadline_msg = match e.execute_at(&s, q, Some(Instant::now() - Duration::from_millis(1))) {
        Err(Error::ResourceExhausted(m)) => m,
        other => panic!("expected deadline ResourceExhausted, got {other:?}"),
    };
    assert!(deadline_msg.starts_with("deadline"), "{deadline_msg}");
    assert_ne!(fuel_msg, deadline_msg);
}

#[test]
fn deadline_expiry_is_never_a_wrong_allow_or_plain_deny() {
    use std::time::{Duration, Instant};
    // Sweep deadlines from already-expired through comfortable. At every
    // point the outcome must be the correct answer or a deadline-marked
    // ResourceExhausted — never a plain Unauthorized (which would claim
    // an authorization verdict that was never computed) and never a
    // wrong ALLOW for a revoked principal.
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";
    for micros in [0u64, 1, 10, 100, 10_000, 1_000_000] {
        let mut e = engine();
        let at = Instant::now() + Duration::from_micros(micros);
        match e.execute_at(&s, q, Some(at)) {
            Ok(r) => assert_eq!(r.rows().unwrap().rows.len(), 1),
            Err(Error::ResourceExhausted(m)) => {
                assert!(m.starts_with("deadline") || m.contains("deadline"), "{m}")
            }
            Err(other) => panic!("deadline {micros}us: unexpected {other:?}"),
        }
        // A revoked principal is denied regardless of deadline pressure.
        let mut revoked = engine();
        revoked.revoke_view("11", "mygrades").unwrap();
        match revoked.execute_at(&s, q, Some(Instant::now() + Duration::from_micros(micros))) {
            Ok(_) => panic!("deadline pressure produced a wrong ALLOW"),
            Err(Error::Unauthorized(_)) | Err(Error::ResourceExhausted(_)) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
}
