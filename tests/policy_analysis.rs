//! Grant-time policy analysis (`crates/analyze`) end to end: every
//! diagnostic code on the paper's university running example, the
//! fail-open budget path, the JSON wire form, and the `ANALYZE POLICY`
//! statement surface.

use fgac::analyze::{
    diagnostics_from_json, diagnostics_to_json, AnalyzeOptions, Code, Diagnostic, Severity,
};
use fgac::prelude::*;
use fgac::types::Budget;

const SCHEMA: &str = "
create table students (
  student_id varchar not null,
  name varchar not null,
  type varchar not null,
  primary key (student_id));
create table registered (
  student_id varchar not null,
  course_id varchar not null,
  primary key (student_id, course_id));
create table grades (
  student_id varchar not null,
  course_id varchar not null,
  grade int,
  primary key (student_id, course_id));
";

fn engine_with(extra: &str) -> Engine {
    let mut e = Engine::new();
    e.admin_script(SCHEMA).expect("schema loads");
    e.admin_script(extra).expect("policy loads");
    e
}

fn codes(diags: &[Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn clean_policy_set_yields_zero_diagnostics() {
    let e = engine_with(
        "
        create authorization view MyGrades as
          select * from grades where student_id = $user_id;
        create authorization view MyRegistrations as
          select * from registered where student_id = $user_id;
        create authorization view CoStudentGrades as
          select grades.* from grades, registered
          where registered.student_id = $user_id
            and grades.course_id = registered.course_id;
        grant view MyGrades to student;
        grant view MyRegistrations to student;
        grant view CoStudentGrades to student;
        grant role student to '11';
        ",
    );
    assert_eq!(e.analyze_policy(None), vec![]);
    assert_eq!(e.analyze_policy(Some("11")), vec![]);
}

#[test]
fn p001_unsatisfiable_view_predicate() {
    let e = engine_with(
        "
        create authorization view Dead as
          select * from grades where student_id = '11' and student_id = '12';
        grant view Dead to '11';
        ",
    );
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::UnsatisfiableViewPredicate]);
    assert_eq!(d[0].severity, Severity::Error);
    assert_eq!(d[0].object, "dead");
}

#[test]
fn p002_subsumed_grant_is_redundant() {
    let e = engine_with(
        "
        create authorization view MyGrades as
          select * from grades where student_id = $user_id;
        create authorization view MyGoodGrades as
          select * from grades where student_id = $user_id and grade >= 60;
        grant view MyGrades to '11';
        grant view MyGoodGrades to '11';
        ",
    );
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::RedundantGrant]);
    assert_eq!(d[0].severity, Severity::Warning);
    // The *narrower* grant is the redundant one.
    assert_eq!(d[0].object, "mygoodgrades");
    assert!(d[0].message.contains("mygrades"));
}

#[test]
fn p002_reports_only_one_of_an_equivalent_pair() {
    let e = engine_with(
        "
        create authorization view A as
          select * from grades where student_id = $user_id;
        create authorization view B as
          select * from grades where student_id = $user_id;
        grant view A to '11';
        grant view B to '11';
        ",
    );
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::RedundantGrant]);
}

#[test]
fn p003_revocation_shadowed_by_role_grant() {
    let mut e = engine_with(
        "
        create authorization view MyGrades as
          select * from grades where student_id = $user_id;
        grant view MyGrades to student;
        grant view MyGrades to '11';
        grant role student to '11';
        ",
    );
    // Revoking the direct grant looks like it cuts access, but the role
    // still supplies the view.
    e.revoke_view("11", "mygrades").expect("revoke succeeds");
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::ShadowedByRevocation]);
    assert_eq!(d[0].severity, Severity::Error);
    assert!(d[0].message.contains("student"), "{}", d[0].message);
    // Revoking from the role as well resolves the finding.
    e.revoke_view("student", "mygrades").expect("revoke succeeds");
    assert_eq!(e.analyze_policy(Some("11")), vec![]);
}

#[test]
fn p004_missing_nonauthorization_and_unbound_views() {
    let mut e = engine_with(
        "
        create view Plain as select * from grades;
        create authorization view Orphan as
          select * from enrolments where student_id = $user_id;
        grant view Plain to '11';
        grant view Orphan to '11';
        ",
    );
    e.grant_view("11", "ghost").expect("grant of unknown view");
    let d = e.analyze_policy(Some("11"));
    assert_eq!(
        codes(&d),
        vec![Code::UnusableView, Code::UnusableView, Code::UnusableView]
    );
    assert!(d.iter().all(|d| d.severity == Severity::Error));
    let objects: Vec<&str> = d.iter().map(|d| d.object.as_str()).collect();
    assert_eq!(objects, vec!["ghost", "orphan", "plain"]);
}

#[test]
fn p005_leaky_conditional_check() {
    let e = engine_with(
        "
        create authorization view CoStudentGrades as
          select grades.* from grades, registered
          where registered.student_id = $user_id
            and grades.course_id = registered.course_id;
        create authorization view MyGrades as
          select * from grades where student_id = $user_id;
        grant view CoStudentGrades to '11';
        grant view MyGrades to '11';
        ",
    );
    // `grades` is covered by MyGrades, `registered` by nothing: the C3
    // remainder probe over `registered` is the Section 5.4 leak.
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::LeakyConditionalCheck]);
    assert_eq!(d[0].severity, Severity::Error);
    assert!(d[0].message.contains("registered"), "{}", d[0].message);
}

#[test]
fn p006_unconstrained_parameters() {
    let e = engine_with(
        "
        create authorization view Untethered as
          select student_id, $semester from students;
        grant view Untethered to '11';
        ",
    );
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::UnboundParameter]);
    assert_eq!(d[0].severity, Severity::Warning);
    assert!(d[0].message.contains("$semester"), "{}", d[0].message);

    // A comparison (not just equality) constrains a session parameter…
    let ok = engine_with(
        "
        create authorization view Curve as
          select * from grades where grade > $floor;
        grant view Curve to '11';
        ",
    );
    assert_eq!(ok.analyze_policy(Some("11")), vec![]);

    // …but an access-pattern parameter needs an equality with a column,
    // or constant instantiation can never pin it.
    let ap = engine_with(
        "
        create authorization view Loose as
          select * from grades where grade > $$1;
        grant view Loose to '11';
        ",
    );
    let d = ap.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::UnboundParameter]);
}

#[test]
fn w001_cross_view_contradiction() {
    let e = engine_with(
        "
        create authorization view FullTimers as
          select * from students where type = 'FullTime';
        create authorization view PartTimers as
          select * from students where type = 'PartTime';
        grant view FullTimers to '11';
        grant view PartTimers to '11';
        ",
    );
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::CrossViewContradiction]);
    assert_eq!(d[0].severity, Severity::Warning);
}

#[test]
fn analysis_is_per_principal_and_sorted() {
    let e = engine_with(
        "
        create authorization view Dead as
          select * from grades where student_id = '1' and student_id = '2';
        create authorization view Untethered as
          select student_id, $x from students;
        grant view Dead to '21';
        grant view Untethered to '22';
        ",
    );
    // Errors sort before warnings in the full report.
    let all = e.analyze_policy(None);
    assert_eq!(
        codes(&all),
        vec![Code::UnsatisfiableViewPredicate, Code::UnboundParameter]
    );
    // A principal filter sees only its own findings.
    assert_eq!(codes(&e.analyze_policy(Some("22"))), vec![Code::UnboundParameter]);
}

#[test]
fn budget_exhaustion_fails_open_to_unknown() {
    let mut e = Engine::new().with_check_options(CheckOptions {
        budget: Budget::with_max_steps(1),
        ..CheckOptions::default()
    });
    e.admin_script(SCHEMA).expect("schema loads");
    e.admin_script(
        "
        create authorization view Dead as
          select * from grades where student_id = '11' and student_id = '12';
        grant view Dead to '11';
        ",
    )
    .expect("policy loads");
    let d = e.analyze_policy(Some("11"));
    assert!(!d.is_empty(), "exhaustion must surface, not vanish");
    assert!(
        d.iter().all(|d| d.severity == Severity::Unknown),
        "exhausted analysis degrades to unknown: {d:?}"
    );
}

#[test]
fn json_round_trips() {
    let e = engine_with(
        "
        create authorization view Dead as
          select * from grades where student_id = '11' and student_id = '12';
        grant view Dead to '11';
        ",
    );
    let d = e.analyze_policy(None);
    let json = diagnostics_to_json(&d);
    let back = diagnostics_from_json(&json).expect("wire form parses");
    assert_eq!(d, back);
}

#[test]
fn analyze_policy_statement_returns_rows() {
    let mut e = engine_with(
        "
        create authorization view Dead as
          select * from grades where student_id = '11' and student_id = '12';
        grant view Dead to '11';
        ",
    );
    let session = Session::new("11");
    let resp = e
        .execute(&session, "analyze policy for '11'")
        .expect("statement executes");
    let rows = resp.rows().expect("ANALYZE POLICY returns rows");
    assert_eq!(
        rows.names,
        vec![
            Ident::new("code"),
            Ident::new("severity"),
            Ident::new("principal"),
            Ident::new("object"),
            Ident::new("message"),
        ]
    );
    assert_eq!(rows.rows.len(), 1);
    assert_eq!(rows.rows[0].0[0], Value::from("P001"));

    // Unfiltered form works too and sees the same finding.
    let resp = e.execute(&session, "analyze policy").expect("executes");
    assert_eq!(resp.rows().expect("rows").rows.len(), 1);
}

#[test]
fn analyze_policy_statement_is_scoped_to_the_session_principal() {
    let mut e = engine_with(
        "
        create authorization view Dead as
          select * from grades where student_id = '11' and student_id = '12';
        create authorization view Untethered as
          select student_id, $x from students;
        grant view Dead to '11';
        grant view Untethered to '22';
        ",
    );

    // FOR another principal: denied — the analyzer's output is policy
    // metadata (grants, roles, revocations) the session must not see.
    let session = Session::new("11");
    let err = e
        .execute(&session, "analyze policy for '22'")
        .expect_err("cross-principal analysis is admin-only");
    assert!(
        matches!(err, Error::Unauthorized(_)),
        "expected Unauthorized, got {err:?}"
    );

    // Unfiltered ANALYZE POLICY means "my own grants", never the whole
    // policy set: 22's P006 finding must not appear.
    let resp = e.execute(&session, "analyze policy").expect("executes");
    let rows = resp.rows().expect("rows");
    assert_eq!(rows.rows.len(), 1);
    assert_eq!(rows.rows[0].0[0], Value::from("P001"));
    assert_eq!(rows.rows[0].0[2], Value::from("11"));

    // The admin API still sees everything.
    assert_eq!(
        codes(&e.analyze_policy(None)),
        vec![Code::UnsatisfiableViewPredicate, Code::UnboundParameter]
    );
}

#[test]
fn role_view_defects_reported_once_not_per_member() {
    let e = engine_with(
        "
        create authorization view Dead as
          select * from grades where student_id = '11' and student_id = '12';
        grant view Dead to student;
        grant role student to '11';
        grant role student to '12';
        ",
    );
    // Whole-set analysis: the defect belongs to the role's grant entry
    // and is reported exactly once, not re-derived for every member.
    let all = e.analyze_policy(None);
    assert_eq!(codes(&all), vec![Code::UnsatisfiableViewPredicate]);
    assert_eq!(all[0].principal, "student");

    // A member-scoped analysis still surfaces it (the role is not being
    // analyzed separately in that run).
    let d = e.analyze_policy(Some("11"));
    assert_eq!(codes(&d), vec![Code::UnsatisfiableViewPredicate]);
    assert_eq!(d[0].principal, "11");
}

#[test]
fn dangling_constraint_grant_is_flagged() {
    let e = engine_with(
        "
        create inclusion dependency ft_registered
          on students (student_id) where type = 'FullTime'
          references registered (student_id);
        grant constraint ft_registered to '11';
        grant constraint no_such_constraint to '22';
        ",
    );
    // '22' holds only a constraint grant, and it names nothing in the
    // catalog: the whole-set analysis must still enumerate and flag it.
    let all = e.analyze_policy(None);
    assert_eq!(codes(&all), vec![Code::UnusableView]);
    assert_eq!(all[0].principal, "22");
    assert_eq!(all[0].object, "no_such_constraint");
    assert_eq!(all[0].severity, Severity::Error);

    // The existing grant is clean, per principal and overall.
    assert_eq!(e.analyze_policy(Some("11")), vec![]);
    assert_eq!(codes(&e.analyze_policy(Some("22"))), vec![Code::UnusableView]);
}

#[test]
fn analyze_query_flags_standalone_queries() {
    let e = engine_with("");
    let opts = AnalyzeOptions::default();
    let cat = e.database().catalog();

    let d = fgac::analyze::analyze_query(
        cat,
        "select * from grades where grade = 1 and grade = 2",
        &opts,
    );
    assert_eq!(codes(&d), vec![Code::UnsatisfiableViewPredicate]);

    let d = fgac::analyze::analyze_query(cat, "select * from nowhere", &opts);
    assert_eq!(codes(&d), vec![Code::UnusableView]);

    let d = fgac::analyze::analyze_query(cat, "select ] from", &opts);
    assert_eq!(codes(&d), vec![Code::UnusableView]);

    assert_eq!(
        fgac::analyze::analyze_query(cat, "select * from grades where grade > 50", &opts),
        vec![]
    );
}
