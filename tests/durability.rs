//! Durability and recovery: `Engine::open` must reproduce exactly the
//! committed state of the engine that wrote the directory — tables,
//! catalog, grants, and validator verdicts — and must fail closed when
//! the durable policy state is damaged.

use fgac::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "fgac-durability-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const SCHEMA: &str = "
    create table students (student_id varchar not null, name varchar not null,
        type varchar not null, primary key (student_id));
    create table grades (student_id varchar not null, course_id varchar not null,
        grade int, primary key (student_id, course_id));
    create authorization view MyGrades as
        select * from grades where student_id = $user_id;
    insert into students values ('11', 'ann', 'FullTime'), ('12', 'bob', 'PartTime');
    insert into grades values ('11', 'cs101', 90), ('12', 'cs101', 70);
";

/// Sets up the university-style fixture on any engine (durable or not).
fn populate(e: &mut Engine) {
    e.admin_script(SCHEMA).unwrap();
    e.grant_view("11", "mygrades").unwrap();
    e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
}

fn my_grade_query(e: &mut Engine, user: &str) -> fgac::types::Result<EngineResponse> {
    let s = Session::new(user);
    e.execute(
        &s,
        &format!("select grade from grades where student_id = '{user}'"),
    )
}

#[test]
fn reopen_after_close_restores_identical_state() {
    let dir = tmp_dir("roundtrip");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    let s = Session::new("11");
    e.execute(&s, "insert into grades values ('11', 'cs202', 85)")
        .unwrap();
    let fp = e.state_fingerprint();
    let version = e.data_version();
    e.close().unwrap();

    let (mut back, report) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert_eq!(report.truncated_tail_bytes, 0, "clean shutdown, no repair");
    assert!(report.records_replayed > 0);
    assert_eq!(back.state_fingerprint(), fp, "recovered state differs");
    assert_eq!(back.data_version(), version);
    // The recovered engine serves the same verdicts and rows.
    let r = my_grade_query(&mut back, "11").unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 2);
    assert!(my_grade_query(&mut back, "11").is_ok());
    assert!(back
        .execute(&Session::new("11"), "select grade from grades")
        .is_err());
}

#[test]
fn recovered_state_matches_in_memory_engine() {
    // The same op sequence applied to a plain in-memory engine and a
    // durable one (through a crash) must yield identical fingerprints —
    // including the data version, which conditions cached verdicts.
    let dir = tmp_dir("parity");
    let mut durable = Engine::open(&dir).unwrap();
    let mut shadow = Engine::new();
    for e in [&mut durable, &mut shadow] {
        populate(e);
        let s = Session::new("11");
        e.execute(&s, "insert into grades values ('11', 'cs303', 77)")
            .unwrap();
        e.revoke_view("11", "mygrades").unwrap();
        e.grant_view("11", "mygrades").unwrap();
        e.add_role("11", "student").unwrap();
    }
    drop(durable); // crash: no close(), no sync()
    let recovered = Engine::open(&dir).unwrap();
    assert_eq!(recovered.state_fingerprint(), shadow.state_fingerprint());
}

#[test]
fn drop_without_close_is_a_supported_crash() {
    let dir = tmp_dir("dirty");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    let fp = e.state_fingerprint();
    drop(e);

    let mut back = Engine::open(&dir).unwrap();
    assert_eq!(back.state_fingerprint(), fp);
    assert!(my_grade_query(&mut back, "11").is_ok());
}

#[test]
fn pre_crash_cached_verdict_is_never_served_after_recovery() {
    let dir = tmp_dir("stale-verdict");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    let q = "select grade from grades where student_id = '11'";
    let s = Session::new("11");
    // Warm both caches with a Valid verdict under the grant...
    e.execute(&s, q).unwrap();
    e.execute(&s, q).unwrap();
    // ...then revoke, and crash without a clean shutdown.
    e.revoke_view("11", "mygrades").unwrap();
    let pre_crash_epoch = e.policy_epoch();
    drop(e);

    let (mut back, _) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    // The epoch moves strictly past every pre-crash epoch, so no plan
    // cached before the crash could ever be keyed correctly...
    assert!(back.policy_epoch() > pre_crash_epoch);
    // ...and both caches start cold.
    assert_eq!(back.cache().stats(), (0, 0));
    assert_eq!(back.plan_cache().stats(), (0, 0));
    // The query that was Valid (and cached) before the revoke is now
    // rejected — the stale verdict did not survive the crash.
    let err = back.execute(&s, q).unwrap_err();
    assert!(err.is_unauthorized(), "got {err:?}");
}

#[test]
fn torn_tail_is_truncated_and_reported() {
    let dir = tmp_dir("torn");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    let fp = e.state_fingerprint();
    e.close().unwrap();
    // Simulate a power cut mid-append: a frame header promising more
    // bytes than the file holds.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[120, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3]);
    std::fs::write(&wal, &bytes).unwrap();

    let (back, report) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert_eq!(report.truncated_tail_bytes, 11);
    assert_eq!(back.state_fingerprint(), fp, "committed prefix preserved");
}

#[test]
fn corrupt_policy_record_refuses_to_serve() {
    let dir = tmp_dir("corrupt");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    e.close().unwrap();
    // Flip one bit inside the log body (the final record is the
    // AUTHORIZE grant — a policy record).
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&wal, &bytes).unwrap();

    let err = Engine::open(&dir).unwrap_err();
    assert!(
        matches!(err, Error::Corrupt(_)),
        "corrupt policy state must fail closed, got {err:?}"
    );
}

#[test]
fn recovery_is_idempotent() {
    let dir = tmp_dir("idempotent");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    drop(e); // dirty
    let wal = dir.join("wal.log");

    let (first, _) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    let fp = first.state_fingerprint();
    let len_after_first = std::fs::metadata(&wal).unwrap().len();
    drop(first);

    // A second recovery replays the same records, appends nothing, and
    // reproduces the same state.
    let (second, report) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert_eq!(second.state_fingerprint(), fp);
    assert_eq!(report.truncated_tail_bytes, 0);
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), len_after_first);
}

#[cfg(feature = "fault-injection")]
#[test]
fn recovery_aborted_mid_replay_is_harmless() {
    use fgac::types::faults::{self, Fault};
    let dir = tmp_dir("mid-recovery");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    let fp = e.state_fingerprint();
    drop(e);
    let wal = dir.join("wal.log");
    let len_before = std::fs::metadata(&wal).unwrap().len();

    // Crash in the middle of the recovery scan: the third frame.
    faults::arm("wal::recover", Fault::ErrorOnNth(3));
    let err = Engine::open(&dir).unwrap_err();
    assert!(matches!(err, Error::Internal(_)), "got {err:?}");
    faults::disarm_all();

    // The aborted recovery changed nothing on disk; a retry succeeds and
    // reproduces the full committed state.
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), len_before);
    let back = Engine::open(&dir).unwrap();
    assert_eq!(back.state_fingerprint(), fp);
}

#[test]
fn snapshots_rotate_the_log_and_survive_reopen() {
    let dir = tmp_dir("snapshot");
    let opts = DurabilityOptions {
        sync_on_commit: false,
        snapshot_every: 4,
    };
    let (mut e, _) = Engine::open_with(&dir, opts.clone()).unwrap();
    populate(&mut e); // > 4 records: at least one snapshot installed
    let s = Session::new("11");
    e.execute(&s, "insert into grades values ('11', 'cs404', 65)")
        .unwrap();
    let fp = e.state_fingerprint();
    drop(e);

    assert!(dir.join("snapshot.fgs").exists(), "snapshot was installed");
    let (back, report) = Engine::open_with(&dir, opts).unwrap();
    assert!(report.snapshot_lsn.is_some());
    assert!(
        report.records_replayed < report.snapshot_lsn.unwrap() as usize + report.records_replayed,
        "rotation kept the replayed tail short"
    );
    assert_eq!(back.state_fingerprint(), fp);
}

#[test]
fn explicit_snapshot_now_folds_the_whole_log() {
    let dir = tmp_dir("snapshot-now");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    e.snapshot_now().unwrap();
    let fp = e.state_fingerprint();
    drop(e);

    let (back, report) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert!(report.snapshot_lsn.is_some());
    assert_eq!(report.records_replayed, 0, "everything came from the snapshot");
    assert_eq!(back.state_fingerprint(), fp);
}

#[test]
fn orphaned_snapshot_without_log_refuses_fresh_init() {
    // A directory holding snapshot.fgs but no wal.log is the remnant of
    // a partial delete or botched restore. Opening it must not quietly
    // initialize an empty engine (which would later overwrite the
    // snapshot and discard all surviving durable state).
    let dir = tmp_dir("orphan-snapshot");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    e.snapshot_now().unwrap();
    e.close().unwrap();
    std::fs::remove_file(dir.join("wal.log")).unwrap();

    let err = Engine::open(&dir).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    assert!(
        dir.join("snapshot.fgs").exists(),
        "the refusal must leave the snapshot untouched"
    );
}

#[test]
fn lost_snapshot_rename_fails_closed() {
    // The inverse partial state: the log rotation survived but the
    // snapshot covering the rotated-away records is gone. Serving the
    // empty log as truth would silently drop every acknowledged commit.
    let dir = tmp_dir("lost-snapshot");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    e.snapshot_now().unwrap();
    e.close().unwrap();
    std::fs::remove_file(dir.join("snapshot.fgs")).unwrap();

    let err = Engine::open(&dir).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
}

#[test]
fn in_memory_engine_has_no_durability() {
    let mut e = Engine::new();
    populate(&mut e);
    assert!(!e.is_durable());
    assert!(e.snapshot_now().is_err());
    assert!(e.sync().is_ok(), "sync is a no-op in memory");
}

// ---------------------------------------------------------------------------
// Idempotent close: the lifecycle contract the network front end
// (fgac-server) relies on during graceful shutdown.
// ---------------------------------------------------------------------------

#[test]
fn close_is_idempotent_and_use_after_close_fails_cleanly() {
    let dir = tmp_dir("idempotent-close");
    let mut e = Engine::open(&dir).unwrap();
    populate(&mut e);
    let s = Session::new("11");
    my_grade_query(&mut e, "11").unwrap();

    // First close: syncs and succeeds.
    e.close().unwrap();

    // Every statement class after close is a clean, typed refusal — not
    // a panic, not a silent no-op that could lose an un-synced write.
    let err = my_grade_query(&mut e, "11").unwrap_err();
    assert!(
        matches!(err, Error::Unsupported(ref m) if m.contains("closed")),
        "query after close: {err:?}"
    );
    let err = e
        .execute(&s, "insert into grades values ('11', 'cs999', 50)")
        .unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "dml after close: {err:?}");
    let err = e.admin_script("create table t2 (a int)").unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "ddl after close: {err:?}");
    let err = e.grant_view("12", "mygrades").unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "grant after close: {err:?}");
    let err = e.snapshot_now().unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "snapshot after close: {err:?}");

    // Second close: distinguishable double-close error, still clean.
    let err = e.close().unwrap_err();
    assert!(
        err.to_string().contains("double close"),
        "second close must report double-close: {err}"
    );

    // The directory remains a valid store: reopening recovers cleanly
    // with nothing torn (close synced everything).
    let (mut reopened, report) = Engine::open_with(&dir, DurabilityOptions::default()).unwrap();
    assert_eq!(report.truncated_tail_bytes, 0, "clean close left a torn tail");
    let r = my_grade_query(&mut reopened, "11").unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn close_on_an_in_memory_engine_is_also_idempotent() {
    // The contract is uniform: no WAL attached, same lifecycle rules.
    let mut e = Engine::new();
    populate(&mut e);
    e.close().unwrap();
    assert!(e.is_closed());
    let err = e.close().unwrap_err();
    assert!(err.to_string().contains("double close"), "{err}");
    let err = my_grade_query(&mut e, "11").unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "{err:?}");
}
