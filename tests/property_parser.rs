//! Property test: printing any generated query AST and re-parsing it
//! yields the identical AST (printer/parser round-trip).

use fgac::sql::{self, parse_query, printer::print_query, BinaryOp, Expr, Query, SelectItem};
use fgac_types::{Ident, Value};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = Ident> {
    "[a-z][a-z0-9_]{0,6}".prop_map(Ident::new)
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        // Finite doubles with short decimal forms survive printing.
        (-1000i32..1000).prop_map(|i| Value::Double(i as f64 / 4.0)),
        "[a-z ]{0,8}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        ident().prop_map(|name| Expr::Column {
            qualifier: None,
            name
        }),
        (ident(), ident()).prop_map(|(q, name)| Expr::Column {
            qualifier: Some(q),
            name
        }),
        literal().prop_map(Expr::Literal),
        "[a-z][a-z0-9_]{0,5}".prop_map(Expr::Param),
        "[a-z0-9]{1,4}".prop_map(Expr::AccessParam),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let op = prop_oneof![
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
    ];
    leaf_expr().prop_recursive(3, 24, 3, move |inner| {
        prop_oneof![
            (inner.clone(), op.clone(), inner.clone()).prop_map(|(l, o, r)| Expr::Binary {
                left: Box::new(l),
                op: o,
                right: Box::new(r),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n,
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: sql::UnaryOp::Not,
                expr: Box::new(e),
            }),
        ]
    })
}

fn query() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        proptest::collection::vec((expr(), proptest::option::of(ident())), 1..4),
        proptest::collection::vec(ident(), 1..3),
        proptest::option::of(expr()),
        proptest::option::of((0u64..100).prop_map(Some)),
    )
        .prop_map(|(distinct, items, tables, selection, limit)| {
            // Distinct table names to keep the query bindable in form
            // (the parser does not care, but dedup avoids alias clashes
            // in printing).
            let mut seen = std::collections::BTreeSet::new();
            let from: Vec<sql::TableRef> = tables
                .into_iter()
                .filter(|t| seen.insert(t.clone()))
                .map(sql::TableRef::named)
                .collect();
            Query {
                distinct,
                projection: items
                    .into_iter()
                    .map(|(e, alias)| SelectItem::Expr { expr: e, alias })
                    .collect(),
                from,
                selection,
                group_by: vec![],
                having: None,
                order_by: vec![],
                limit: limit.flatten(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_roundtrip(q in query()) {
        let printed = print_query(&q);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(q, reparsed, "printed form: {}", printed);
    }
}

// Regression: pathologically deep nesting used to overflow the parser's
// native stack; it must now surface as a bounded parse error.
#[test]
fn deeply_nested_input_errors_instead_of_overflowing() {
    for depth in [200usize, 100_000] {
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let err = sql::parse_expr(&src).unwrap_err();
        assert!(matches!(err, fgac_types::Error::Parse(_)), "depth {depth}: {err:?}");
    }
    // Deep prefix chains recurse too.
    let src = format!("{}b", "not ".repeat(100_000));
    assert!(sql::parse_expr(&src).is_err());
}

#[test]
fn moderate_nesting_still_parses() {
    let depth = 60;
    let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
    assert_eq!(sql::parse_expr(&src).unwrap(), Expr::lit(1));
}
