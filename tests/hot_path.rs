//! Hot-path behavior: plan-cache reuse and invalidation, per-parameter
//! keying, prepared-statement integration, and validity-cache coherence
//! under concurrent readers and a DML writer.

use fgac::prelude::*;
use fgac_core::{CacheOutcome, ValidityCache};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn base_engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));
        create authorization view MyGrades as
            select * from grades where student_id = $user_id;
        insert into grades values
            ('11', 'cs101', 90), ('11', 'cs202', 80), ('12', 'cs101', 70);
        ",
    )
    .unwrap();
    e
}

fn engine() -> Engine {
    let mut e = base_engine();
    e.grant_view("11", "mygrades").unwrap();
    e.grant_view("12", "mygrades").unwrap();
    e
}

const Q: &str = "select grade from grades where student_id = $user_id";

#[test]
fn repeat_query_skips_admission_via_plan_cache() {
    let mut e = engine();
    let s = Session::new("11");
    for _ in 0..5 {
        let r = e.execute(&s, Q).unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
    }
    let snap = e.plan_cache().snapshot();
    assert_eq!(snap.misses, 1, "only the first execution admits");
    assert_eq!(snap.hits, 4, "every repeat rides the cached plan");
    // The validity cache is also warm: one inference, four hits.
    let (hits, _) = e.cache().stats();
    assert!(hits >= 4);
}

#[test]
fn unrelated_schema_change_keeps_cached_plans() {
    let mut e = engine();
    let s = Session::new("11");
    e.execute(&s, Q).unwrap();
    let epoch_before = e.policy_epoch();
    // DDL on a name the cached plan never touches: the epoch still moves
    // (certificates are stamped with it), but dependency tracking keeps
    // the plan — `audit_log` is not in the plan's read set.
    e.admin_script("create table audit_log (entry varchar)").unwrap();
    assert!(e.policy_epoch() > epoch_before);
    e.execute(&s, Q).unwrap();
    let snap = e.plan_cache().snapshot();
    assert_eq!(snap.misses, 1, "unrelated DDL must not evict the plan");
    assert!(snap.hits >= 1, "post-DDL execution rides the cached plan");
}

#[test]
fn conflicting_schema_change_evicts_dependent_plans() {
    let mut e = engine();
    let s = Session::new("11");
    let q = "select * from mygrades";
    e.execute(&s, q).unwrap();
    // A view named `mygrades` exists; creating a *table* with a name in
    // the plan's read set would change binding, so the plan must go.
    // We exercise the dependency path directly: the plan's deps contain
    // both the view name and the base table it expands to.
    let dropped = e
        .plan_cache()
        .invalidate_deps(std::slice::from_ref(&Ident::new("grades")));
    assert_eq!(dropped, 1, "plan depends on the underlying base table");
    e.execute(&s, q).unwrap();
    assert_eq!(e.plan_cache().snapshot().misses, 2, "re-admits after eviction");
}

#[test]
fn revocation_rejects_previously_cached_query() {
    let mut e = engine();
    let s = Session::new("11");
    // Warm both caches…
    assert!(e.execute(&s, Q).is_ok());
    assert!(e.execute(&s, Q).is_ok());
    // …then revoke. The next execution must not reuse the cached
    // admission: it re-checks and is denied.
    e.revoke_view("11", "mygrades").unwrap();
    let err = e.execute(&s, Q).unwrap_err();
    assert!(matches!(err, Error::Unauthorized(_)), "got {err:?}");
}

#[test]
fn grant_restores_access_after_revocation() {
    let mut e = engine();
    let s = Session::new("11");
    e.execute(&s, Q).unwrap();
    e.revoke_view("11", "mygrades").unwrap();
    assert!(e.execute(&s, Q).is_err());
    e.grant_view("11", "mygrades").unwrap();
    let r = e.execute(&s, Q).unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 2);
}

#[test]
fn same_sql_different_user_does_not_alias() {
    let mut e = engine();
    // Both users run the same text; binding embeds $user_id, so each
    // must get their own plan and their own rows.
    for _ in 0..2 {
        let r11 = e.execute(&Session::new("11"), Q).unwrap();
        assert_eq!(r11.rows().unwrap().rows.len(), 2);
        let r12 = e.execute(&Session::new("12"), Q).unwrap();
        assert_eq!(r12.rows().unwrap().rows.len(), 1);
    }
    let snap = e.plan_cache().snapshot();
    assert_eq!(snap.misses, 2, "one admission per user");
    assert_eq!(snap.hits, 2, "each user's repeat hits their own entry");
    assert_eq!(snap.entries, 2);
}

#[test]
fn prepared_statement_reuses_cached_plan() {
    let mut e = engine();
    let p = e.prepare(Q).unwrap();
    let s = Session::new("11");
    for _ in 0..3 {
        e.execute_prepared(&s, &p).unwrap();
    }
    // Ad-hoc execution of the same text rides the same entry.
    e.execute(&s, Q).unwrap();
    let snap = e.plan_cache().snapshot();
    assert_eq!(snap.misses, 1);
    assert_eq!(snap.hits, 3);
}

#[test]
fn dml_does_not_evict_cached_plans() {
    let mut e = engine();
    e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    e.execute(&s, Q).unwrap();
    let epoch = e.policy_epoch();
    e.execute(&s, "insert into grades values ($user_id, 'cs303', 60)")
        .unwrap();
    // Plans are data-independent: the epoch is unchanged and the repeat
    // query hits the plan cache (the *validity* cache handles the data
    // version of conditional verdicts).
    assert_eq!(e.policy_epoch(), epoch);
    let r = e.execute(&s, Q).unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 3);
    assert!(e.plan_cache().snapshot().hits >= 1);
}

/// Concurrent readers racing a writer that bumps the data version must
/// never observe a stale state-pinned verdict.
///
/// The writer publishes version `v` only *after* storing the verdict
/// whose flavor encodes `v`'s parity (Conditional at even versions,
/// Invalid at odd). A reader that looks up at a published version and
/// hits must therefore see exactly the parity-matching verdict; seeing
/// the other flavor would mean the cache served an entry pinned to a
/// different data version.
#[test]
fn validity_cache_never_serves_stale_pinned_verdicts() {
    let cache = Arc::new(ValidityCache::new());
    let published = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    const FP: u64 = 0xFEED_FACE;

    cache.store("u", FP, 0, 0, Verdict::Conditional, None);

    let writer = {
        let cache = Arc::clone(&cache);
        let published = Arc::clone(&published);
        std::thread::spawn(move || {
            for v in 1..=2000u64 {
                let verdict = if v.is_multiple_of(2) {
                    Verdict::Conditional
                } else {
                    Verdict::Invalid
                };
                cache.store("u", FP, v, 0, verdict, None);
                published.store(v, Ordering::Release);
                // Give readers a chance to observe this version before
                // it is overwritten.
                std::thread::yield_now();
            }
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = published.load(Ordering::Acquire);
                    if let CacheOutcome::Hit(verdict) = cache.lookup("u", FP, v, 0) {
                        let expected = if v.is_multiple_of(2) {
                            Verdict::Conditional
                        } else {
                            Verdict::Invalid
                        };
                        assert_eq!(
                            verdict, expected,
                            "stale pinned verdict served at data version {v}"
                        );
                        hits += 1;
                    }
                    // Keep the interleaving fine-grained even on a
                    // single hardware thread.
                    std::thread::yield_now();
                }
                hits
            })
        })
        .collect();

    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let total_hits: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    // Reader hits during the race are opportunistic (the writer may
    // overwrite the entry between a reader's version load and lookup,
    // which is a legitimate miss). The quiescent state is deterministic:
    // the final published version must hit with its parity verdict…
    let last = published.load(Ordering::Acquire);
    assert_eq!(last, 2000);
    assert!(matches!(
        cache.lookup("u", FP, last, 0),
        CacheOutcome::Hit(Verdict::Conditional)
    ));
    // …and pinning still holds: any other version misses.
    assert!(matches!(
        cache.lookup("u", FP, last + 1, 0),
        CacheOutcome::Miss
    ));
    // total_hits is reported for debugging; zero is unlikely with the
    // writer yielding each round but not an error.
    let _ = total_hits;
}

/// Unconditional verdicts survive data-version changes even while
/// state-pinned entries churn on other shards.
#[test]
fn unconditional_verdicts_survive_concurrent_churn() {
    let cache = Arc::new(ValidityCache::new());
    cache.store("u", 1, 0, 0, Verdict::Unconditional, None);

    let churner = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            for v in 0..1000u64 {
                // Spread across users => across shards.
                cache.store(&format!("w{}", v % 7), v, v, 0, Verdict::Conditional, None);
            }
        })
    };
    for v in 0..1000u64 {
        assert!(matches!(
            cache.lookup("u", 1, v, 0),
            CacheOutcome::Hit(Verdict::Unconditional)
        ));
    }
    churner.join().unwrap();
}

// ---------------------------------------------------------------------------
// SharedEngine: concurrent readers racing a grant/revoke writer.
// ---------------------------------------------------------------------------

#[test]
fn racing_readers_never_see_a_stale_verdict_across_epoch_bumps() {
    use fgac_core::SharedEngine;

    // N reader threads hammer the same query while the writer flips the
    // principal's grant on and off. The checked invariant is the
    // fail-closed one from DESIGN.md: the moment a revocation (or
    // grant) completes — epoch bumped, caches cleared, write lock
    // released — every *subsequently started* check observes it. The
    // writer itself probes that after each flip; the readers assert the
    // weaker-but-necessary property that a racing check only ever
    // resolves to ALLOW-with-rows or a clean Unauthorized, never a
    // cache-corrupt half state.
    let shared = SharedEngine::new(engine());
    let stop = Arc::new(AtomicBool::new(false));
    let allows = Arc::new(AtomicU64::new(0));
    let denies = Arc::new(AtomicU64::new(0));
    let q = "select grade from grades where student_id = '11'";

    let readers: Vec<_> = (0..6)
        .map(|_| {
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            let allows = Arc::clone(&allows);
            let denies = Arc::clone(&denies);
            std::thread::spawn(move || {
                let s = Session::new("11");
                while !stop.load(Ordering::Relaxed) {
                    match shared.execute(&s, q) {
                        Ok(r) => {
                            // An ALLOW must come with the right rows: a
                            // verdict served from a cache that survived
                            // an epoch bump would still deliver these,
                            // so also count it for the writer's probe.
                            assert_eq!(r.rows().unwrap().rows.len(), 2);
                            allows.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(Error::Unauthorized(_)) => {
                            denies.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("reader saw non-auth error: {other:?}"),
                    }
                }
            })
        })
        .collect();

    // Flip until the readers have witnessed both sides of the race (a
    // loaded machine can starve them out of the brief deny windows), up
    // to a generous cap; 60 flips minimum keeps the race itself real.
    let writer_session = Session::new("11");
    let mut i = 0;
    while i < 60
        || ((allows.load(Ordering::Relaxed) == 0 || denies.load(Ordering::Relaxed) == 0)
            && i < 4000)
    {
        if i % 2 == 0 {
            let before = shared.policy_epoch();
            shared.with_write(|e| e.revoke_view("11", "mygrades")).unwrap();
            assert!(shared.policy_epoch() > before, "revoke must bump the epoch");
            // Sequenced-after probe: the revocation is complete, so this
            // check (which starts now, under a fresh read lock) must
            // deny. If the epoch bump failed to clear a cached ALLOW,
            // this is the read that would expose it.
            match shared.execute(&writer_session, q) {
                Err(Error::Unauthorized(_)) => {}
                other => panic!("flip {i}: stale ALLOW after revoke: {other:?}"),
            }
        } else {
            shared.with_write(|e| e.grant_view("11", "mygrades")).unwrap();
            let r = shared.execute(&writer_session, q).unwrap();
            assert_eq!(
                r.rows().unwrap().rows.len(),
                2,
                "flip {i}: stale DENY after grant"
            );
        }
        i += 1;
    }

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    // The race was real: readers observed both sides of the flips.
    assert!(allows.load(Ordering::Relaxed) > 0, "readers never saw an ALLOW");
    assert!(denies.load(Ordering::Relaxed) > 0, "readers never saw a DENY");
}

#[test]
fn concurrent_readers_share_the_caches() {
    use fgac_core::SharedEngine;

    // Pure read concurrency: many threads, one repeated query each.
    // Everything after the first admission should be cache traffic, and
    // the shared caches must end up coherent (hits + misses = lookups,
    // far more hits than misses).
    let shared = SharedEngine::new(engine());
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let user = if t % 2 == 0 { "11" } else { "12" };
                let s = Session::new(user);
                let q = format!("select grade from grades where student_id = '{user}'");
                for _ in 0..50 {
                    let r = shared.execute(&s, &q).unwrap();
                    assert!(!r.rows().unwrap().rows.is_empty() || user == "12");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (plan_hits, plan_misses) = shared.with_read(|e| e.plan_cache().stats());
    assert!(
        plan_hits > plan_misses,
        "8x50 repeats should be dominated by plan-cache hits: {plan_hits} hits / {plan_misses} misses"
    );
}

// ---------------------------------------------------------------------------
// Churn property: random grant/revoke/query interleavings.
// ---------------------------------------------------------------------------

mod churn_property {
    use super::*;
    use fgac_core::SharedEngine;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Grant(&'static str),
        Revoke(&'static str),
        Query(&'static str),
        /// Grant+revoke an *unrelated* principal: pure sweep traffic
        /// that must restamp (not drop) the other principals' entries.
        PadChurn,
    }

    fn op() -> impl Strategy<Value = Op> {
        let user = prop_oneof![Just("11"), Just("12")];
        // Queries twice: interleavings should be query-heavy so warm
        // verdicts actually get exercised between policy changes.
        prop_oneof![
            user.clone().prop_map(Op::Grant),
            user.clone().prop_map(Op::Revoke),
            user.clone().prop_map(Op::Query),
            user.prop_map(Op::Query),
            Just(Op::PadChurn),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Over any interleaving of grants, revokes, and queries:
        /// * a principal whose grant was just revoked is denied on the
        ///   very next request — no stale verdict, ever;
        /// * a warm verdict (cache hit or certificate revalidation)
        ///   always byte-matches what a cold engine with the same grant
        ///   state computes from scratch.
        #[test]
        fn churned_verdicts_match_cold_engine(ops in proptest::collection::vec(op(), 1..32)) {
            let shared = SharedEngine::new(engine());
            let mut granted: BTreeSet<&str> = ["11", "12"].into_iter().collect();
            for o in ops {
                match o {
                    Op::Grant(u) => {
                        if granted.insert(u) {
                            shared.with_write(|e| e.grant_view(u, "mygrades")).unwrap();
                        }
                    }
                    Op::Revoke(u) => {
                        if granted.remove(u) {
                            shared.with_write(|e| e.revoke_view(u, "mygrades")).unwrap();
                        }
                        // Sequenced-after probe: the revocation (if any)
                        // completed before this request started.
                        let s = Session::new(u);
                        match shared.execute(&s, Q) {
                            Err(Error::Unauthorized(_)) => {}
                            other => prop_assert!(false, "stale verdict after revoke of {u}: {other:?}"),
                        }
                    }
                    Op::PadChurn => {
                        shared.with_write(|e| e.grant_view("99", "mygrades")).unwrap();
                        shared.with_write(|e| e.revoke_view("99", "mygrades")).unwrap();
                    }
                    Op::Query(u) => {
                        let s = Session::new(u);
                        let warm = shared.with_read(|e| e.check(&s, Q)).unwrap();
                        let mut cold = base_engine();
                        for g in &granted {
                            cold.grant_view(g, "mygrades").unwrap();
                        }
                        let cold_report = cold.check(&s, Q).unwrap();
                        prop_assert_eq!(
                            format!("{:?}", warm.verdict),
                            format!("{:?}", cold_report.verdict),
                            "warm verdict diverged from cold engine for {}", u
                        );
                        if granted.contains(u) {
                            let rows = shared.execute(&s, Q).unwrap();
                            let expect = if u == "11" { 2 } else { 1 };
                            prop_assert_eq!(rows.rows().unwrap().rows.len(), expect);
                        }
                    }
                }
            }
        }
    }
}
