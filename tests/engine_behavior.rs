//! Engine-level behavioral tests: caching across DML, roles, session
//! parameters, error classification, multi-user isolation.

use fgac::prelude::*;
use fgac_types::Value;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "
        create table grades (
            student_id varchar not null, course_id varchar not null,
            grade int, primary key (student_id, course_id));
        create table registered (
            student_id varchar not null, course_id varchar not null);
        create authorization view MyGrades as
            select * from grades where student_id = $user_id;
        create authorization view CoStudentGrades as
            select grades.* from grades, registered
            where registered.student_id = $user_id
              and grades.course_id = registered.course_id;
        create authorization view MyRegistrations as
            select * from registered where student_id = $user_id;
        insert into grades values
            ('11', 'cs101', 90), ('12', 'cs101', 70), ('13', 'cs202', 60);
        insert into registered values ('12', 'cs101');
        ",
    )
    .unwrap();
    e
}

#[test]
fn per_user_isolation_of_parameterized_views() {
    // One view definition, different instantiations (Section 2's
    // rule-based framework): each user sees exactly her slice.
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    e.grant_view("12", "mygrades").unwrap();
    for (user, expected_grade) in [("11", 90i64), ("12", 70)] {
        let s = Session::new(user);
        let r = e
            .execute(
                &s,
                &format!("select grade from grades where student_id = '{user}'"),
            )
            .unwrap();
        assert_eq!(r.rows().unwrap().rows[0].get(0), &Value::Int(expected_grade));
        // And cannot read the other user's row.
        let other = if user == "11" { "12" } else { "11" };
        assert!(e
            .execute(
                &s,
                &format!("select grade from grades where student_id = '{other}'")
            )
            .is_err());
    }
}

#[test]
fn conditional_cache_invalidation_on_dml() {
    // An Invalid verdict must not be served from cache after an insert
    // that makes the query conditionally valid.
    let mut e = engine();
    e.grant_view("11", "costudentgrades").unwrap();
    e.grant_view("11", "myregistrations").unwrap();
    e.grant_update_sql("11", "authorize insert on registered where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    let q = "select * from grades where course_id = 'cs101'";

    // Not registered yet: Invalid (and cached).
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Invalid);
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Invalid); // cache hit

    // Register; the stale Invalid entry must expire.
    e.execute(&s, "insert into registered values ('11', 'cs101')")
        .unwrap();
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Conditional);
}

#[test]
fn unconditional_verdicts_survive_dml() {
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Unconditional);
    e.execute(&s, "insert into grades values ('11', 'cs303', 75)")
        .unwrap();
    // Served from cache (unconditional verdicts are state-independent).
    let report = e.check(&s, q).unwrap();
    assert_eq!(report.verdict, Verdict::Unconditional);
    assert!(report.rules.iter().any(|r| r.contains("cache")));
}

#[test]
fn grant_changes_clear_the_cache() {
    let mut e = engine();
    let s = Session::new("11");
    let q = "select grade from grades where student_id = '11'";
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Invalid);
    // Granting the view must invalidate the cached rejection.
    e.grant_view("11", "mygrades").unwrap();
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Unconditional);
}

#[test]
fn delegation_flows_through_engine() {
    // Section 6: delegation collects views into the delegatee's set;
    // inference then runs on the union.
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    e.delegate_view("11", "assistant", "mygrades").unwrap();
    // The assistant's own $user_id instantiation governs: she sees HER
    // slice of grades via the delegated view definition, not user 11's.
    let s = Session::new("assistant");
    assert!(e
        .execute(&s, "select * from grades where student_id = '11'")
        .is_err());
    // A user holding nothing cannot delegate.
    assert!(e.delegate_view("99", "x", "mygrades").is_err());
}

#[test]
fn roles_compose_with_parameterized_views() {
    let mut e = engine();
    e.grant_view("student-role", "mygrades").unwrap();
    e.add_role("11", "student-role").unwrap();
    let s = Session::new("11");
    let r = e
        .execute(&s, "select grade from grades where student_id = '11'")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn extra_session_parameters_flow_into_views() {
    let mut e = engine();
    e.admin_script(
        "create authorization view DaytimeGrades as
            select * from grades where student_id = $user_id and $hour >= 9 and $hour <= 17;",
    )
    .unwrap();
    e.grant_view("11", "daytimegrades").unwrap();
    // Daytime session: view is non-vacuous, query valid.
    let day = Session::new("11").with_param("hour", 12);
    let q = "select grade from grades where student_id = '11'";
    assert_eq!(
        e.check(&day, q).unwrap().verdict,
        Verdict::Unconditional,
        "daytime access allowed"
    );
    // Night session: the instantiated view is empty (predicate folds to
    // FALSE), so nothing is derivable from it.
    let night = Session::new("11").with_param("hour", 3);
    assert_eq!(e.check(&night, q).unwrap().verdict, Verdict::Invalid);
}

#[test]
fn queries_on_view_names_work_and_check() {
    // Users may also write queries against the view by name (the paper
    // allows both); the binder inlines it and validity is trivial.
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    let s = Session::new("11");
    let r = e.execute(&s, "select avg(grade) from mygrades").unwrap();
    assert_eq!(r.rows().unwrap().rows[0].get(0), &Value::Double(90.0));
}

#[test]
fn error_classification() {
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    let s = Session::new("11");
    // Parse error.
    assert!(matches!(
        e.execute(&s, "selecct nonsense"),
        Err(Error::Parse(_))
    ));
    // Bind error (unknown table).
    assert!(matches!(
        e.execute(&s, "select * from nope"),
        Err(Error::Bind(_))
    ));
    // Unauthorized.
    assert!(matches!(
        e.execute(&s, "select * from grades"),
        Err(Error::Unauthorized(_))
    ));
    // Unsupported (nested subquery — excluded as in the paper §5).
    assert!(matches!(
        e.execute(&s, "select * from grades where grade in (select grade from grades)"),
        Err(Error::Unsupported(_))
    ));
}

#[test]
fn order_by_and_limit_do_not_affect_validity() {
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    let s = Session::new("11");
    let r = e
        .execute(
            &s,
            "select course_id, grade from grades where student_id = '11' \
             order by grade desc limit 1",
        )
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn validity_report_carries_rule_trace() {
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    let s = Session::new("11");
    let report = e
        .check(&s, "select grade from grades where student_id = '11'")
        .unwrap();
    assert!(report.is_valid());
    assert!(!report.rules.is_empty());
    assert!(report.views_considered >= 1);
}

#[test]
fn dml_through_engine_is_atomic_per_statement() {
    let mut e = engine();
    e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    let before = e.database().table(&"grades".into()).unwrap().len();
    // Second tuple unauthorized: whole statement rejected.
    let err = e.execute(
        &s,
        "insert into grades values ('11', 'cs404', 50), ('12', 'cs404', 50)",
    );
    assert!(err.is_err());
    assert_eq!(e.database().table(&"grades".into()).unwrap().len(), before);
}

#[test]
fn truman_and_nontruman_agree_when_query_is_within_the_view() {
    // When the query only touches the user's own slice, both models
    // give the same (correct) answer — the divergence is only outside.
    let mut e = engine();
    e.grant_view("11", "mygrades").unwrap();
    let s = Session::new("11");
    let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");
    let q = "select grade from grades where student_id = '11'";
    let truman = e.truman_execute(&policy, &s, q).unwrap();
    let nt = e.execute(&s, q).unwrap();
    assert_eq!(&truman.rows, &nt.rows().unwrap().rows);
}

#[test]
fn failed_dml_does_not_bump_version_or_evict_cache() {
    // A rolled-back statement must be invisible to the cache layer: the
    // data version stays put and version-pinned (Conditional) verdicts
    // keep being served from cache.
    let mut e = engine();
    e.grant_view("11", "costudentgrades").unwrap();
    e.grant_view("11", "myregistrations").unwrap();
    e.grant_update_sql("11", "authorize insert on registered where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    e.execute(&s, "insert into registered values ('11', 'cs101')")
        .unwrap();

    // Conditional verdict, pinned to the current data version.
    let q = "select * from grades where course_id = 'cs101'";
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Conditional);
    let v0 = e.data_version();
    let (hits_before, _) = e.cache().stats();

    // Unauthorized tuple: statement rejected and rolled back.
    let err = e.execute(&s, "insert into registered values ('12', 'cs202')");
    assert!(err.is_err());
    assert_eq!(e.data_version(), v0, "failed DML must not bump the version");

    // The pinned verdict is still served from cache.
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Conditional);
    let (hits_after, _) = e.cache().stats();
    assert!(hits_after > hits_before, "expected a cache hit after failed DML");
}

#[test]
fn committed_dml_bumps_version_and_reverifies_conditional_verdicts() {
    let mut e = engine();
    e.grant_view("11", "costudentgrades").unwrap();
    e.grant_view("11", "myregistrations").unwrap();
    e.grant_update_sql("11", "authorize delete on registered where student_id = $user_id")
        .unwrap();
    e.grant_update_sql("11", "authorize insert on registered where student_id = $user_id")
        .unwrap();
    let s = Session::new("11");
    e.execute(&s, "insert into registered values ('11', 'cs101')")
        .unwrap();

    let q = "select * from grades where course_id = 'cs101'";
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Conditional);
    let v0 = e.data_version();

    // Committed DML invalidates the pinned verdict: deleting the
    // registration flips the query back to Invalid.
    e.execute(&s, "delete from registered where student_id = '11'")
        .unwrap();
    assert!(e.data_version() > v0, "committed DML must bump the version");
    assert_eq!(e.check(&s, q).unwrap().verdict, Verdict::Invalid);
}
